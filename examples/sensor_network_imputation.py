#!/usr/bin/env python3
"""Sensor-network scenario: clustered outages and individual models.

The paper's introduction motivates imputation with sensor readings that go
missing during transmission.  This example reproduces that scenario on the
SN-like dataset (a large two-attribute stream following a piecewise-linear
curve) and on clustered outages (Figure 8's protocol), where a whole group
of nearby readings is lost at once so the closest neighbours of an
incomplete tuple are themselves incomplete.

It demonstrates:

* why a single global regression fails on locally-linear data,
* why value-sharing kNN fails when outages are clustered,
* how IIM's individual models handle both, and
* how to inspect *which* neighbours and candidate values IIM used for one
  imputation (the ``ImputationTrace``).

Run it with::

    python examples/sensor_network_imputation.py
"""

from __future__ import annotations

import numpy as np

from repro import IIMImputer, KNNImputer, GLRImputer, load_dataset, rms_error
from repro.core import impute_one, learn_individual_models
from repro.data import inject_missing_clustered
from repro.neighbors import BruteForceNeighbors


def clustered_outage_study() -> None:
    """Compare methods as sensor outages become more clustered."""
    relation = load_dataset("sn", size=1500)
    print(f"Sensor stream: {relation.n_tuples} readings, attributes {relation.schema.attributes}")
    print(f"{'cluster size':>12s} {'kNN':>8s} {'GLR':>8s} {'IIM':>8s}")
    print("-" * 40)

    for cluster_size in (1, 3, 8):
        injection = inject_missing_clustered(
            relation, n_incomplete=60, cluster_size=cluster_size,
            attribute=-1, random_state=0,
        )
        errors = {}
        for name, imputer in (
            ("kNN", KNNImputer(k=10)),
            ("GLR", GLRImputer()),
            ("IIM", IIMImputer(k=10, learning="fixed", learning_neighbors=30)),
        ):
            values = imputer.fit(injection.dirty).impute_cells(injection)
            errors[name] = rms_error(injection.truth, values)
        print(f"{cluster_size:>12d} {errors['kNN']:>8.3f} {errors['GLR']:>8.3f} {errors['IIM']:>8.3f}")

    print("\nkNN degrades as outages cluster (its close neighbours are also missing);")
    print("GLR is stable but inaccurate on the curved stream; IIM handles both.\n")


def explain_one_imputation() -> None:
    """Show the individual models and candidates behind a single imputation."""
    relation = load_dataset("sn", size=800)
    values = relation.raw
    features, target = values[:, :1], values[:, 1]

    models = learn_individual_models(features, target, ell=25)
    query = np.array([np.median(features)])
    trace = impute_one(query, models, features, target, k=5, return_trace=True)

    searcher = BruteForceNeighbors().fit(features)
    print(f"Imputing the reading at position x = {query[0]:.2f}")
    print(f"{'neighbor':>9s} {'x':>9s} {'candidate':>10s} {'weight':>8s}")
    for idx, candidate, weight in zip(trace.neighbor_indices, trace.candidates, trace.weights):
        print(f"{idx:>9d} {features[idx, 0]:>9.2f} {candidate:>10.3f} {weight:>8.3f}")
    print(f"Combined imputation: {trace.value:.3f}")
    print("Candidates that agree with each other receive the larger weights")
    print("(Formulas 11-12 of the paper); outlying candidates are down-weighted.")
    _ = searcher  # the index is only used implicitly through impute_one


def main() -> None:
    clustered_outage_study()
    explain_one_imputation()


if __name__ == "__main__":
    main()
