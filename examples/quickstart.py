#!/usr/bin/env python3
"""Quickstart: impute missing values with IIM and compare against baselines.

This example walks through the library's core workflow:

1. load a dataset (a synthetic analogue of the paper's ASF data),
2. inject missing values with the paper's evaluation protocol,
3. fit IIM (adaptive individual models) and a few baselines,
4. compare the imputation RMS error against the held-out ground truth.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GLRImputer,
    IIMImputer,
    KNNImputer,
    MeanImputer,
    inject_missing,
    load_dataset,
    rms_error,
)
from repro.metrics import heterogeneity_r2, sparsity_r2


def main() -> None:
    # 1. A heterogeneous dataset: several local regimes, no global regression.
    relation = load_dataset("asf", size=600)
    print(f"Loaded {relation.name}: {relation.n_tuples} tuples x {relation.n_attributes} attributes")
    target = relation.n_attributes - 1
    print(f"  sparsity R2_S      = {sparsity_r2(relation, target, sample_size=300):.2f}")
    print(f"  heterogeneity R2_H = {heterogeneity_r2(relation, target, sample_size=300):.2f}")

    # 2. The paper's protocol: 5% of tuples lose one value on a random attribute.
    injection = inject_missing(relation, fraction=0.05, random_state=0)
    dirty = injection.dirty
    print(f"Injected {len(injection)} missing cells "
          f"({len(dirty.complete_rows)} complete tuples remain)\n")

    # 3. Fit IIM and a few baselines on the complete part of the dirty data.
    imputers = {
        "IIM (adaptive)": IIMImputer(
            k=10, learning="adaptive", stepping=5,
            max_learning_neighbors=100, validation_neighbors=30,
        ),
        "IIM (fixed l=20)": IIMImputer(k=10, learning="fixed", learning_neighbors=20),
        "kNN": KNNImputer(k=10),
        "GLR": GLRImputer(),
        "Mean": MeanImputer(),
    }

    # 4. Impute and score.
    print(f"{'method':<18s} {'RMS error':>10s}")
    print("-" * 29)
    for name, imputer in imputers.items():
        imputed = imputer.fit(dirty).impute(dirty)
        values = imputed.raw[injection.rows, injection.attributes]
        print(f"{name:<18s} {rms_error(injection.truth, values):>10.3f}")

    print("\nLower is better; IIM should lead on this heterogeneous dataset.")


if __name__ == "__main__":
    main()
