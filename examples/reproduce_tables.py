#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables and figures as text reports.

This script drives the experiment harness used by the benchmark suite and
prints the text equivalents of the paper's Tables V-VII and (optionally) a
selection of its figures.  The workload scale is controlled by the
``REPRO_PROFILE`` environment variable (``smoke`` / ``bench`` / ``paper``) or
``REPRO_FULL=1`` for the published sizes.

Run a quick version with::

    REPRO_PROFILE=smoke python examples/reproduce_tables.py

or the full benchmark-scale version (several minutes) with::

    python examples/reproduce_tables.py --figures
"""

from __future__ import annotations

import argparse

from repro.baselines import figure_comparison_methods
from repro.experiments import (
    figure9,
    figure11,
    figure13,
    get_profile,
    table5,
    table6,
    table7,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figures", action="store_true",
        help="also regenerate a selection of the paper's figures (slower)",
    )
    parser.add_argument(
        "--profile", default=None,
        help="scale profile to use (smoke / bench / paper); overrides the environment",
    )
    args = parser.parse_args()

    profile = get_profile(args.profile)
    print(f"Scale profile: {profile.name}\n")

    print(table5(profile=profile).render())
    print()
    print(table6(methods=figure_comparison_methods(), profile=profile).render())
    print()
    print(table7(methods=figure_comparison_methods() + ["Mean"], profile=profile).render())
    print()

    if args.figures:
        print(figure9(profile=profile).render())
        print()
        for dataset, result in figure11(profile=profile).items():
            print(result.render())
            print()
        print(figure13(profile=profile).render())


if __name__ == "__main__":
    main()
