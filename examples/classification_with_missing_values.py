#!/usr/bin/env python3
"""Downstream application: classification over data with real missing values.

Section VI-D of the paper shows that better imputation translates into better
downstream analytics.  This example reproduces both applications on the
synthetic analogues of the paper's datasets:

* clustering (ASF): purity of k-means clusters after imputation, compared to
  the clusters of the original complete data and to simply discarding the
  incomplete tuples;
* classification (MAM, HEP): 5-fold cross-validated F1 of a kNN classifier
  over data whose missing cells were imputed by different methods.

Run it with::

    python examples/classification_with_missing_values.py
"""

from __future__ import annotations

from repro import load_dataset, make_imputer
from repro.ml import (
    classification_application,
    classification_without_imputation,
    clustering_application,
)

METHODS = ("IIM", "kNN", "GLR", "Mean")


def clustering_study() -> None:
    relation = load_dataset("asf", size=500)
    print("Clustering application (ASF, k-means purity vs. truth clusters)")
    discard = clustering_application(relation, None, n_clusters=5, random_state=0)
    print(f"  {'discard incomplete':<22s} purity = {discard.purity_discard:.3f}")
    for method in METHODS:
        imputer = make_imputer(method, **({"k": 10, "validation_neighbors": 30}
                                          if method == "IIM" else {}))
        outcome = clustering_application(relation, imputer, n_clusters=5, random_state=0)
        print(f"  impute with {method:<10s} purity = {outcome.purity:.3f}")
    print()


def classification_study() -> None:
    for dataset in ("mam", "hep"):
        relation = load_dataset(dataset)
        n_incomplete = len(relation.incomplete_rows)
        print(
            f"Classification application ({dataset.upper()}: {relation.n_tuples} tuples, "
            f"{n_incomplete} with real missing values)"
        )
        baseline = classification_without_imputation(relation, random_state=0)
        print(f"  {'discard incomplete':<22s} F1 = {baseline:.3f}")
        for method in METHODS:
            imputer = make_imputer(method, **({"k": 10, "validation_neighbors": 30}
                                              if method == "IIM" else {}))
            score = classification_application(relation, imputer, random_state=0)
            print(f"  impute with {method:<10s} F1 = {score:.3f}")
        print()


def main() -> None:
    clustering_study()
    classification_study()


if __name__ == "__main__":
    main()
