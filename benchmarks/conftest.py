"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper at the scale
selected by the ``REPRO_PROFILE`` / ``REPRO_FULL`` environment variables
(default: the ``bench`` profile, which preserves the qualitative shape of
the paper's results at laptop-friendly sizes).  The rendered text output of
every experiment is written to ``benchmarks/results/`` so the numbers can be
inspected after the run.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import get_profile  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def profile():
    """The scale profile shared by every benchmark."""
    return get_profile()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where rendered experiment outputs are stored."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one experiment's rendered text output to the results directory."""

    def _record(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _record
