"""Benchmark regenerating Figure 9: RMS and time vs. the number of imputation neighbours k (ASF)."""

import numpy as np

from repro.experiments import figure9


def test_figure9_k_sweep_asf(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure9(profile=profile), rounds=1, iterations=1)
    record_result("figure9", result.render())

    assert len(result.x_values) >= 3
    iim = np.asarray(result.rms_series("IIM"))
    knn = np.asarray(result.rms_series("kNN"))

    # A moderate k beats the extreme k = 1 for the neighbour-based methods
    # (the paper's "k too small is unreliable" observation).
    assert iim.min() <= iim[0]
    assert knn.min() <= knn[0]
    # At its best k, IIM is at least as accurate as kNN at kNN's best k.
    assert iim.min() <= knn.min() * 1.05
    # Imputation time is reported for every k.
    assert len(result.time_series("IIM")) == len(result.x_values)
