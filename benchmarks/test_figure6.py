"""Benchmark regenerating Figure 6: RMS and time vs. number of complete tuples (ASF).

The paper's Figure 6 shows that more complete tuples help every method, and
that kNN relies on them most strongly (it needs neighbours that share
values), while IIM benefits as well through better individual models.
"""

from repro.experiments import figure6


def test_figure6_tuple_sweep_asf(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure6(profile=profile), rounds=1, iterations=1)
    record_result("figure6", result.render())

    assert result.x_values == profile.tuple_counts_asf
    # More complete tuples reduce (or at least do not inflate) IIM's error.
    iim = result.rms_series("IIM")
    assert iim[-1] <= iim[0] * 1.1
    # At the largest size the paper's ordering holds: IIM < kNN < GLR.
    assert iim[-1] < result.rms_series("kNN")[-1]
    assert result.rms_series("kNN")[-1] < result.rms_series("GLR")[-1]
