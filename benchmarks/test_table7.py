"""Benchmark regenerating Table VII: downstream clustering purity and classification F1.

The paper evaluates imputation through two applications: k-means clustering
(ASF, CA — purity against the clusters of the original complete data) and a
kNN classifier over datasets with real missing values (MAM, HEP — 5-fold
cross-validated F1).  Simply discarding incomplete tuples (the "Missing"
column) is the baseline that every reasonable imputation method should beat
on the clustering task.
"""

import numpy as np

from repro.baselines import figure_comparison_methods
from repro.experiments import table7


def test_table7_applications(benchmark, profile, record_result):
    methods = figure_comparison_methods() + ["Mean"]
    result = benchmark.pedantic(
        lambda: table7(methods=methods, profile=profile), rounds=1, iterations=1
    )
    record_result("table7", result.render())

    # Clustering: scores are valid purities and IIM beats the discard baseline.
    for dataset in ("asf", "ca"):
        scores = result.clustering[dataset]
        assert all(0.0 <= v <= 1.0 for v in scores.values() if not np.isnan(v))
        assert scores["IIM"] >= scores["Missing"] - 0.02

    # Classification with real missing values: valid F1 scores, and imputing
    # with IIM is not substantially worse than discarding incomplete tuples
    # (the paper reports a small improvement; the synthetic analogues are
    # easier, so we only guard against a clear regression here).
    for dataset in ("mam", "hep"):
        scores = result.classification[dataset]
        assert all(0.0 <= v <= 1.0 for v in scores.values() if not np.isnan(v))
        assert scores["IIM"] >= scores["Missing"] - 0.15
