"""Benchmark regenerating Figure 10: RMS and time vs. the number of imputation neighbours k (CA).

On the sparse CA data, changing k does not help the value-sharing kNN much
(the paper's observation for Figure 10a), while IIM stays clearly more
accurate across the sweep.
"""

import numpy as np

from repro.experiments import figure10


def test_figure10_k_sweep_ca(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure10(profile=profile), rounds=1, iterations=1)
    record_result("figure10", result.render())

    iim = np.asarray(result.rms_series("IIM"))
    knn = np.asarray(result.rms_series("kNN"))
    assert np.isfinite(iim).all() and np.isfinite(knn).all()

    # IIM (regression-based candidates) beats kNN at the best k of each.
    assert iim.min() < knn.min()
    # kNN's improvement from more neighbours is limited on sparse data:
    # its best k is not dramatically better than its k=1 point compared to
    # the gap to IIM.
    assert knn.min() > iim.min()
