"""Benchmark regenerating Figure 13: the accuracy/efficiency trade-off of stepping h.

Larger stepping h evaluates fewer candidate ℓ values: the determination time
drops (Figure 13b) while the imputation error can only stay equal or grow
(Figure 13a).  The straightforward and incremental determinations produce
identical models, so a single RMS series is reported.
"""

import numpy as np

from repro.experiments import figure13


def test_figure13_stepping_tradeoff(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure13(profile=profile), rounds=1, iterations=1)
    record_result("figure13", result.render())

    assert result.x_values == profile.stepping_values
    rms = np.asarray(result.rms["IIM"])
    straightforward = np.asarray(result.seconds["Straightforward"])
    incremental = np.asarray(result.seconds["Incremental"])

    assert np.isfinite(rms).all()
    # Time decreases as the stepping grows (fewer candidates to evaluate).
    assert straightforward[-1] < straightforward[0]
    assert incremental[-1] < incremental[0]
    # The finest stepping gives the lowest (or tied-lowest) imputation error.
    assert rms[0] <= rms.max()
    assert rms[0] <= np.median(rms) * 1.2
