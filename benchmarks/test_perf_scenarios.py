"""The scenario matrix: replay every registered scenario, record latencies.

Enumerates the scenario registry (see :mod:`repro.scenarios.registry`),
replays each spec through its auto-selected transport (the full serve
loop for multi-tenant mixes, the direct engine otherwise) with the
cold-refit oracle enabled, and merges a ``scenario_matrix`` section into
``BENCH_online.json``: per-scenario, per-phase p50/p95/p99 latencies,
verification outcome, speedup and the golden trace digest — the coverage
surface the CI ``scenario-matrix`` job smoke-replays on every PR.
"""

import json
import time
from pathlib import Path

from repro.config import set_obs_enabled
from repro.scenarios import registry, replay

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_online.json"


def _merge_report(**sections) -> None:
    """Read-modify-write the report so independent tests compose."""
    report = {}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(sections)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def test_scenario_matrix(record_result):
    previous = set_obs_enabled(True)
    matrix = {}
    try:
        for name in registry.list():
            started = time.perf_counter()
            report = replay(name, verify=True, isolate_obs=True)
            wall = time.perf_counter() - started
            assert report.verified is True, (
                f"scenario {name!r} diverged from the cold-refit oracle"
            )
            assert report.digest_checked is True, (
                f"scenario {name!r} was not digest-checked; is its golden "
                f"pin missing from golden_digests.json?"
            )
            matrix[name] = {
                "generator": report.generator,
                "transport": report.transport,
                "verified": report.verified,
                "trace_digest": report.trace_digest,
                "n_rounds": report.n_rounds,
                "sessions": sorted(report.session_stats),
                "online_seconds": report.online_seconds,
                "cold_seconds": report.cold_seconds,
                "speedup": report.speedup,
                "max_abs_diff": report.max_abs_diff,
                "wall_seconds": wall,
                "phases": {
                    phase: {
                        "count": summary["count"],
                        "p50": summary["p50"],
                        "p95": summary["p95"],
                        "p99": summary["p99"],
                    }
                    for phase, summary in report.phase_summaries.items()
                },
            }
    finally:
        set_obs_enabled(previous)

    _merge_report(scenario_matrix=matrix)
    record_result(
        "scenario_matrix",
        "\n".join(
            f"{name}: {entry['generator']}/{entry['transport']}, "
            f"{entry['n_rounds']} rounds, verified={entry['verified']}, "
            f"online {entry['online_seconds']:.4f}s vs cold "
            f"{entry['cold_seconds']:.4f}s (x{entry['speedup']:.1f}), "
            f"impute p95 "
            f"{entry['phases']['scenario.impute']['p95'] * 1000:.2f}ms"
            for name, entry in matrix.items()
        ),
    )

    # The registry's acceptance floor: at least 8 built-ins, all three
    # generators exercised, every phase summary well-formed.
    assert len(matrix) >= 8
    assert {e["generator"] for e in matrix.values()} == {
        "streaming", "churn", "multi_tenant"
    }
    for name, entry in matrix.items():
        for phase in ("scenario.fit", "scenario.mutate", "scenario.impute",
                      "scenario.cold_refit"):
            summary = entry["phases"][phase]
            assert summary["count"] >= 1, (name, phase)
            assert summary["p50"] <= summary["p95"] <= summary["p99"], (
                name, phase,
            )
