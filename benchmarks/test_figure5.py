"""Benchmark regenerating Figure 5: RMS and time vs. |F| on the CA dataset."""

import numpy as np

from repro.experiments import figure5


def test_figure5_attribute_sweep_ca(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure5(profile=profile), rounds=1, iterations=1)
    record_result("figure5", result.render())

    assert len(result.x_values) == len(profile.attribute_counts_ca)
    # On the sparse CA data the regression-style methods (GLR, IIM) beat the
    # value-sharing kNN for the full attribute set (the paper's Figure 5a).
    assert result.rms_series("GLR")[-1] < result.rms_series("kNN")[-1]
    assert result.rms_series("IIM")[-1] < result.rms_series("kNN")[-1] * 1.2
    # All series are finite for the methods defined on this data.
    for method in ("IIM", "kNN", "GLR", "LOESS"):
        assert np.isfinite(result.rms_series(method)).all()
