"""Benchmark regenerating Figure 8: RMS vs. the cluster size of incomplete tuples.

When incomplete tuples cluster together their nearest neighbours are also
incomplete, so tuple-model methods that rely on close complete neighbours
degrade, while attribute-model methods stay stable.  IIM copes because it
uses the neighbours' *models*, not their values.
"""

import numpy as np

from repro.experiments import figure8


def test_figure8_clustered_incomplete_tuples(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure8(profile=profile), rounds=1, iterations=1)
    record_result("figure8", result.render())

    assert result.x_values == profile.cluster_sizes
    knn = result.rms_series("kNN")
    glr = result.rms_series("GLR")
    iim = result.rms_series("IIM")

    # kNN degrades as the clusters grow (paper Figure 8a)...
    assert knn[-1] > knn[0]
    # ...while the attribute-model GLR stays comparatively stable.
    assert abs(glr[-1] - glr[0]) < max(0.5 * glr[0], abs(knn[-1] - knn[0]))
    # IIM remains at least as accurate as kNN at the largest cluster size.
    assert iim[-1] <= knn[-1] * 1.05
    assert np.isfinite(iim).all()
