"""Micro-benchmark for Table III: incremental vs. from-scratch model learning.

Table III of the paper gives the asymptotic costs of computing the ridge
sufficient statistics U and V from scratch (linear in ℓ) versus
incrementally (independent of ℓ).  This benchmark measures both strategies
while sweeping ℓ over a fixed neighbour ordering and checks that the
incremental path is faster and produces the same parameters.
"""

import numpy as np
import pytest

from repro.core.learning import learn_models_for_candidates
from repro.data import load_dataset


@pytest.fixture(scope="module")
def learning_inputs():
    relation = load_dataset("ca", size=400)
    values = relation.raw
    features = values[:, :-1]
    target = values[:, -1]
    candidates = list(range(1, 201, 10))
    return features, target, candidates


def test_incremental_learning_speed(benchmark, learning_inputs):
    features, target, candidates = learning_inputs
    result = benchmark.pedantic(
        lambda: learn_models_for_candidates(
            features, target, candidates, incremental=True
        ),
        rounds=1,
        iterations=1,
    )
    assert result.shape == (len(candidates), features.shape[0], features.shape[1] + 1)


def test_from_scratch_learning_speed(benchmark, learning_inputs):
    features, target, candidates = learning_inputs
    result = benchmark.pedantic(
        lambda: learn_models_for_candidates(
            features, target, candidates, incremental=False
        ),
        rounds=1,
        iterations=1,
    )
    assert result.shape == (len(candidates), features.shape[0], features.shape[1] + 1)


def test_incremental_equals_from_scratch_and_is_faster(learning_inputs):
    import time

    features, target, candidates = learning_inputs
    start = time.perf_counter()
    incremental = learn_models_for_candidates(features, target, candidates, incremental=True)
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scratch = learn_models_for_candidates(features, target, candidates, incremental=False)
    scratch_seconds = time.perf_counter() - start

    np.testing.assert_allclose(incremental, scratch, atol=1e-6)
    assert incremental_seconds < scratch_seconds
