"""Benchmark regenerating Figure 4: RMS and time vs. |F| on the ASF dataset.

The paper's Figure 4 sweeps the number of complete attributes used for
imputation on ASF and reports (a) RMS error and (b) imputation time.  More
complete attributes help most methods, and IIM shows the largest gains
because both its neighbour search and its individual regressions improve.
"""

from repro.experiments import figure4


def test_figure4_attribute_sweep_asf(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure4(profile=profile), rounds=1, iterations=1)
    record_result("figure4", result.render())

    assert result.x_values == [
        min(c, 5) for c in profile.attribute_counts_asf
    ]
    # IIM with the full attribute set is at least as accurate as with the
    # smallest one (the paper's "more attributes help" trend).
    iim = result.rms_series("IIM")
    assert iim[-1] <= iim[0] * 1.1
    # With all attributes available IIM beats kNN and GLR on ASF.
    assert iim[-1] < result.rms_series("kNN")[-1]
    assert iim[-1] < result.rms_series("GLR")[-1]
    # Online local-regression methods pay a higher imputation-time cost than
    # IIM, whose individual models are learned offline (Figure 4b).
    assert result.time_series("LOESS")[-1] > result.time_series("kNN")[-1]
