"""Benchmark regenerating Table V: imputation RMS of all methods over the datasets.

The paper's Table V reports, for each dataset, the RMS error of IIM and the
13 existing methods of Table II plus the dataset's sparsity/heterogeneity
profile (R²_S, R²_H).  The benchmark runs the same protocol (5% incomplete
tuples, one missing value on a random attribute each) at the selected scale
profile and checks the qualitative shape the paper emphasises:

* on the heterogeneous ASF-like data, IIM is the most accurate method and
  kNN beats the global regression;
* on the sparse high-dimensional CA-like data, the attribute-model GLR beats
  the tuple-model kNN.
"""

import numpy as np

from repro.experiments import TABLE5_DATASETS, table5


def test_table5_full_comparison(benchmark, profile, record_result):
    result = benchmark.pedantic(
        lambda: table5(profile=profile), rounds=1, iterations=1
    )
    record_result("table5", result.render())

    # Every method/dataset pair produced a number (or an explicit failure for
    # methods undefined on a dataset, e.g. SVD on two-attribute SN).
    for dataset in TABLE5_DATASETS:
        run = result.rows[dataset]
        succeeded = [m for m in result.methods if not np.isnan(result.rms(dataset, m))]
        assert "IIM" in succeeded
        assert len(succeeded) >= 10, f"too many failures on {dataset}: {run.ranking()}"

    # Paper shape 1: heterogeneous data (ASF) — IIM best, kNN beats GLR.
    assert result.rms("asf", "IIM") < result.rms("asf", "kNN")
    assert result.rms("asf", "IIM") < result.rms("asf", "GLR")
    assert result.rms("asf", "kNN") < result.rms("asf", "GLR")

    # Paper shape 2: sparse high-dimensional data (CA) — GLR beats kNN, and
    # IIM stays competitive with the regression-based methods.
    assert result.rms("ca", "GLR") < result.rms("ca", "kNN")
    assert result.rms("ca", "IIM") < result.rms("ca", "kNN") * 1.2

    # Paper shape 3: every serious method beats the Mean baseline on ASF.
    assert result.rms("asf", "IIM") < result.rms("asf", "Mean")

    # Dataset profiles behave as in Table IV/V: CA is sparse (low R²_S) and
    # homogeneous (high R²_H), ASF is the opposite on heterogeneity.
    assert result.sparsity["ca"] < 0.5
    assert result.heterogeneity["ca"] > 0.8
    assert result.heterogeneity["asf"] < result.heterogeneity["ca"]
