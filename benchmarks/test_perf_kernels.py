"""Kernel benchmark: vectorized batch kernels vs. the reference loops.

Times the IIM hot-path kernels under both backends of :mod:`repro.config`
and writes the per-kernel wall-clock numbers to ``BENCH_kernels.json`` at
the repository root, so the performance trajectory is tracked across PRs.

The headline series is the Figure 12 benchmark — adaptive learning
(Algorithm 3) over the profile's scalability grid on the SN and CA datasets,
straightforward and incremental variants — where the vectorized backend is
required to be at least 10× faster in aggregate at the ``bench`` profile.
Secondary kernels (candidate learning, batch kNN, batch imputation) are
timed at the largest grid size.  Output equality between the backends is
asserted here as well (``rtol = 1e-9``); the exhaustive equivalence matrix
lives in ``tests/core/test_backend_equivalence.py``.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.adaptive import adaptive_learning
from repro.core.imputation import impute_with_individual_models
from repro.core.learning import candidate_ell_values, learn_models_for_candidates
from repro.neighbors import BruteForceNeighbors

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
BACKENDS = ("loop", "vectorized")
REPS = 2  # best-of repetitions per timed cell


def _best_of(fn, reps=REPS):
    best, result = np.inf, None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_kernel_speedups(profile, record_result):
    rng = np.random.default_rng(0)
    report = {
        "profile": profile.name,
        "unit": "seconds (best of %d)" % REPS,
        "kernels": {},
    }

    # ------------------------------------------------------------------ #
    # Figure 12 benchmark: adaptive learning across the scalability grid.
    # ------------------------------------------------------------------ #
    from repro.data import load_dataset

    stepping = max(profile.iim_stepping, 10)
    grid_seconds = {backend: 0.0 for backend in BACKENDS}
    grid_cells = []
    datasets = {}
    for dataset in ("sn", "ca"):
        datasets[dataset] = load_dataset(dataset, size=max(profile.scalability_tuple_counts))
        values = datasets[dataset].raw
        for n in profile.scalability_tuple_counts:
            features, target = values[:n, :-1], values[:n, -1]
            candidates = candidate_ell_values(
                n, stepping=stepping, max_ell=min(n, profile.iim_max_learning_neighbors)
            )
            for variant, incremental in (("straightforward", False), ("incremental", True)):
                cell = {"dataset": dataset, "n": int(n), "variant": variant}
                outputs = {}
                for backend in BACKENDS:
                    seconds, outcome = _best_of(
                        lambda backend=backend, inc=incremental: adaptive_learning(
                            features,
                            target,
                            validation_neighbors=profile.default_k,
                            candidates=candidates,
                            incremental=inc,
                            backend=backend,
                        )
                    )
                    grid_seconds[backend] += seconds
                    cell[backend] = seconds
                    outputs[backend] = outcome
                np.testing.assert_allclose(
                    outputs["vectorized"].models.parameters,
                    outputs["loop"].models.parameters,
                    rtol=1e-9,
                    atol=1e-12,
                )
                np.testing.assert_allclose(
                    outputs["vectorized"].costs, outputs["loop"].costs, rtol=1e-9, atol=1e-12
                )
                cell["speedup"] = cell["loop"] / cell["vectorized"]
                grid_cells.append(cell)
    adaptive_speedup = grid_seconds["loop"] / grid_seconds["vectorized"]
    report["kernels"]["adaptive_learning_figure12"] = {
        "description": "Figure 12 benchmark: Algorithm 3 over the scalability grid "
        "(SN + CA, straightforward + incremental)",
        "loop_seconds": grid_seconds["loop"],
        "vectorized_seconds": grid_seconds["vectorized"],
        "speedup": adaptive_speedup,
        "cells": grid_cells,
    }

    # ------------------------------------------------------------------ #
    # Secondary kernels at the largest grid size (CA, the wide dataset).
    # ------------------------------------------------------------------ #
    n = max(profile.scalability_tuple_counts)
    values = datasets["ca"].raw
    features, target = values[:n, :-1], values[:n, -1]
    candidates = candidate_ell_values(
        n, stepping=stepping, max_ell=min(n, profile.iim_max_learning_neighbors)
    )

    def time_kernel(name, description, runner):
        timings, outputs = {}, {}
        for backend in BACKENDS:
            timings[backend], outputs[backend] = _best_of(lambda b=backend: runner(b))
        np.testing.assert_allclose(
            outputs["vectorized"], outputs["loop"], rtol=1e-9, atol=1e-12
        )
        report["kernels"][name] = {
            "description": description,
            "loop_seconds": timings["loop"],
            "vectorized_seconds": timings["vectorized"],
            "speedup": timings["loop"] / timings["vectorized"],
        }

    time_kernel(
        "learn_models_for_candidates",
        f"incremental candidate learning, n={n}, L={len(candidates)}",
        lambda backend: learn_models_for_candidates(
            features, target, candidates, backend=backend
        ),
    )

    searcher = BruteForceNeighbors().fit(features)
    queries = features + rng.normal(scale=0.01, size=features.shape)
    time_kernel(
        "batch_kneighbors",
        f"batched top-{profile.default_k} search, {n} queries over {n} points",
        lambda backend: searcher.kneighbors(queries, profile.default_k, backend=backend)[1],
    )

    models = adaptive_learning(
        features, target, validation_neighbors=profile.default_k, candidates=candidates
    ).models
    time_kernel(
        "impute_batch_voting",
        f"batch imputation (voting combiner), {n} queries, k={profile.default_k}",
        lambda backend: impute_with_individual_models(
            queries, models, features, target, profile.default_k, backend=backend
        ),
    )

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    record_result(
        "kernels",
        "\n".join(
            f"{name}: loop {entry['loop_seconds']:.4f}s, "
            f"vectorized {entry['vectorized_seconds']:.4f}s, "
            f"speedup {entry['speedup']:.1f}x"
            for name, entry in report["kernels"].items()
        ),
    )

    for entry in report["kernels"].values():
        assert entry["vectorized_seconds"] < entry["loop_seconds"], entry["description"]
    if profile.name == "bench":
        # The tentpole acceptance bar: ≥10× on the Figure 12 benchmark.
        assert adaptive_speedup >= 10.0, f"adaptive speedup {adaptive_speedup:.1f}x < 10x"
