"""Reliability benchmarks: WAL overhead on the serve path + recovery speed.

Writes ``BENCH_reliability.json`` at the repository root:

* **wal_overhead** — the same mixed impute+append request stream through
  the JSONL serve path with no WAL and with each sync policy
  (``off`` / ``batch`` / ``always``).  The acceptance bar of the
  reliability PR: the default ``batch`` policy costs at most 15% over the
  WAL-less baseline;
* **recovery** — wall-clock to rebuild a session by replaying the
  ``batch`` run's WAL from scratch, so the cost of a crash is a number.
"""

import json
from pathlib import Path

from repro.reliability.bench import run_reliability_benchmark

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_reliability.json"

#: The acceptance bar: the default (batch) WAL sync policy may cost at most
#: 15% wall-clock on the mixed serve stream.
BATCH_OVERHEAD_TOLERANCE = 1.15


def test_wal_overhead_and_recovery(profile, record_result):
    report = run_reliability_benchmark(profile=profile)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    overhead = report["wal_overhead"]
    recovery = report["recovery"]
    record_result(
        "reliability",
        "\n".join(
            [
                f"mixed stream ({report['n_requests']} requests, store of "
                f"{report['store_rows']} tuples, append every "
                f"{report['append_every']}th):"
            ]
            + [
                f"  wal={mode:>6}: {entry['requests_per_second']:,.0f} req/s"
                + (
                    f" (x{entry['overhead_vs_none']:.3f} vs no WAL)"
                    if "overhead_vs_none" in entry
                    else ""
                )
                for mode, entry in overhead.items()
            ]
            + [
                f"recovery: {recovery['replayed_ops']} WAL op(s) replayed in "
                f"{recovery['seconds']:.3f}s -> {recovery['n_tuples']} tuples"
            ]
        ),
    )

    assert overhead["batch"]["overhead_vs_none"] <= BATCH_OVERHEAD_TOLERANCE, (
        f"wal_sync=batch costs x{overhead['batch']['overhead_vs_none']:.3f} "
        f"over the WAL-less serve path (bar: x{BATCH_OVERHEAD_TOLERANCE})"
    )
    # Sanity floors: off should not beat the baseline by magic, always must
    # still sustain a workable rate (it fsyncs per append, not per impute).
    assert overhead["always"]["requests_per_second"] > 10
    assert recovery["replayed_ops"] >= 1
