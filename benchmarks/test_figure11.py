"""Benchmark regenerating Figure 11: fixed-ℓ learning vs. adaptive learning.

The paper sweeps the fixed number ℓ of learning neighbours on ASF and CA and
compares against the adaptive Algorithm 3.  The fixed-ℓ curve is U-shaped
(overfitting at small ℓ, underfitting at large ℓ) and adaptive learning sits
near its minimum without having to choose ℓ by hand.
"""

import numpy as np

from repro.experiments import figure11


def test_figure11_fixed_vs_adaptive(benchmark, profile, record_result):
    results = benchmark.pedantic(
        lambda: figure11(datasets=("asf", "ca"), profile=profile), rounds=1, iterations=1
    )
    for dataset, result in results.items():
        record_result(f"figure11_{dataset}", result.render())

    for dataset, result in results.items():
        fixed = np.asarray(result.rms_series("Fixed l"))
        adaptive = np.asarray(result.rms_series("Adaptive"))
        assert np.isfinite(fixed).all() and np.isfinite(adaptive).all()
        # Adaptive learning is one value (a horizontal reference line).
        assert len(set(np.round(adaptive, 12))) == 1
        # Adaptive is never worse than the *worst* fixed choice, and is close
        # to the best fixed choice (within 50% on these scaled-down runs; the
        # paper reports it essentially matching the best fixed ℓ).
        assert adaptive[0] <= fixed.max()
        assert adaptive[0] <= fixed.min() * 1.5, dataset

    # The U-shape on the heterogeneous ASF data: the best fixed ℓ is strictly
    # better than the largest swept ℓ (underfitting) for this dataset.
    asf_fixed = np.asarray(results["asf"].rms_series("Fixed l"))
    assert asf_fixed.min() < asf_fixed[-1]
