"""Benchmark regenerating Figure 12: adaptive-learning time, straightforward vs incremental.

The paper's Figure 12 shows the model-determination (adaptive learning) time
as the number of complete tuples grows, for the straightforward re-learning
of Algorithm 3 and for the incremental computation of Proposition 3.  The
incremental variant is consistently faster because the per-candidate
learning cost no longer depends on ℓ (Table III).
"""

import numpy as np

from repro.experiments import figure12


def test_figure12_scalability(benchmark, profile, record_result):
    results = benchmark.pedantic(
        lambda: figure12(datasets=("sn", "ca"), profile=profile), rounds=1, iterations=1
    )
    for dataset, result in results.items():
        record_result(f"figure12_{dataset}", result.render())

    for dataset, result in results.items():
        straightforward = np.asarray(result.seconds["Straightforward"])
        incremental = np.asarray(result.seconds["Incremental"])
        assert straightforward.shape == incremental.shape
        # Determination time grows with n for both variants.
        assert straightforward[-1] > straightforward[0]
        # The incremental computation is not slower overall.  At bench scale
        # (small n, coarse stepping, few attributes) the absolute gap is
        # small and noisy — the paper's order-of-magnitude gap appears with
        # REPRO_FULL=1 and fine stepping (see also Figure 13's h=1 point and
        # the Table III micro-benchmark, where the win is asserted strictly).
        assert incremental.sum() <= straightforward.sum() * 1.10, dataset
