"""Online engine benchmarks: lifecycle traces vs. cold refits.

Replays the SN and CA datasets as streaming traces (see
:mod:`repro.experiments.streaming`) and writes the per-round latencies and
aggregate speedups to ``BENCH_online.json`` at the repository root so the
online performance trajectory is tracked across PRs:

* **append-only** scenarios (adaptive and fixed learning): incremental
  append+serve must beat a cold refit every round;
* **churn** scenarios (interleaved append/update/delete/impute, in- and
  out-of-distribution query traces): the hybrid relearn policy must never
  be materially slower than the always-incremental engine, while capping
  its worst case (the per-sync work of a mutation batch that dirties
  nearly the whole store).

Every scenario also asserts the online and cold sides report (numerically)
identical RMS errors — the engine is an optimisation, not an
approximation.  Tests merge their sections into the report file, so each
can run (and be re-run) independently.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.experiments.streaming import run_churn, run_streaming

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_online.json"

#: Hybrid-vs-always-incremental tolerance: the hybrid engine may not be
#: more than this factor slower on any churn scenario.
HYBRID_TOLERANCE = 1.25


def _merge_report(**sections) -> None:
    """Read-modify-write the report so independent tests compose."""
    report = {}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(sections)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def test_online_engine_speedup(profile, record_result):
    scenarios_report = {}

    # Streaming traces replay more tuples than the static experiments: the
    # incremental win scales with the store-to-neighbourhood ratio, so the
    # candidate grid is capped at a paper-typical ℓ* range (≤ 25) and the
    # profile's dataset sizes are stretched 2–2.5×.
    common = dict(
        n_rounds=12,
        initial_fraction=0.5,
        max_learning_neighbors=min(25, profile.iim_max_learning_neighbors),
    )
    scenarios = (
        (
            "sn_adaptive",
            dict(dataset="sn", learning="adaptive",
                 size=int(2.5 * profile.dataset_sizes["sn"]), **common),
        ),
        (
            "ca_adaptive",
            dict(dataset="ca", learning="adaptive",
                 size=2 * profile.dataset_sizes["ca"], **common),
        ),
        (
            "sn_fixed",
            dict(dataset="sn", learning="fixed",
                 learning_neighbors=profile.default_k,
                 size=2 * profile.dataset_sizes["sn"], **common),
        ),
    )
    for name, kwargs in scenarios:
        start = time.perf_counter()
        result = run_streaming(profile=profile, random_state=0, **kwargs)
        elapsed = time.perf_counter() - start
        entry = result.as_dict()
        entry["trace_wall_seconds"] = elapsed
        scenarios_report[name] = entry

        # Equivalence: the engine must score exactly like the cold refits.
        assert result.max_rms_gap <= 1e-9 * max(
            r.rms_cold for r in result.rounds
        ), f"{name}: online RMS diverged from cold refit"

    _merge_report(
        profile=profile.name,
        unit="seconds per trace (appends + queries)",
        scenarios=scenarios_report,
    )
    record_result(
        "online",
        "\n".join(
            f"{name}: online {entry['online_seconds']:.4f}s, "
            f"cold {entry['cold_seconds']:.4f}s, "
            f"speedup {entry['speedup']:.1f}x "
            f"({entry['engine_stats']['incremental_refreshes']} incremental / "
            f"{entry['engine_stats']['full_refreshes']} full refreshes)"
            for name, entry in scenarios_report.items()
        ),
    )

    # The acceptance bar: incremental maintenance beats cold refits on every
    # scenario of the trace (per-round jitter is tolerated; the aggregate
    # must win).
    for name, entry in scenarios_report.items():
        assert entry["speedup"] > 1.0, (
            f"{name}: online trace ({entry['online_seconds']:.4f}s) not faster "
            f"than cold refits ({entry['cold_seconds']:.4f}s)"
        )


def test_online_churn_hybrid(profile, record_result):
    """Full-lifecycle churn: hybrid vs. always-incremental vs. cold."""
    churn_report = {}

    cap = min(25, profile.iim_max_learning_neighbors)
    scenarios = (
        # Moderate churn over a large warm store — the production shape:
        # corrections and retractions are rarer than inserts.
        (
            "sn_churn",
            dict(dataset="sn", learning="adaptive",
                 size=int(2.5 * profile.dataset_sizes["sn"]),
                 n_rounds=10, initial_fraction=0.7,
                 updates_per_round=3, deletes_per_round=4,
                 max_learning_neighbors=cap),
        ),
        # Out-of-distribution query trace over the same churn shape.
        (
            "sn_churn_ood",
            dict(dataset="sn", learning="adaptive", query_mode="ood",
                 size=int(2.5 * profile.dataset_sizes["sn"]),
                 n_rounds=10, initial_fraction=0.7,
                 updates_per_round=3, deletes_per_round=4,
                 max_learning_neighbors=cap),
        ),
        # Heavy churn: a tiny initial store swamped by append/delete sweeps
        # — every mutation batch dirties most prefixes, the regime the
        # hybrid fallback exists for.
        (
            "sn_churn_heavy",
            dict(dataset="sn", learning="adaptive",
                 size=int(1.2 * profile.dataset_sizes["sn"]),
                 n_rounds=4, initial_fraction=0.1,
                 updates_per_round=10, deletes_per_round=15,
                 max_learning_neighbors=cap),
        ),
    )
    for name, kwargs in scenarios:
        hybrid = run_churn(
            profile=profile, random_state=0, fallback_fraction="default", **kwargs
        )
        always = run_churn(
            profile=profile, random_state=0, fallback_fraction=None,
            run_cold=False, **kwargs
        )

        # Equivalence on the hybrid side (the always-incremental engine is
        # asserted equal in the tier-1 suite; identical seeds ⇒ identical
        # traces here).
        assert hybrid.max_rms_gap <= 1e-9 * max(
            1e-30, max(r.rms_cold for r in hybrid.rounds)
        ), f"{name}: online RMS diverged from cold refit"

        entry = hybrid.as_dict()
        entry["always_incremental_seconds"] = always.online_seconds
        entry["always_incremental_stats"] = dict(always.engine_stats)
        entry["hybrid_vs_always"] = hybrid.online_seconds / always.online_seconds
        churn_report[name] = entry

        # The acceptance bar: the hybrid policy is never materially slower
        # than always-incremental…
        assert hybrid.online_seconds <= HYBRID_TOLERANCE * always.online_seconds, (
            f"{name}: hybrid policy ({hybrid.online_seconds:.4f}s) materially "
            f"slower than always-incremental ({always.online_seconds:.4f}s)"
        )

    # …and it actually engages where the incremental path degenerates.
    heavy_stats = churn_report["sn_churn_heavy"]["engine_stats"]
    assert heavy_stats["hybrid_full_rebuilds"] > 0, (
        "heavy churn never triggered the hybrid fallback"
    )

    _merge_report(churn_scenarios=churn_report)
    record_result(
        "online_churn",
        "\n".join(
            f"{name}: hybrid {entry['online_seconds']:.4f}s "
            f"(vs always-incremental {entry['always_incremental_seconds']:.4f}s, "
            f"x{entry['hybrid_vs_always']:.2f}; "
            f"{entry['engine_stats']['hybrid_full_rebuilds']} fallbacks), "
            f"cold {entry['cold_seconds']:.4f}s, speedup {entry['speedup']:.2f}x, "
            f"query_mode={entry['query_mode']}"
            for name, entry in churn_report.items()
        ),
    )


def test_online_snapshot_roundtrip_cost(profile, record_result, tmp_path):
    """Snapshot/restore latency at profile scale (informational)."""
    from repro.online import OnlineImputationEngine

    result_dir = tmp_path / "engine"
    from repro.data import load_dataset

    relation = load_dataset("sn", size=profile.dataset_sizes["sn"])
    engine = OnlineImputationEngine(
        k=profile.default_k,
        learning="adaptive",
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    engine.append(relation.raw)
    queries = relation.raw[: profile.default_k].copy()
    queries[:, -1] = np.nan
    warm = engine.impute_batch(queries)

    start = time.perf_counter()
    engine.snapshot(result_dir)
    save_seconds = time.perf_counter() - start
    start = time.perf_counter()
    restored = OnlineImputationEngine.load(result_dir)
    load_seconds = time.perf_counter() - start

    assert np.array_equal(warm, restored.impute_batch(queries))
    record_result(
        "online_snapshot",
        f"snapshot {save_seconds * 1000:.1f} ms, restore {load_seconds * 1000:.1f} ms "
        f"(store of {engine.n_tuples} tuples)",
    )
