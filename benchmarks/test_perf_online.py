"""Online engine benchmark: incremental append+serve vs. cold refit.

Replays the SN and CA datasets as streaming append/query traces (see
:mod:`repro.experiments.streaming`) under adaptive and fixed learning, and
writes the per-round latencies and aggregate speedups to
``BENCH_online.json`` at the repository root so the online performance
trajectory is tracked across PRs.

The acceptance bar: across the whole trace, incremental append+refresh must
be faster than refitting from scratch every round, and both sides must
report (numerically) identical RMS errors — the engine is an optimisation,
not an approximation.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.experiments.streaming import run_streaming

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_online.json"


def test_online_engine_speedup(profile, record_result):
    report = {
        "profile": profile.name,
        "unit": "seconds per trace (appends + queries)",
        "scenarios": {},
    }

    # Streaming traces replay more tuples than the static experiments: the
    # incremental win scales with the store-to-neighbourhood ratio, so the
    # candidate grid is capped at a paper-typical ℓ* range (≤ 25) and the
    # profile's dataset sizes are stretched 2–2.5×.
    common = dict(
        n_rounds=12,
        initial_fraction=0.5,
        max_learning_neighbors=min(25, profile.iim_max_learning_neighbors),
    )
    scenarios = (
        (
            "sn_adaptive",
            dict(dataset="sn", learning="adaptive",
                 size=int(2.5 * profile.dataset_sizes["sn"]), **common),
        ),
        (
            "ca_adaptive",
            dict(dataset="ca", learning="adaptive",
                 size=2 * profile.dataset_sizes["ca"], **common),
        ),
        (
            "sn_fixed",
            dict(dataset="sn", learning="fixed",
                 learning_neighbors=profile.default_k,
                 size=2 * profile.dataset_sizes["sn"], **common),
        ),
    )
    for name, kwargs in scenarios:
        start = time.perf_counter()
        result = run_streaming(profile=profile, random_state=0, **kwargs)
        elapsed = time.perf_counter() - start
        entry = result.as_dict()
        entry["trace_wall_seconds"] = elapsed
        report["scenarios"][name] = entry

        # Equivalence: the engine must score exactly like the cold refits.
        assert result.max_rms_gap <= 1e-9 * max(
            r.rms_cold for r in result.rounds
        ), f"{name}: online RMS diverged from cold refit"

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    record_result(
        "online",
        "\n".join(
            f"{name}: online {entry['online_seconds']:.4f}s, "
            f"cold {entry['cold_seconds']:.4f}s, "
            f"speedup {entry['speedup']:.1f}x "
            f"({entry['engine_stats']['incremental_refreshes']} incremental / "
            f"{entry['engine_stats']['full_refreshes']} full refreshes)"
            for name, entry in report["scenarios"].items()
        ),
    )

    # The acceptance bar: incremental maintenance beats cold refits on every
    # scenario of the trace (per-round jitter is tolerated; the aggregate
    # must win).
    for name, entry in report["scenarios"].items():
        assert entry["speedup"] > 1.0, (
            f"{name}: online trace ({entry['online_seconds']:.4f}s) not faster "
            f"than cold refits ({entry['cold_seconds']:.4f}s)"
        )


def test_online_snapshot_roundtrip_cost(profile, record_result, tmp_path):
    """Snapshot/restore latency at profile scale (informational)."""
    from repro.online import OnlineImputationEngine

    result_dir = tmp_path / "engine"
    from repro.data import load_dataset

    relation = load_dataset("sn", size=profile.dataset_sizes["sn"])
    engine = OnlineImputationEngine(
        k=profile.default_k,
        learning="adaptive",
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    engine.append(relation.raw)
    queries = relation.raw[: profile.default_k].copy()
    queries[:, -1] = np.nan
    warm = engine.impute_batch(queries)

    start = time.perf_counter()
    engine.snapshot(result_dir)
    save_seconds = time.perf_counter() - start
    start = time.perf_counter()
    restored = OnlineImputationEngine.load(result_dir)
    load_seconds = time.perf_counter() - start

    assert np.array_equal(warm, restored.impute_batch(queries))
    record_result(
        "online_snapshot",
        f"snapshot {save_seconds * 1000:.1f} ms, restore {load_seconds * 1000:.1f} ms "
        f"(store of {engine.n_tuples} tuples)",
    )
