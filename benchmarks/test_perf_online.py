"""Online engine benchmarks: lifecycle traces vs. cold refits.

Replays the SN and CA datasets as streaming traces (see
:mod:`repro.experiments.streaming`) and writes the per-round latencies and
aggregate speedups to ``BENCH_online.json`` at the repository root so the
online performance trajectory is tracked across PRs:

* **append-only** scenarios (adaptive and fixed learning): incremental
  append+serve must beat a cold refit every round;
* **churn** scenarios (interleaved append/update/delete/impute, in- and
  out-of-distribution query traces): the hybrid relearn policy must never
  be materially slower than the always-incremental engine, while capping
  its worst case (the per-sync work of a mutation batch that dirties
  nearly the whole store).

Every scenario also asserts the online and cold sides report (numerically)
identical RMS errors — the engine is an optimisation, not an
approximation.  Tests merge their sections into the report file, so each
can run (and be re-run) independently.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments.streaming import run_churn, run_streaming

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_online.json"

#: Hybrid-vs-always-incremental tolerance: the hybrid engine may not be
#: more than this factor slower on any churn scenario.
HYBRID_TOLERANCE = 1.25


def _merge_report(**sections) -> None:
    """Read-modify-write the report so independent tests compose."""
    report = {}
    if RESULT_PATH.exists():
        try:
            report = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report.update(sections)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def test_online_engine_speedup(profile, record_result):
    scenarios_report = {}

    # Streaming traces replay more tuples than the static experiments: the
    # incremental win scales with the store-to-neighbourhood ratio, so the
    # candidate grid is capped at a paper-typical ℓ* range (≤ 25) and the
    # profile's dataset sizes are stretched 2–2.5×.
    common = dict(
        n_rounds=12,
        initial_fraction=0.5,
        max_learning_neighbors=min(25, profile.iim_max_learning_neighbors),
    )
    scenarios = (
        (
            "sn_adaptive",
            dict(dataset="sn", learning="adaptive",
                 size=int(2.5 * profile.dataset_sizes["sn"]), **common),
        ),
        (
            "ca_adaptive",
            dict(dataset="ca", learning="adaptive",
                 size=2 * profile.dataset_sizes["ca"], **common),
        ),
        (
            "sn_fixed",
            dict(dataset="sn", learning="fixed",
                 learning_neighbors=profile.default_k,
                 size=2 * profile.dataset_sizes["sn"], **common),
        ),
    )
    for name, kwargs in scenarios:
        start = time.perf_counter()
        result = run_streaming(profile=profile, random_state=0, **kwargs)
        elapsed = time.perf_counter() - start
        entry = result.as_dict()
        entry["trace_wall_seconds"] = elapsed
        scenarios_report[name] = entry

        # Equivalence: the engine must score exactly like the cold refits.
        assert result.max_rms_gap <= 1e-9 * max(
            r.rms_cold for r in result.rounds
        ), f"{name}: online RMS diverged from cold refit"

    _merge_report(
        profile=profile.name,
        unit="seconds per trace (appends + queries)",
        scenarios=scenarios_report,
    )
    record_result(
        "online",
        "\n".join(
            f"{name}: online {entry['online_seconds']:.4f}s, "
            f"cold {entry['cold_seconds']:.4f}s, "
            f"speedup {entry['speedup']:.1f}x "
            f"({entry['engine_stats']['incremental_refreshes']} incremental / "
            f"{entry['engine_stats']['full_refreshes']} full refreshes)"
            for name, entry in scenarios_report.items()
        ),
    )

    # The acceptance bar: incremental maintenance beats cold refits on every
    # scenario of the trace (per-round jitter is tolerated; the aggregate
    # must win).
    for name, entry in scenarios_report.items():
        assert entry["speedup"] > 1.0, (
            f"{name}: online trace ({entry['online_seconds']:.4f}s) not faster "
            f"than cold refits ({entry['cold_seconds']:.4f}s)"
        )


def test_online_churn_hybrid(profile, record_result):
    """Full-lifecycle churn: hybrid vs. always-incremental vs. cold."""
    churn_report = {}

    cap = min(25, profile.iim_max_learning_neighbors)
    scenarios = (
        # Moderate churn over a large warm store — the production shape:
        # corrections and retractions are rarer than inserts.
        (
            "sn_churn",
            dict(dataset="sn", learning="adaptive",
                 size=int(2.5 * profile.dataset_sizes["sn"]),
                 n_rounds=10, initial_fraction=0.7,
                 updates_per_round=3, deletes_per_round=4,
                 max_learning_neighbors=cap),
        ),
        # Out-of-distribution query trace over the same churn shape.
        (
            "sn_churn_ood",
            dict(dataset="sn", learning="adaptive", query_mode="ood",
                 size=int(2.5 * profile.dataset_sizes["sn"]),
                 n_rounds=10, initial_fraction=0.7,
                 updates_per_round=3, deletes_per_round=4,
                 max_learning_neighbors=cap),
        ),
        # Heavy churn: a tiny initial store swamped by append/delete sweeps
        # — every mutation batch dirties most prefixes, the regime the
        # hybrid fallback exists for.
        (
            "sn_churn_heavy",
            dict(dataset="sn", learning="adaptive",
                 size=int(1.2 * profile.dataset_sizes["sn"]),
                 n_rounds=4, initial_fraction=0.1,
                 updates_per_round=10, deletes_per_round=15,
                 max_learning_neighbors=cap),
        ),
    )
    for name, kwargs in scenarios:
        hybrid = run_churn(
            profile=profile, random_state=0, fallback_fraction="default", **kwargs
        )
        always = run_churn(
            profile=profile, random_state=0, fallback_fraction=None,
            run_cold=False, **kwargs
        )

        # Equivalence on the hybrid side (the always-incremental engine is
        # asserted equal in the tier-1 suite; identical seeds ⇒ identical
        # traces here).
        assert hybrid.max_rms_gap <= 1e-9 * max(
            1e-30, max(r.rms_cold for r in hybrid.rounds)
        ), f"{name}: online RMS diverged from cold refit"

        entry = hybrid.as_dict()
        entry["always_incremental_seconds"] = always.online_seconds
        entry["always_incremental_stats"] = dict(always.engine_stats)
        entry["hybrid_vs_always"] = hybrid.online_seconds / always.online_seconds
        churn_report[name] = entry

        # The acceptance bar: the hybrid policy is never materially slower
        # than always-incremental…
        assert hybrid.online_seconds <= HYBRID_TOLERANCE * always.online_seconds, (
            f"{name}: hybrid policy ({hybrid.online_seconds:.4f}s) materially "
            f"slower than always-incremental ({always.online_seconds:.4f}s)"
        )

    # …and it actually engages where the incremental path degenerates.
    heavy_stats = churn_report["sn_churn_heavy"]["engine_stats"]
    assert heavy_stats["hybrid_full_rebuilds"] > 0, (
        "heavy churn never triggered the hybrid fallback"
    )

    # Delete cost decrement vs the exact rebuild on a decrement-friendly
    # shape: a small candidate grid leaves most owners of a deleted
    # validator model-clean, so the subtract-retired-pairs path actually
    # engages (with ℓ-caps near the store size every owner is model-dirty
    # and both modes coincide).
    dec_kwargs = dict(scenarios[0][1])
    dec_kwargs["max_learning_neighbors"] = min(8, cap)
    dec_kwargs["deletes_per_round"] = 8
    rebuild_ref = run_churn(
        profile=profile, random_state=0, fallback_fraction="default",
        delete_cost_mode="rebuild", run_cold=False, **dec_kwargs,
    )
    decrement = run_churn(
        profile=profile, random_state=0, fallback_fraction="default",
        delete_cost_mode="decrement", **dec_kwargs,
    )
    assert decrement.max_rms_gap <= 1e-9 * max(
        1e-30, max(r.rms_cold for r in decrement.rounds)
    ), "decrement mode diverged from the cold refit"
    entry = decrement.as_dict()
    entry["vs_rebuild"] = decrement.online_seconds / rebuild_ref.online_seconds
    churn_report["sn_churn_decrement"] = entry
    assert entry["engine_stats"]["delete_cost_decrements"] > 0, (
        "the decrement scenario never exercised the decrement path"
    )

    _merge_report(churn_scenarios=churn_report)

    def _line(name, entry):
        if "always_incremental_seconds" in entry:
            return (
                f"{name}: hybrid {entry['online_seconds']:.4f}s "
                f"(vs always-incremental "
                f"{entry['always_incremental_seconds']:.4f}s, "
                f"x{entry['hybrid_vs_always']:.2f}; "
                f"{entry['engine_stats']['hybrid_full_rebuilds']} fallbacks), "
                f"cold {entry['cold_seconds']:.4f}s, "
                f"speedup {entry['speedup']:.2f}x, "
                f"query_mode={entry['query_mode']}"
            )
        return (
            f"{name}: {entry['online_seconds']:.4f}s "
            f"(x{entry['vs_rebuild']:.2f} vs the rebuild delete path; "
            f"{entry['engine_stats']['delete_cost_decrements']} rows "
            f"decremented, {entry['engine_stats']['delete_cost_guard_rebuilds']} "
            f"guard rebuilds), cold {entry['cold_seconds']:.4f}s, "
            f"speedup {entry['speedup']:.2f}x"
        )

    record_result(
        "online_churn",
        "\n".join(_line(name, entry) for name, entry in churn_report.items()),
    )


def test_online_large_store(profile, record_result):
    """Sharded columnar store at ≥200k tuples: mutation + query throughput.

    Per-tuple model maintenance is inherently O(n²) in the paper's
    algorithms, so this scenario benchmarks the layer the sharding refactor
    actually targets at this scale: the store's mutation path (append
    bursts, delete sweeps, update bursts with slot recycling), the bounded
    journal, and neighbour-query serving through the per-shard top-K merge
    — verified bit-identical to the unsharded brute-force reference at full
    scale.  Memory is recorded against what the pre-refactor engine would
    have kept resident for the same store (one feature-submatrix + target
    copy per cached attribute state).
    """
    from repro.neighbors import BruteForceNeighbors
    from repro.online import ColumnarTupleStore, ShardedNeighbors

    n_rows = int(os.environ.get("REPRO_LARGE_STORE_ROWS", "220000"))
    width = 6
    shard_capacity = 4096
    rng = np.random.default_rng(0)
    store = ColumnarTupleStore(width, shard_capacity=shard_capacity)

    start = time.perf_counter()
    batch = 20_000
    for offset in range(0, n_rows, batch):
        store.append(rng.normal(size=(min(batch, n_rows - offset), width)))
    append_seconds = time.perf_counter() - start

    start = time.perf_counter()
    retired = store.delete(
        np.unique(rng.integers(0, store.n_live, size=n_rows // 20))
    )
    store.release(retired)
    delete_seconds = time.perf_counter() - start

    start = time.perf_counter()
    n_updates = n_rows // 40
    for index in rng.integers(0, store.n_live, size=n_updates):
        old_slot, _ = store.update(int(index), rng.normal(size=width))
        store.release([old_slot])
    update_seconds = time.perf_counter() - start
    assert store.recycled_slots > 0, "update bursts must recycle released slots"

    # Query serving through the per-shard top-K merge, checked bit-identical
    # to the monolithic brute-force reference at full scale.
    view = store.feature_view(exclude=width - 1)
    searcher = ShardedNeighbors(view)
    queries = rng.normal(size=(64, width - 1))
    start = time.perf_counter()
    dist_s, idx_s = searcher.kneighbors(queries, 10)
    query_seconds = time.perf_counter() - start
    reference = BruteForceNeighbors().fit(store.matrix()[:, : width - 1])
    dist_b, idx_b = reference.kneighbors(queries, 10)
    assert np.array_equal(idx_s, idx_b) and np.array_equal(dist_s, dist_b)

    n = store.n_live
    legacy_per_state = n * width * 8  # feature submatrix + target copy
    section = {
        "n_rows": n,
        "width": width,
        "shard_capacity": shard_capacity,
        "n_shards": store.n_shards,
        "append_seconds": append_seconds,
        "append_rows_per_second": n_rows / append_seconds,
        "delete_seconds": delete_seconds,
        "update_seconds": update_seconds,
        "updates_per_second": n_updates / update_seconds,
        "query_seconds": query_seconds,
        "store_bytes": store.nbytes,
        "legacy_per_state_copy_bytes": legacy_per_state,
        "state_slot_bytes": int(n * 8),
        "copy_elimination_ratio": legacy_per_state / (n * 8),
    }
    _merge_report(large_store=section)
    record_result(
        "online_large_store",
        f"{n} live rows × {width} attrs in {store.n_shards} shards "
        f"({store.nbytes / 1e6:.1f} MB columnar)\n"
        f"append {append_seconds:.3f}s ({n_rows / append_seconds:,.0f} rows/s), "
        f"delete sweep {delete_seconds:.3f}s, "
        f"{n_updates} updates {update_seconds:.3f}s\n"
        f"64-query k=10 sharded top-K merge {query_seconds * 1000:.1f} ms "
        f"(== brute force bit-for-bit)\n"
        f"per-state resident: {n * 8 / 1e6:.1f} MB slots vs "
        f"{legacy_per_state / 1e6:.1f} MB legacy copies "
        f"({legacy_per_state / (n * 8):.0f}x eliminated)",
    )

    # The memory claim, in numbers: a view costs one int64 per row; the
    # legacy engine kept width× that in float copies per cached state.
    assert legacy_per_state / (n * 8) >= width


def test_online_snapshot_roundtrip_cost(profile, record_result, tmp_path):
    """Snapshot/restore latency at profile scale (informational)."""
    from repro.online import OnlineImputationEngine

    result_dir = tmp_path / "engine"
    from repro.data import load_dataset

    relation = load_dataset("sn", size=profile.dataset_sizes["sn"])
    engine = OnlineImputationEngine(
        k=profile.default_k,
        learning="adaptive",
        stepping=profile.iim_stepping,
        max_learning_neighbors=profile.iim_max_learning_neighbors,
    )
    engine.append(relation.raw)
    queries = relation.raw[: profile.default_k].copy()
    queries[:, -1] = np.nan
    warm = engine.impute_batch(queries)

    start = time.perf_counter()
    engine.snapshot(result_dir)
    save_seconds = time.perf_counter() - start
    start = time.perf_counter()
    restored = OnlineImputationEngine.load(result_dir)
    load_seconds = time.perf_counter() - start

    assert np.array_equal(warm, restored.impute_batch(queries))
    record_result(
        "online_snapshot",
        f"snapshot {save_seconds * 1000:.1f} ms, restore {load_seconds * 1000:.1f} ms "
        f"(store of {engine.n_tuples} tuples)",
    )
