"""Benchmark regenerating Table VI: RMS per incomplete attribute over ASF.

The paper varies which attribute ``A_x`` of the ASF dataset is missing and
reports per-attribute RMS together with the attribute's sparsity and
heterogeneity profile.  IIM is the best or near-best method on every
attribute because it handles both regimes.
"""

import numpy as np

from repro.experiments import TABLE6_ATTRIBUTES, table6


def test_table6_per_attribute(benchmark, profile, record_result):
    result = benchmark.pedantic(
        lambda: table6(profile=profile), rounds=1, iterations=1
    )
    record_result("table6", result.render())

    assert set(result.rows) == set(TABLE6_ATTRIBUTES)

    for attribute in TABLE6_ATTRIBUTES:
        succeeded = [m for m in result.methods if not np.isnan(result.rms(attribute, m))]
        assert "IIM" in succeeded and "kNN" in succeeded and "GLR" in succeeded
        # The error scale differs per attribute (different value ranges), but
        # IIM never degenerates to worse than the Mean baseline.
        assert result.rms(attribute, "IIM") < result.rms(attribute, "Mean")

    # Aggregate shape: averaged over attributes IIM is at least as accurate
    # as both of its special cases (kNN and GLR).
    def mean_rms(method):
        return float(np.mean([result.rms(a, method) for a in TABLE6_ATTRIBUTES]))

    assert mean_rms("IIM") <= mean_rms("kNN") * 1.05
    assert mean_rms("IIM") <= mean_rms("GLR") * 1.05
