"""Service-layer benchmarks: facade overhead and serve-loop throughput.

Writes ``BENCH_api.json`` at the repository root:

* **facade_overhead** — the streaming scenario driven through an
  :class:`~repro.api.OnlineSession` versus identical raw
  :class:`~repro.online.OnlineImputationEngine` calls (same seeds, same
  trace).  The outputs must be bit-identical and the session side may cost
  at most 5% more wall-clock — the acceptance bar of the api redesign;
* **serve_throughput** — requests/s through the full JSONL wire path
  (decode → dispatch → impute → encode) for single-row and batched impute
  requests, the first real serving numbers of the project.
"""

import json
from pathlib import Path

from repro.api.bench import run_api_benchmark

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_api.json"

#: The acceptance bar: the session facade may cost at most 5% wall-clock
#: over direct engine calls on the streaming trace.
FACADE_OVERHEAD_TOLERANCE = 1.05


def test_api_facade_overhead_and_serve_throughput(profile, record_result):
    report = run_api_benchmark(profile=profile)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    overhead = report["facade_overhead"]
    throughput = report["serve_throughput"]
    record_result(
        "api",
        f"facade: session {overhead['session_seconds']:.4f}s vs direct "
        f"{overhead['direct_seconds']:.4f}s "
        f"(x{overhead['overhead_ratio']:.3f}, bit-identical outputs)\n"
        f"serve (store of {throughput['store_rows']} tuples): "
        f"{throughput['single_requests_per_second']:,.0f} single-row req/s; "
        f"{throughput['batched_requests_per_second']:,.0f} batched req/s = "
        f"{throughput['batched_rows_per_second']:,.0f} rows/s "
        f"(batch {throughput['batch_size']})",
    )

    # run_api_benchmark already asserts bit-identical outputs; the report
    # records it so regressions are visible in the artifact too.
    assert overhead["bit_identical"] is True

    assert overhead["overhead_ratio"] <= FACADE_OVERHEAD_TOLERANCE, (
        f"session facade costs x{overhead['overhead_ratio']:.3f} over direct "
        f"engine calls (bar: x{FACADE_OVERHEAD_TOLERANCE})"
    )

    # Sanity floors, not performance bars: the serve loop must sustain a
    # non-trivial request rate even on the smallest CI machines.
    assert throughput["single_requests_per_second"] > 50
    assert throughput["batched_rows_per_second"] > 500
