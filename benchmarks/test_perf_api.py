"""Service-layer benchmarks: facade overhead and serve-loop throughput.

Writes ``BENCH_api.json`` at the repository root:

* **facade_overhead** — the streaming scenario driven through an
  :class:`~repro.api.OnlineSession` versus identical raw
  :class:`~repro.online.OnlineImputationEngine` calls (same seeds, same
  trace).  The outputs must be bit-identical and the session side may cost
  at most 5% more wall-clock — the acceptance bar of the api redesign;
* **serve_throughput** — requests/s through the full JSONL wire path
  (decode → dispatch → impute → encode) for single-row and batched impute
  requests, the first real serving numbers of the project;
* **serve_concurrency** — aggregate req/s of 1/2/4/8 pipelining clients
  (one session each) under three dispatch modes: the sequential
  single-worker baseline, the concurrent worker pool, and the pool with
  micro-batch coalescing.  The acceptance bar of the concurrency
  refactor: at 4 clients the best concurrent mode must deliver at least
  2× the single-lock baseline's aggregate throughput, with responses
  matching sequential dispatch within rtol 1e-9;
* **obs_overhead** — the observability layer's cost on the same trace: the
  disabled path must stay within 2% of a no-opped build, and enabling the
  layer may cost at most 1.10× on the serve single-request path;
* **query_ondemand** — a selective SELECT answered by impute-on-demand
  evaluation versus pre-imputing only the touched rows by hand (bar: the
  query machinery may cost at most 1.1×) and versus materializing the
  whole table up front (bar: the lazy path must win outright on a
  selective query).  All strategies return bit-identical rows.
"""

import json
from pathlib import Path

from repro.api.bench import run_api_benchmark

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_api.json"

#: The acceptance bar: the session facade may cost at most 5% wall-clock
#: over direct engine calls on the streaming trace.
FACADE_OVERHEAD_TOLERANCE = 1.05

#: Observability bars: with the layer disabled, the instrumented engine may
#: cost at most 2% over the same trace with the call sites no-opped out; on
#: the serve single-request path, enabling the layer may cost at most 1.10x.
OBS_DISABLED_TOLERANCE = 1.02
OBS_SERVE_ENABLED_TOLERANCE = 1.10

#: Concurrency bar: at 4 concurrent sessions the best dispatch mode must
#: beat the single-lock sequential baseline by at least 2x aggregate req/s.
CONCURRENCY_SPEEDUP_FLOOR = 2.0

#: Query bars: answering a selective SELECT on demand may cost at most
#: 1.1x pre-imputing exactly the touched rows by hand, and must beat
#: materializing the full table (imputing every incomplete row) outright.
QUERY_ONDEMAND_TOLERANCE = 1.10
QUERY_FULL_SPEEDUP_FLOOR = 1.0


def test_api_facade_overhead_and_serve_throughput(profile, record_result):
    report = run_api_benchmark(profile=profile)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    overhead = report["facade_overhead"]
    throughput = report["serve_throughput"]
    obs = report["obs_overhead"]
    concurrency = report["serve_concurrency"]
    query = report["query_ondemand"]

    def _rps(mode, clients):
        return concurrency["modes"][mode]["by_clients"][str(clients)][
            "aggregate_requests_per_second"
        ]

    record_result(
        "api",
        f"facade: session {overhead['session_seconds']:.4f}s vs direct "
        f"{overhead['direct_seconds']:.4f}s "
        f"(x{overhead['overhead_ratio']:.3f}, bit-identical outputs)\n"
        f"serve (store of {throughput['store_rows']} tuples): "
        f"{throughput['single_requests_per_second']:,.0f} single-row req/s; "
        f"{throughput['batched_requests_per_second']:,.0f} batched req/s = "
        f"{throughput['batched_rows_per_second']:,.0f} rows/s "
        f"(batch {throughput['batch_size']})\n"
        f"concurrency (4 clients, store of {concurrency['store_rows']}): "
        f"baseline {_rps('baseline_single_lock', 4):,.0f} req/s; "
        f"concurrent {_rps('concurrent', 4):,.0f} req/s; "
        f"coalesced {_rps('coalesced', 4):,.0f} req/s "
        f"(best x{concurrency['best_speedup_at_4_clients']:.2f}, "
        f"responses match sequential within rtol 1e-9)\n"
        f"obs: facade disabled x{obs['facade_disabled_ratio']:.3f} / enabled "
        f"x{obs['facade_enabled_ratio']:.3f} vs no-op; serve single "
        f"{obs['serve_single_disabled_rps']:,.0f} req/s disabled vs "
        f"{obs['serve_single_enabled_rps']:,.0f} req/s enabled "
        f"(x{obs['serve_single_enabled_ratio']:.3f})\n"
        f"query on-demand ({query['touched_rows']} of "
        f"{query['pending_rows']} pending rows touched, store of "
        f"{query['store_rows']}): {query['ondemand_seconds'] * 1e3:.2f}ms "
        f"vs touched-only pre-impute "
        f"{query['preimpute_touched_seconds'] * 1e3:.2f}ms "
        f"(x{query['ondemand_vs_touched_ratio']:.3f}) vs full materialize "
        f"{query['preimpute_full_seconds'] * 1e3:.2f}ms "
        f"(x{query['full_vs_ondemand_speedup']:.2f} saved, bit-identical)",
    )

    # run_api_benchmark already asserts bit-identical outputs; the report
    # records it so regressions are visible in the artifact too.
    assert overhead["bit_identical"] is True

    assert overhead["overhead_ratio"] <= FACADE_OVERHEAD_TOLERANCE, (
        f"session facade costs x{overhead['overhead_ratio']:.3f} over direct "
        f"engine calls (bar: x{FACADE_OVERHEAD_TOLERANCE})"
    )

    # Sanity floors, not performance bars: the serve loop must sustain a
    # non-trivial request rate even on the smallest CI machines.
    assert throughput["single_requests_per_second"] > 50
    assert throughput["batched_rows_per_second"] > 500

    assert obs["facade_disabled_ratio"] <= OBS_DISABLED_TOLERANCE, (
        f"disabled observability costs x{obs['facade_disabled_ratio']:.3f} "
        f"over the no-opped engine (bar: x{OBS_DISABLED_TOLERANCE})"
    )
    assert obs["serve_single_enabled_ratio"] <= OBS_SERVE_ENABLED_TOLERANCE, (
        f"enabling observability costs x{obs['serve_single_enabled_ratio']:.3f} "
        f"on the serve single-request path "
        f"(bar: x{OBS_SERVE_ENABLED_TOLERANCE})"
    )

    # The sweep itself verifies (and raises on) response divergence from
    # sequential dispatch; the bar here is the aggregate-throughput win.
    assert concurrency["best_speedup_at_4_clients"] >= (
        CONCURRENCY_SPEEDUP_FLOOR
    ), (
        f"best concurrent dispatch mode delivers only "
        f"x{concurrency['best_speedup_at_4_clients']:.2f} the single-lock "
        f"baseline at 4 clients (bar: x{CONCURRENCY_SPEEDUP_FLOOR})"
    )

    # The helper raises if any strategy's rows diverge; the flag makes the
    # guarantee visible in the artifact.
    assert query["bit_identical"] is True
    assert query["ondemand_vs_touched_ratio"] <= QUERY_ONDEMAND_TOLERANCE, (
        f"impute-on-demand evaluation costs "
        f"x{query['ondemand_vs_touched_ratio']:.3f} over pre-imputing the "
        f"touched rows by hand (bar: x{QUERY_ONDEMAND_TOLERANCE})"
    )
    assert query["full_vs_ondemand_speedup"] > QUERY_FULL_SPEEDUP_FLOOR, (
        f"on a selective query the on-demand path must beat full-table "
        f"materialization; got only "
        f"x{query['full_vs_ondemand_speedup']:.3f}"
    )
