"""Benchmark regenerating Figure 7: RMS and time vs. number of complete tuples (CA)."""

import numpy as np

from repro.experiments import figure7


def test_figure7_tuple_sweep_ca(benchmark, profile, record_result):
    result = benchmark.pedantic(lambda: figure7(profile=profile), rounds=1, iterations=1)
    record_result("figure7", result.render())

    assert result.x_values == profile.tuple_counts_ca
    # The sparse CA data keeps favouring regression over value sharing at
    # every size (the roughly flat curves of the paper's Figure 7a).
    assert result.rms_series("GLR")[-1] <= result.rms_series("kNN")[-1]
    for method in ("IIM", "kNN", "GLR"):
        assert np.isfinite(result.rms_series(method)).all()
    # Imputation time grows with the number of complete tuples for the
    # neighbour-based methods (Figure 7b).
    knn_times = result.time_series("kNN")
    assert knn_times[-1] >= knn_times[0]
