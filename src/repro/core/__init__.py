"""Core IIM: individual-model learning, adaptive selection and imputation."""

from .adaptive import AdaptiveLearningResult, adaptive_learning
from .combine import (
    BATCH_COMBINERS,
    COMBINERS,
    candidate_vote_weights,
    candidate_vote_weights_batch,
    combine_distance,
    combine_distance_batch,
    combine_uniform,
    combine_uniform_batch,
    combine_voting,
    combine_voting_batch,
    get_batch_combiner,
    get_combiner,
)
from .iim import IIMImputer
from .imputation import ImputationTrace, impute_one, impute_with_individual_models
from .learning import (
    IndividualModels,
    candidate_ell_values,
    learn_candidate_models_for_rows,
    learn_individual_models,
    learn_models_for_candidates,
)

__all__ = [
    "IIMImputer",
    "IndividualModels",
    "learn_individual_models",
    "learn_models_for_candidates",
    "learn_candidate_models_for_rows",
    "candidate_ell_values",
    "adaptive_learning",
    "AdaptiveLearningResult",
    "impute_one",
    "impute_with_individual_models",
    "ImputationTrace",
    "candidate_vote_weights",
    "candidate_vote_weights_batch",
    "combine_voting",
    "combine_uniform",
    "combine_distance",
    "combine_voting_batch",
    "combine_uniform_batch",
    "combine_distance_batch",
    "get_combiner",
    "get_batch_combiner",
    "COMBINERS",
    "BATCH_COMBINERS",
]
