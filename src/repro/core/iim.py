"""IIM — Imputation via Individual Models (the paper's proposed method).

:class:`IIMImputer` packages the learning phase (Algorithm 1, or the
adaptive Algorithm 3) and the imputation phase (Algorithm 2) behind the same
``fit`` / ``impute`` interface as every baseline in
:mod:`repro.baselines`, so the experiment harness can treat all methods
uniformly.

Highlights
----------
* ``learning="fixed"`` uses one ``ℓ`` for every tuple (Algorithm 1);
  ``learning="adaptive"`` selects a per-tuple ``ℓ`` by validation
  (Algorithm 3) with optional stepping ``h`` and incremental U/V updates
  (Proposition 3).
* ``combination`` selects how the k candidates are aggregated: the paper's
  inverse-candidate-distance voting (default), uniform weights, or
  inverse-neighbour-distance weights.
* With ``learning="fixed", learning_neighbors=1, combination="uniform"`` the
  imputer reproduces kNN exactly (Proposition 1); with
  ``learning_neighbors=n`` it reproduces GLR (Proposition 2).  Both
  equalities are asserted in the test suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .._validation import (
    check_in_choices,
    check_positive_float,
    check_positive_int,
)
from ..baselines.base import BaseImputer
from ..config import resolve_backend
from ..exceptions import ConfigurationError
from ..neighbors import BruteForceNeighbors
from ..regression import DEFAULT_ALPHA
from .adaptive import AdaptiveLearningResult, adaptive_learning
from .combine import COMBINERS
from .imputation import impute_with_individual_models
from .learning import IndividualModels, learn_individual_models

__all__ = ["IIMImputer"]


class IIMImputer(BaseImputer):
    """Imputation via Individual Models.

    Parameters
    ----------
    k:
        Number of imputation neighbours (Algorithm 2).
    learning:
        ``"adaptive"`` (Algorithm 3, default) or ``"fixed"`` (Algorithm 1).
    learning_neighbors:
        The fixed ``ℓ`` when ``learning="fixed"``; ignored otherwise.
        Values larger than the number of complete tuples are clamped.
    stepping:
        The stepping ``h`` of the adaptive candidate schedule.
    max_learning_neighbors:
        Optional cap on the largest candidate ``ℓ`` evaluated by adaptive
        learning (defaults to the number of complete tuples).
    validation_neighbors:
        The ``k`` used in the validation step of Algorithm 3; defaults to
        the imputation ``k``.
    incremental:
        Use the incremental U/V computation of Proposition 3 during adaptive
        learning (True, default) or learn each candidate from scratch (False).
    alpha:
        Ridge regularization strength of every individual model.
    include_global:
        During adaptive learning, always evaluate the ``ℓ = n`` candidate
        (the global model of Proposition 2) in addition to the stepped
        candidates, so the per-tuple selection can fall back to GLR-like
        behaviour on homogeneous data.
    combination:
        Candidate combination scheme: ``"voting"`` (paper default),
        ``"uniform"`` or ``"distance"``.
    metric:
        Distance metric for all neighbour searches.
    backend:
        Kernel backend for learning and imputation: ``"vectorized"``,
        ``"loop"``, or ``None`` (default) to follow the global knob of
        :mod:`repro.config`.
    """

    name = "IIM"

    def __init__(
        self,
        k: int = 10,
        learning: str = "adaptive",
        learning_neighbors: Optional[int] = None,
        stepping: int = 1,
        max_learning_neighbors: Optional[int] = None,
        validation_neighbors: Optional[int] = None,
        incremental: bool = True,
        include_global: bool = True,
        alpha: float = DEFAULT_ALPHA,
        combination: str = "voting",
        metric: str = "paper_euclidean",
        backend: Optional[str] = None,
    ):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.learning = check_in_choices(learning, "learning", ("fixed", "adaptive"))
        if self.learning == "fixed":
            if learning_neighbors is None:
                raise ConfigurationError(
                    "learning='fixed' requires learning_neighbors (the fixed ℓ)"
                )
            learning_neighbors = check_positive_int(learning_neighbors, "learning_neighbors")
        self.learning_neighbors = learning_neighbors
        self.stepping = check_positive_int(stepping, "stepping")
        if max_learning_neighbors is not None:
            max_learning_neighbors = check_positive_int(
                max_learning_neighbors, "max_learning_neighbors"
            )
        self.max_learning_neighbors = max_learning_neighbors
        if validation_neighbors is not None:
            validation_neighbors = check_positive_int(validation_neighbors, "validation_neighbors")
        self.validation_neighbors = validation_neighbors
        self.incremental = bool(incremental)
        self.include_global = bool(include_global)
        self.alpha = check_positive_float(alpha, "alpha", allow_zero=True)
        self.combination = check_in_choices(combination, "combination", tuple(COMBINERS))
        self.metric = metric
        self.backend = None if backend is None else resolve_backend(backend)
        # Per-incomplete-attribute learned models, keyed by the target column.
        self._models: Dict[int, IndividualModels] = {}
        self._adaptive_results: Dict[int, AdaptiveLearningResult] = {}

    # ------------------------------------------------------------------ #
    # Learning phase (lazy, per incomplete attribute)
    # ------------------------------------------------------------------ #
    def _fit(self, complete) -> None:
        # Learning depends on which attribute is incomplete, so the actual
        # model fitting is deferred to the first imputation request per
        # attribute; fit() only resets previously-learned models.
        self._models = {}
        self._adaptive_results = {}

    def _learn_for_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        target_index: int,
    ) -> IndividualModels:
        cached = self._models.get(target_index)
        if cached is not None:
            return cached

        n = features.shape[0]
        if self.learning == "fixed":
            ell = min(self.learning_neighbors, n)
            models = learn_individual_models(
                features, target, ell, alpha=self.alpha, metric=self.metric,
                backend=self.backend,
            )
        else:
            validation_k = self.validation_neighbors or self.k
            result = adaptive_learning(
                features,
                target,
                validation_neighbors=validation_k,
                stepping=self.stepping,
                max_ell=self.max_learning_neighbors,
                alpha=self.alpha,
                metric=self.metric,
                incremental=self.incremental,
                include_global=self.include_global,
                backend=self.backend,
            )
            self._adaptive_results[target_index] = result
            models = result.models
        self._models[target_index] = models
        return models

    def learned_models(self, target_index: int = -1) -> IndividualModels:
        """The individual models learned for one incomplete attribute.

        ``target_index=-1`` refers to the last attribute (the paper's default
        ``A_m``).  Raises if that attribute has not been imputed yet.
        """
        self._check_fitted()
        if target_index < 0:
            target_index += self._fitted_relation.n_attributes
        if target_index not in self._models:
            raise ConfigurationError(
                f"no models learned yet for attribute index {target_index}; "
                "call impute() first or use learn_attribute()"
            )
        return self._models[target_index]

    def adaptive_result(self, target_index: int = -1) -> AdaptiveLearningResult:
        """The full adaptive-learning diagnostics for one incomplete attribute."""
        self._check_fitted()
        if target_index < 0:
            target_index += self._fitted_relation.n_attributes
        if target_index not in self._adaptive_results:
            raise ConfigurationError(
                f"no adaptive-learning result for attribute index {target_index}; "
                "the imputer may be configured with learning='fixed'"
            )
        return self._adaptive_results[target_index]

    def learn_attribute(self, target_index: int = -1) -> IndividualModels:
        """Run the (offline) learning phase for one attribute explicitly."""
        self._check_fitted()
        if target_index < 0:
            target_index += self._fitted_relation.n_attributes
        width = self._fitted_relation.n_attributes
        if not 0 <= target_index < width:
            raise ConfigurationError(f"target_index {target_index} out of range")
        feature_indices = [i for i in range(width) if i != target_index]
        complete = self._complete_values
        return self._learn_for_attribute(
            complete[:, feature_indices], complete[:, target_index], target_index
        )

    # ------------------------------------------------------------------ #
    # Artifact persistence
    # ------------------------------------------------------------------ #
    def _artifact_payload(self):
        # Persist the lazily-learned per-attribute models so a restored
        # imputer serves imputations without relearning.  The adaptive
        # diagnostics (costs, counts) are derivable and not persisted.
        metadata = {"model_attributes": sorted(self._models)}
        arrays = {}
        for target_index, models in self._models.items():
            arrays[f"models_{target_index}_parameters"] = models.parameters
            arrays[f"models_{target_index}_ell"] = models.learning_neighbors
        return metadata, arrays

    def _restore_payload(self, metadata, arrays):
        self._models = {}
        self._adaptive_results = {}
        for target_index in metadata.get("model_attributes", []):
            target_index = int(target_index)
            self._models[target_index] = IndividualModels(
                arrays[f"models_{target_index}_parameters"],
                arrays[f"models_{target_index}_ell"],
            )

    # ------------------------------------------------------------------ #
    # Imputation phase
    # ------------------------------------------------------------------ #
    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        models = self._learn_for_attribute(features, target, target_index)
        k = min(self.k, features.shape[0])
        searcher = BruteForceNeighbors(metric=self.metric, backend=self.backend).fit(features)
        return impute_with_individual_models(
            queries,
            models,
            features,
            target,
            k,
            combination=self.combination,
            searcher=searcher,
            backend=self.backend,
        )
