"""Combination of imputation candidates (Section III-B3 of the paper).

The imputation phase produces one candidate value per imputation neighbour.
The paper combines them with a *voting* scheme: each candidate is weighted
by the inverse of its total distance to the other candidates (Formulas 11
and 12), so mutually-agreeing candidates dominate and outliers are largely
ignored.  Two ablation schemes are provided:

* ``uniform`` — the plain average (this is the weighting under which IIM
  degenerates to kNN when ``ℓ = 1``, Proposition 1);
* ``distance`` — weights from the inverse neighbour distance on ``F``
  (closer neighbours trusted more, regardless of candidate agreement).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .._validation import as_float_vector
from ..exceptions import ConfigurationError, DataError

__all__ = [
    "candidate_vote_weights",
    "combine_voting",
    "combine_uniform",
    "combine_distance",
    "get_combiner",
    "COMBINERS",
]


def candidate_vote_weights(candidates: np.ndarray) -> np.ndarray:
    """Weights of Formula 12: inverse total distance to the other candidates.

    ``c_xi = Σ_j |t^i_x - t^j_x|`` and ``w_xi = c_xi^{-1} / Σ_j c_xj^{-1}``.
    Candidates at zero total distance (all candidates identical, or a single
    candidate) receive uniform weight among themselves.
    """
    candidates = as_float_vector(candidates, name="candidates")
    k = candidates.shape[0]
    if k == 1:
        return np.ones(1)
    total_distance = np.abs(candidates[:, None] - candidates[None, :]).sum(axis=1)
    scale = total_distance.max()
    if scale <= 0.0:
        # All candidates identical: share the weight equally.
        return np.full(k, 1.0 / k)
    # Work with distances relative to the largest one so the inversion below
    # cannot overflow for very small (or subnormal) absolute distances.
    relative = total_distance / scale
    zero = relative <= 1e-12
    if zero.any():
        # (Near-)perfect agreement: candidates at zero total distance share
        # the weight equally and outliers are ignored.
        weights = np.zeros(k)
        weights[zero] = 1.0 / zero.sum()
        return weights
    inverse = 1.0 / relative
    return inverse / inverse.sum()


def combine_voting(candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None) -> float:
    """Formula 10 with the voting weights of Formula 12 (the paper's default)."""
    candidates = as_float_vector(candidates, name="candidates")
    weights = candidate_vote_weights(candidates)
    return float(np.dot(candidates, weights))


def combine_uniform(candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None) -> float:
    """Plain average of the candidates (uniform weights ``1/|T_x|``)."""
    candidates = as_float_vector(candidates, name="candidates")
    return float(candidates.mean())


def combine_distance(candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None) -> float:
    """Inverse-neighbour-distance weighting of the candidates.

    Requires the distances of the imputation neighbours to the incomplete
    tuple on ``F``; a neighbour at distance zero takes all the weight.
    """
    candidates = as_float_vector(candidates, name="candidates")
    if neighbor_distances is None:
        raise DataError("combine_distance requires the neighbour distances")
    distances = as_float_vector(neighbor_distances, name="neighbor_distances")
    if distances.shape[0] != candidates.shape[0]:
        raise DataError("neighbor_distances must align with the candidates")
    zero = distances <= 0.0
    if zero.any():
        weights = np.zeros(candidates.shape[0])
        weights[zero] = 1.0 / zero.sum()
    else:
        inverse = 1.0 / distances
        weights = inverse / inverse.sum()
    return float(np.dot(candidates, weights))


#: Registry of candidate-combination schemes.
COMBINERS: Dict[str, Callable[[np.ndarray, Optional[np.ndarray]], float]] = {
    "voting": combine_voting,
    "uniform": combine_uniform,
    "distance": combine_distance,
}


def get_combiner(name: str) -> Callable[[np.ndarray, Optional[np.ndarray]], float]:
    """Look up a combination scheme by name."""
    key = str(name).lower()
    if key not in COMBINERS:
        raise ConfigurationError(
            f"unknown combination scheme {name!r}; available: {sorted(COMBINERS)}"
        )
    return COMBINERS[key]
