"""Combination of imputation candidates (Section III-B3 of the paper).

The imputation phase produces one candidate value per imputation neighbour.
The paper combines them with a *voting* scheme: each candidate is weighted
by the inverse of its total distance to the other candidates (Formulas 11
and 12), so mutually-agreeing candidates dominate and outliers are largely
ignored.  Two ablation schemes are provided:

* ``uniform`` — the plain average (this is the weighting under which IIM
  degenerates to kNN when ``ℓ = 1``, Proposition 1);
* ``distance`` — weights from the inverse neighbour distance on ``F``
  (closer neighbours trusted more, regardless of candidate agreement).

Every combiner returns ``(value, weights)`` so callers (e.g. the
:class:`~repro.core.imputation.ImputationTrace`) can reuse the exact weights
that produced the value instead of re-deriving them.  Each scheme also has a
batch variant that combines a whole ``(q, k)`` block of candidate rows at
once — the kernel behind the vectorized imputation path; the scalar
functions are thin wrappers over it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .._validation import as_float_matrix, as_float_vector
from ..exceptions import ConfigurationError, DataError

__all__ = [
    "candidate_vote_weights",
    "candidate_vote_weights_batch",
    "combine_voting",
    "combine_uniform",
    "combine_distance",
    "combine_voting_batch",
    "combine_uniform_batch",
    "combine_distance_batch",
    "get_combiner",
    "get_batch_combiner",
    "COMBINERS",
    "BATCH_COMBINERS",
]


def candidate_vote_weights_batch(candidates: np.ndarray) -> np.ndarray:
    """Row-wise voting weights of Formula 12 for a ``(q, k)`` candidate block.

    ``c_xi = Σ_j |t^i_x - t^j_x|`` and ``w_xi = c_xi^{-1} / Σ_j c_xj^{-1}``
    per row.  Candidates at zero total distance (all candidates identical,
    or a single candidate) receive uniform weight among themselves.
    """
    candidates = as_float_matrix(candidates, name="candidates")
    q, k = candidates.shape
    if k == 1:
        return np.ones((q, 1))
    total_distance = np.abs(candidates[:, :, None] - candidates[:, None, :]).sum(axis=2)
    scale = total_distance.max(axis=1)
    degenerate = scale <= 0.0  # all candidates of the row identical
    # Work with distances relative to the largest one so the inversion below
    # cannot overflow for very small (or subnormal) absolute distances.
    relative = total_distance / np.where(degenerate, 1.0, scale)[:, None]
    zero = relative <= 1e-12
    has_zero = zero.any(axis=1)
    inverse = 1.0 / np.where(zero, 1.0, relative)
    weights = inverse / inverse.sum(axis=1, keepdims=True)
    # (Near-)perfect agreement: candidates at zero total distance share the
    # weight equally and outliers are ignored.
    agree = zero / np.maximum(zero.sum(axis=1, keepdims=True), 1)
    weights = np.where(has_zero[:, None], agree, weights)
    weights = np.where(degenerate[:, None], 1.0 / k, weights)
    return weights


def candidate_vote_weights(candidates: np.ndarray) -> np.ndarray:
    """Weights of Formula 12 for one candidate vector (see the batch variant)."""
    candidates = as_float_vector(candidates, name="candidates")
    return candidate_vote_weights_batch(candidates.reshape(1, -1))[0]


# --------------------------------------------------------------------------- #
# Batch combiners: (q, k) candidates -> ((q,) values, (q, k) weights)
# --------------------------------------------------------------------------- #
def combine_voting_batch(
    candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Formula 10 with the voting weights of Formula 12 (the paper's default)."""
    candidates = as_float_matrix(candidates, name="candidates")
    weights = candidate_vote_weights_batch(candidates)
    return np.einsum("qk,qk->q", candidates, weights), weights


def combine_uniform_batch(
    candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain average of the candidates (uniform weights ``1/|T_x|``)."""
    candidates = as_float_matrix(candidates, name="candidates")
    weights = np.full_like(candidates, 1.0 / candidates.shape[1])
    return candidates.mean(axis=1), weights


def combine_distance_batch(
    candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse-neighbour-distance weighting of the candidates.

    Requires the distances of the imputation neighbours to the incomplete
    tuple on ``F``; neighbours at distance zero take all the weight.
    """
    candidates = as_float_matrix(candidates, name="candidates")
    if neighbor_distances is None:
        raise DataError("combine_distance requires the neighbour distances")
    distances = as_float_matrix(neighbor_distances, name="neighbor_distances")
    if distances.shape != candidates.shape:
        raise DataError("neighbor_distances must align with the candidates")
    zero = distances <= 0.0
    has_zero = zero.any(axis=1)
    inverse = 1.0 / np.where(zero, 1.0, distances)
    weights = inverse / inverse.sum(axis=1, keepdims=True)
    exact = zero / np.maximum(zero.sum(axis=1, keepdims=True), 1)
    weights = np.where(has_zero[:, None], exact, weights)
    return np.einsum("qk,qk->q", candidates, weights), weights


# --------------------------------------------------------------------------- #
# Scalar combiners: (k,) candidates -> (value, (k,) weights)
# --------------------------------------------------------------------------- #
def _scalar(batch_fn, candidates, neighbor_distances):
    candidates = as_float_vector(candidates, name="candidates")
    if neighbor_distances is not None:
        neighbor_distances = as_float_vector(
            neighbor_distances, name="neighbor_distances"
        ).reshape(1, -1)
    values, weights = batch_fn(candidates.reshape(1, -1), neighbor_distances)
    return float(values[0]), weights[0]


def combine_voting(
    candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None
) -> Tuple[float, np.ndarray]:
    """Formula 10 with the voting weights of Formula 12 (the paper's default)."""
    return _scalar(combine_voting_batch, candidates, neighbor_distances)


def combine_uniform(
    candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None
) -> Tuple[float, np.ndarray]:
    """Plain average of the candidates (uniform weights ``1/|T_x|``)."""
    return _scalar(combine_uniform_batch, candidates, neighbor_distances)


def combine_distance(
    candidates: np.ndarray, neighbor_distances: Optional[np.ndarray] = None
) -> Tuple[float, np.ndarray]:
    """Inverse-neighbour-distance weighting of the candidates."""
    return _scalar(combine_distance_batch, candidates, neighbor_distances)


#: Registry of scalar candidate-combination schemes.
COMBINERS: Dict[str, Callable[[np.ndarray, Optional[np.ndarray]], Tuple[float, np.ndarray]]] = {
    "voting": combine_voting,
    "uniform": combine_uniform,
    "distance": combine_distance,
}

#: Registry of batch candidate-combination schemes.
BATCH_COMBINERS: Dict[
    str, Callable[[np.ndarray, Optional[np.ndarray]], Tuple[np.ndarray, np.ndarray]]
] = {
    "voting": combine_voting_batch,
    "uniform": combine_uniform_batch,
    "distance": combine_distance_batch,
}


def get_combiner(name: str):
    """Look up a scalar combination scheme by name."""
    key = str(name).lower()
    if key not in COMBINERS:
        raise ConfigurationError(
            f"unknown combination scheme {name!r}; available: {sorted(COMBINERS)}"
        )
    return COMBINERS[key]


def get_batch_combiner(name: str):
    """Look up a batch combination scheme by name."""
    key = str(name).lower()
    if key not in BATCH_COMBINERS:
        raise ConfigurationError(
            f"unknown combination scheme {name!r}; available: {sorted(BATCH_COMBINERS)}"
        )
    return BATCH_COMBINERS[key]
