"""The learning phase of IIM (Algorithm 1 of the paper).

For every complete tuple ``t_i`` the phase finds its ``ℓ`` nearest
neighbours on the complete attributes ``F`` (the tuple itself included, as
in the paper's Example 2) and fits a ridge regression ``F → A_m`` over those
neighbours (Formula 5).  With ``ℓ = 1`` the single-neighbour constant model
of Section III-A2 is used.

The module also exposes :func:`learn_models_for_candidates`, which learns
the models of *all* candidate ``ℓ`` values for every tuple in one pass —
either from scratch per candidate (the "straightforward" variant the paper
benchmarks against) or with the incremental U/V updates of Proposition 3.
The output feeds the adaptive selection of Algorithm 3.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import (
    as_float_matrix,
    as_float_vector,
    check_consistent_length,
    check_positive_float,
    check_positive_int,
)
from ..exceptions import ConfigurationError
from ..neighbors import NeighborOrderCache
from ..regression import DEFAULT_ALPHA, IncrementalRidge, RidgeRegression, constant_model

__all__ = [
    "IndividualModels",
    "learn_individual_models",
    "learn_models_for_candidates",
    "candidate_ell_values",
]


class IndividualModels:
    """The learned per-tuple regression parameters ``Φ = {φ_1, ..., φ_n}``.

    Attributes
    ----------
    parameters:
        Array of shape ``(n, m)`` where row ``i`` is ``φ_i`` (intercept
        first, then one weight per complete attribute).
    learning_neighbors:
        Array of shape ``(n,)`` holding the number of learning neighbours
        ``ℓ_i`` used for each tuple (all equal for fixed-ℓ learning).
    """

    def __init__(self, parameters: np.ndarray, learning_neighbors: np.ndarray):
        self.parameters = np.asarray(parameters, dtype=float)
        self.learning_neighbors = np.asarray(learning_neighbors, dtype=int)
        if self.parameters.ndim != 2:
            raise ConfigurationError("parameters must be a 2-D array (n, m)")
        if self.learning_neighbors.shape[0] != self.parameters.shape[0]:
            raise ConfigurationError("learning_neighbors must align with parameters")

    @property
    def n_models(self) -> int:
        """Number of per-tuple models."""
        return self.parameters.shape[0]

    def predict(self, model_indices, query_features: np.ndarray) -> np.ndarray:
        """Candidates ``(1, t_x[F]) φ_j`` for the given models and one query.

        Parameters
        ----------
        model_indices:
            Indices of the neighbour models to apply.
        query_features:
            The incomplete tuple's values on ``F`` (1-D of length ``m - 1``).
        """
        model_indices = np.asarray(model_indices, dtype=int)
        query_features = as_float_vector(query_features, name="query_features")
        design = np.concatenate([[1.0], query_features])
        return self.parameters[model_indices] @ design

    def __getitem__(self, index: int) -> np.ndarray:
        return self.parameters[index].copy()


def candidate_ell_values(n_tuples: int, stepping: int = 1, max_ell: Optional[int] = None) -> np.ndarray:
    """The candidate numbers of learning neighbours ``ℓ ∈ {1, 1+h, 1+2h, ...}``.

    Mirrors the stepping scheme of Section V-A2: starting from 1 and
    increasing by ``h`` up to ``min(n, max_ell)``.
    """
    n_tuples = check_positive_int(n_tuples, "n_tuples")
    stepping = check_positive_int(stepping, "stepping")
    upper = n_tuples if max_ell is None else min(check_positive_int(max_ell, "max_ell"), n_tuples)
    return np.arange(1, upper + 1, stepping, dtype=int)


def _validate_inputs(features, target):
    features = as_float_matrix(features, name="features")
    target = as_float_vector(target, name="target")
    check_consistent_length(features, target, names=("features", "target"))
    return features, target


def learn_individual_models(
    features,
    target,
    ell: int,
    alpha: float = DEFAULT_ALPHA,
    metric: str = "paper_euclidean",
    order_cache: Optional[NeighborOrderCache] = None,
) -> IndividualModels:
    """Algorithm 1: learn one ridge model per tuple over its ``ℓ`` nearest neighbours.

    Parameters
    ----------
    features:
        Complete tuples restricted to the complete attributes ``F``,
        shape ``(n, m-1)``.
    target:
        Complete tuples' values on the incomplete attribute, shape ``(n,)``.
    ell:
        Number of learning neighbours (``1 <= ℓ <= n``); the tuple itself is
        always its own first neighbour.
    alpha:
        Ridge regularization strength.
    metric:
        Distance metric used for the neighbour search.
    order_cache:
        Optional pre-built neighbour ordering (with ``include_self=True``);
        one is created on the fly when omitted.
    """
    features, target = _validate_inputs(features, target)
    n, d = features.shape
    ell = check_positive_int(ell, "ell")
    if ell > n:
        raise ConfigurationError(f"ell={ell} exceeds the number of complete tuples {n}")
    alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    if order_cache is None:
        order_cache = NeighborOrderCache(features, metric=metric, include_self=True, max_length=ell)

    parameters = np.empty((n, d + 1))
    for i in range(n):
        neighbors = order_cache.prefix(i, ell)
        if ell == 1:
            parameters[i] = constant_model(target[neighbors[0]], d)
        else:
            model = RidgeRegression(alpha=alpha).fit(features[neighbors], target[neighbors])
            parameters[i] = model.coefficients
    return IndividualModels(parameters, np.full(n, ell, dtype=int))


def learn_models_for_candidates(
    features,
    target,
    candidates: Sequence[int],
    alpha: float = DEFAULT_ALPHA,
    metric: str = "paper_euclidean",
    incremental: bool = True,
    order_cache: Optional[NeighborOrderCache] = None,
) -> np.ndarray:
    """Learn ``Φ(ℓ)`` for every candidate ``ℓ`` and every tuple.

    Returns an array of shape ``(len(candidates), n, m)`` where entry
    ``[c, i]`` is the parameter vector of tuple ``i`` learned over its
    ``candidates[c]`` nearest neighbours.

    Parameters
    ----------
    incremental:
        When True (default), the ridge sufficient statistics ``U`` and ``V``
        are grown incrementally across candidates (Proposition 3), so the
        cost per additional candidate is independent of ``ℓ``.  When False,
        each candidate is learned from scratch (the baseline the paper's
        Figure 12 compares against).  Both variants produce the same models
        up to floating-point rounding.
    """
    features, target = _validate_inputs(features, target)
    n, d = features.shape
    candidates = np.asarray(list(candidates), dtype=int)
    if candidates.size == 0:
        raise ConfigurationError("candidates must contain at least one ℓ value")
    if np.any(candidates < 1) or np.any(candidates > n):
        raise ConfigurationError(f"candidate ℓ values must lie in [1, {n}]")
    if np.any(np.diff(candidates) <= 0):
        raise ConfigurationError("candidate ℓ values must be strictly increasing")
    alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    max_ell = int(candidates.max())
    if order_cache is None:
        order_cache = NeighborOrderCache(
            features, metric=metric, include_self=True, max_length=max_ell
        )

    all_parameters = np.empty((candidates.shape[0], n, d + 1))

    if not incremental:
        for c, ell in enumerate(candidates):
            models = learn_individual_models(
                features, target, int(ell), alpha=alpha, metric=metric, order_cache=order_cache
            )
            all_parameters[c] = models.parameters
        return all_parameters

    for i in range(n):
        order = order_cache.prefix(i, max_ell)
        accumulator = IncrementalRidge(n_features=d, alpha=alpha)
        consumed = 0
        for c, ell in enumerate(candidates):
            ell = int(ell)
            delta = order[consumed:ell]
            if delta.size:
                accumulator.partial_fit(features[delta], target[delta])
                consumed = ell
            all_parameters[c, i] = accumulator.solve()
    return all_parameters
