"""The learning phase of IIM (Algorithm 1 of the paper).

For every complete tuple ``t_i`` the phase finds its ``ℓ`` nearest
neighbours on the complete attributes ``F`` (the tuple itself included, as
in the paper's Example 2) and fits a ridge regression ``F → A_m`` over those
neighbours (Formula 5).  With ``ℓ = 1`` the single-neighbour constant model
of Section III-A2 is used.

The module also exposes :func:`learn_models_for_candidates`, which learns
the models of *all* candidate ``ℓ`` values for every tuple in one pass —
either from scratch per candidate (the "straightforward" variant the paper
benchmarks against) or with the incremental U/V updates of Proposition 3.
The output feeds the adaptive selection of Algorithm 3.

Backends
--------
Each learning entry point exists in two implementations selected through
:mod:`repro.config` (or a per-call ``backend`` argument):

* ``"vectorized"`` (default) — gathers the neighbour-ordered design rows of
  a whole block of tuples at once, builds the incremental U/V statistics of
  Proposition 3 as *prefix sums* (per-Δh-segment batched GEMMs accumulated
  by ``cumsum`` along the candidate axis) and resolves every
  ``(candidate × tuple)`` ridge system with one batched
  :func:`~repro.regression.batched.batched_ridge_solve`.  Blocks are chunked
  over tuples so the scratch memory stays bounded.
* ``"loop"`` — the original per-tuple Python loop over
  :class:`~repro.regression.IncrementalRidge`, kept as the executable
  reference; the test suite asserts both backends agree to ``rtol = 1e-9``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import (
    as_float_matrix,
    as_float_vector,
    check_consistent_length,
    check_positive_float,
    check_positive_int,
)
from ..config import resolve_backend
from ..exceptions import ConfigurationError
from ..neighbors import NeighborOrderCache
from ..regression import (
    DEFAULT_ALPHA,
    IncrementalRidge,
    RidgeRegression,
    batched_ridge_solve,
    constant_model,
)

__all__ = [
    "IndividualModels",
    "learn_individual_models",
    "learn_models_for_candidates",
    "learn_candidate_models_for_rows",
    "candidate_ell_values",
]


class IndividualModels:
    """The learned per-tuple regression parameters ``Φ = {φ_1, ..., φ_n}``.

    Attributes
    ----------
    parameters:
        Array of shape ``(n, m)`` where row ``i`` is ``φ_i`` (intercept
        first, then one weight per complete attribute).
    learning_neighbors:
        Array of shape ``(n,)`` holding the number of learning neighbours
        ``ℓ_i`` used for each tuple (all equal for fixed-ℓ learning).
    """

    def __init__(self, parameters: np.ndarray, learning_neighbors: np.ndarray):
        self.parameters = np.asarray(parameters, dtype=float)
        self.learning_neighbors = np.asarray(learning_neighbors, dtype=int)
        if self.parameters.ndim != 2:
            raise ConfigurationError("parameters must be a 2-D array (n, m)")
        if self.learning_neighbors.shape[0] != self.parameters.shape[0]:
            raise ConfigurationError("learning_neighbors must align with parameters")

    @property
    def n_models(self) -> int:
        """Number of per-tuple models."""
        return self.parameters.shape[0]

    def predict(self, model_indices, query_features: np.ndarray) -> np.ndarray:
        """Candidates ``(1, t_x[F]) φ_j`` for the given models and one query.

        Parameters
        ----------
        model_indices:
            Indices of the neighbour models to apply.
        query_features:
            The incomplete tuple's values on ``F`` (1-D of length ``m - 1``).
        """
        model_indices = np.asarray(model_indices, dtype=int)
        query_features = as_float_vector(query_features, name="query_features")
        design = np.concatenate([[1.0], query_features])
        return self.parameters[model_indices] @ design

    def __getitem__(self, index: int) -> np.ndarray:
        return self.parameters[index].copy()


def candidate_ell_values(n_tuples: int, stepping: int = 1, max_ell: Optional[int] = None) -> np.ndarray:
    """The candidate numbers of learning neighbours ``ℓ ∈ {1, 1+h, 1+2h, ...}``.

    Mirrors the stepping scheme of Section V-A2: starting from 1 and
    increasing by ``h`` up to ``min(n, max_ell)``.
    """
    n_tuples = check_positive_int(n_tuples, "n_tuples")
    stepping = check_positive_int(stepping, "stepping")
    upper = n_tuples if max_ell is None else min(check_positive_int(max_ell, "max_ell"), n_tuples)
    return np.arange(1, upper + 1, stepping, dtype=int)


def _validate_inputs(features, target):
    features = as_float_matrix(features, name="features")
    target = as_float_vector(target, name="target")
    check_consistent_length(features, target, names=("features", "target"))
    return features, target


def learn_individual_models(
    features,
    target,
    ell: int,
    alpha: float = DEFAULT_ALPHA,
    metric: str = "paper_euclidean",
    order_cache: Optional[NeighborOrderCache] = None,
    backend: Optional[str] = None,
) -> IndividualModels:
    """Algorithm 1: learn one ridge model per tuple over its ``ℓ`` nearest neighbours.

    Parameters
    ----------
    features:
        Complete tuples restricted to the complete attributes ``F``,
        shape ``(n, m-1)``.
    target:
        Complete tuples' values on the incomplete attribute, shape ``(n,)``.
    ell:
        Number of learning neighbours (``1 <= ℓ <= n``); the tuple itself is
        always its own first neighbour.
    alpha:
        Ridge regularization strength.
    metric:
        Distance metric used for the neighbour search.
    order_cache:
        Optional pre-built neighbour ordering (with ``include_self=True``);
        one is created on the fly when omitted.
    backend:
        ``"vectorized"``, ``"loop"``, or ``None`` to follow the global knob.
    """
    features, target = _validate_inputs(features, target)
    n, d = features.shape
    ell = check_positive_int(ell, "ell")
    if ell > n:
        raise ConfigurationError(f"ell={ell} exceeds the number of complete tuples {n}")
    alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    if order_cache is None:
        order_cache = NeighborOrderCache(features, metric=metric, include_self=True, max_length=ell)

    if resolve_backend(backend) == "vectorized":
        parameters = _candidate_models_vectorized(
            features, target, np.array([ell]), alpha, order_cache, incremental=True
        )[0]
        return IndividualModels(parameters, np.full(n, ell, dtype=int))

    parameters = np.empty((n, d + 1))
    for i in range(n):
        neighbors = order_cache.prefix(i, ell)
        if ell == 1:
            parameters[i] = constant_model(target[neighbors[0]], d)
        else:
            model = RidgeRegression(alpha=alpha).fit(features[neighbors], target[neighbors])
            parameters[i] = model.coefficients
    return IndividualModels(parameters, np.full(n, ell, dtype=int))


def learn_models_for_candidates(
    features,
    target,
    candidates: Sequence[int],
    alpha: float = DEFAULT_ALPHA,
    metric: str = "paper_euclidean",
    incremental: bool = True,
    order_cache: Optional[NeighborOrderCache] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Learn ``Φ(ℓ)`` for every candidate ``ℓ`` and every tuple.

    Returns an array of shape ``(len(candidates), n, m)`` where entry
    ``[c, i]`` is the parameter vector of tuple ``i`` learned over its
    ``candidates[c]`` nearest neighbours.

    Parameters
    ----------
    incremental:
        When True (default), the ridge sufficient statistics ``U`` and ``V``
        are grown incrementally across candidates (Proposition 3), so the
        cost per additional candidate is independent of ``ℓ``.  When False,
        each candidate is learned from scratch (the baseline the paper's
        Figure 12 compares against).  Both variants produce the same models
        up to floating-point rounding.
    backend:
        ``"vectorized"``, ``"loop"``, or ``None`` to follow the global knob.
        The vectorized backend preserves the incremental/straightforward
        distinction: incremental statistics are prefix sums shared across
        candidates, straightforward ones are rebuilt per candidate.
    """
    features, target = _validate_inputs(features, target)
    n, d = features.shape
    candidates = np.asarray(list(candidates), dtype=int)
    if candidates.size == 0:
        raise ConfigurationError("candidates must contain at least one ℓ value")
    if np.any(candidates < 1) or np.any(candidates > n):
        raise ConfigurationError(f"candidate ℓ values must lie in [1, {n}]")
    if np.any(np.diff(candidates) <= 0):
        raise ConfigurationError("candidate ℓ values must be strictly increasing")
    alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    max_ell = int(candidates.max())
    if order_cache is None:
        order_cache = NeighborOrderCache(
            features, metric=metric, include_self=True, max_length=max_ell
        )

    if resolve_backend(backend) == "vectorized":
        return _candidate_models_vectorized(
            features, target, candidates, alpha, order_cache, incremental=incremental
        )

    all_parameters = np.empty((candidates.shape[0], n, d + 1))

    if not incremental:
        for c, ell in enumerate(candidates):
            models = learn_individual_models(
                features,
                target,
                int(ell),
                alpha=alpha,
                metric=metric,
                order_cache=order_cache,
                backend="loop",
            )
            all_parameters[c] = models.parameters
        return all_parameters

    for i in range(n):
        order = order_cache.prefix(i, max_ell)
        accumulator = IncrementalRidge(n_features=d, alpha=alpha)
        consumed = 0
        for c, ell in enumerate(candidates):
            ell = int(ell)
            delta = order[consumed:ell]
            if delta.size:
                accumulator.partial_fit(features[delta], target[delta])
                consumed = ell
            all_parameters[c, i] = accumulator.solve()
    return all_parameters


def learn_candidate_models_for_rows(
    features,
    target,
    candidates: Sequence[int],
    orders,
    alpha: float = DEFAULT_ALPHA,
    incremental: bool = True,
) -> np.ndarray:
    """Learn ``Φ(ℓ)`` for an explicit subset of tuples given their orderings.

    This is the *incremental refresh* entry point of Proposition 3: a caller
    that maintains per-tuple neighbour orderings (e.g. the online engine's
    :meth:`~repro.neighbors.NeighborOrderCache.append`) can re-learn the
    candidate models of just the affected tuples — the same batched
    prefix-sum kernel that :func:`learn_models_for_candidates` runs over the
    whole relation, at a cost proportional to the refreshed subset.

    Parameters
    ----------
    features, target:
        The *full* complete data (all ``n`` tuples), as in
        :func:`learn_models_for_candidates`; ``orders`` indexes into it.
    candidates:
        Strictly increasing candidate ``ℓ`` values.
    orders:
        Array of shape ``(r, >= max(candidates))``: the neighbour ordering
        (self included, as in the learning phase) of each tuple to refresh.
    alpha:
        Ridge regularization strength.
    incremental:
        Grow the U/V statistics across candidates (Proposition 3) or rebuild
        them per candidate.

    Returns
    -------
    numpy.ndarray
        Parameters of shape ``(len(candidates), r, m)``, aligned with the
        rows of ``orders``.
    """
    features, target = _validate_inputs(features, target)
    n = features.shape[0]
    candidates = np.asarray(list(candidates), dtype=int)
    if candidates.size == 0:
        raise ConfigurationError("candidates must contain at least one ℓ value")
    if np.any(candidates < 1) or np.any(candidates > n):
        raise ConfigurationError(f"candidate ℓ values must lie in [1, {n}]")
    if np.any(np.diff(candidates) <= 0):
        raise ConfigurationError("candidate ℓ values must be strictly increasing")
    alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    orders = np.asarray(orders, dtype=int)
    if orders.ndim != 2:
        raise ConfigurationError("orders must be a 2-D (rows, neighbours) array")
    max_ell = int(candidates.max())
    if orders.shape[1] < max_ell:
        raise ConfigurationError(
            f"requested {max_ell} neighbours but only {orders.shape[1]} are available"
        )
    return _candidate_models_from_orders(
        features, target, candidates, alpha, orders[:, :max_ell], incremental
    )


def _chunk_rows(
    n: int, max_ell: int, n_candidates: int, width: int, budget_floats: int = 4_000_000
) -> int:
    """Tuples per block so the design/statistics scratch stays near ``budget``."""
    per_row = max(1, max_ell * width + n_candidates * width * width)
    return max(1, min(n, budget_floats // per_row))


def _candidate_models_vectorized(
    features: np.ndarray,
    target: np.ndarray,
    candidates: np.ndarray,
    alpha: float,
    order_cache: NeighborOrderCache,
    incremental: bool,
) -> np.ndarray:
    """Batch kernel behind :func:`learn_models_for_candidates`."""
    max_ell = int(candidates.max())
    orders = order_cache.order_matrix()
    if orders.shape[1] < max_ell:
        raise ConfigurationError(
            f"requested {max_ell} neighbours but only {orders.shape[1]} are available"
        )
    return _candidate_models_from_orders(
        features, target, candidates, alpha, orders[:, :max_ell], incremental
    )


def _candidate_models_from_orders(
    features: np.ndarray,
    target: np.ndarray,
    candidates: np.ndarray,
    alpha: float,
    orders: np.ndarray,
    incremental: bool,
) -> np.ndarray:
    """Candidate learning over explicit ``(rows, max_ell)`` orderings.

    For each block of tuples the candidate Gram/moment statistics are built
    from the neighbour-ordered design rows — per-segment batched GEMMs
    turned into prefix sums by a ``cumsum`` over the candidate axis
    (Proposition 3) when ``incremental``, or from scratch per candidate when
    not — and solved as one stacked ridge system.
    """
    d = features.shape[1]
    p = d + 1
    n = orders.shape[0]
    max_ell = orders.shape[1]
    n_candidates = candidates.shape[0]

    all_parameters = np.empty((n_candidates, n, p))

    chunk = _chunk_rows(n, max_ell, n_candidates, p)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block_orders = orders[start:stop]  # (c, max_ell)
        design = np.empty((stop - start, max_ell, p))
        design[:, :, 0] = 1.0
        design[:, :, 1:] = features[block_orders]
        y = target[block_orders]  # (c, max_ell)

        c = stop - start
        U = np.empty((c, n_candidates, p, p))
        V = np.empty((c, n_candidates, p))
        if incremental:
            # Proposition 3 as segment sums: each candidate adds only the
            # Δh design rows between it and its predecessor (one batched
            # GEMM per segment), then a cumsum over the L segments turns
            # them into the per-candidate prefix statistics.
            widths = np.diff(candidates, prepend=0)
            if n_candidates > 1 and np.all(widths[1:] == widths[1]):
                # Uniform stepping (the common schedule): fold all Δh
                # segments into one batched GEMM via a reshape.
                head = int(widths[0])
                step = int(widths[1])
                first = design[:, :head]
                U[:, 0] = first.transpose(0, 2, 1) @ first
                V[:, 0] = np.einsum("chp,ch->cp", first, y[:, :head])
                rest = design[:, head:max_ell].reshape(c, n_candidates - 1, step, p)
                rest_y = y[:, head:max_ell].reshape(c, n_candidates - 1, step)
                U[:, 1:] = rest.transpose(0, 1, 3, 2) @ rest
                V[:, 1:] = np.einsum("cshp,csh->csp", rest, rest_y)
            else:
                consumed = 0
                for index, ell in enumerate(candidates):
                    segment = design[:, consumed:ell]  # (c, Δh, p)
                    U[:, index] = segment.transpose(0, 2, 1) @ segment
                    V[:, index] = np.einsum("chp,ch->cp", segment, y[:, consumed:ell])
                    consumed = int(ell)
            # Running prefix over the candidate axis (sequential in-place
            # adds beat np.cumsum's strided inner loop for small L).
            for index in range(1, n_candidates):
                U[:, index] += U[:, index - 1]
                V[:, index] += V[:, index - 1]
        else:
            # Straightforward variant: rebuild each candidate's statistics
            # from its full prefix (cost linear in ℓ per candidate, as in
            # the paper's Figure 12 baseline) — still batched over tuples.
            for index, ell in enumerate(candidates):
                prefix = design[:, :ell]
                U[:, index] = prefix.transpose(0, 2, 1) @ prefix
                V[:, index] = np.einsum("chp,ch->cp", prefix, y[:, :ell])

        solved = batched_ridge_solve(
            U,
            V,
            alpha=alpha,
            counts=candidates[None, :],
            first_targets=y[:, :1],
            overwrite_u=True,
        )  # (c, L, p)
        all_parameters[:, start:stop] = solved.transpose(1, 0, 2)
    return all_parameters
