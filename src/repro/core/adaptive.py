"""Adaptive learning of the individual models (Algorithm 3 of the paper).

Instead of using one fixed number ``ℓ`` of learning neighbours for every
tuple, adaptive learning considers a set of candidate ``ℓ`` values (``1`` to
``n`` with an optional stepping ``h``, Section V-A2) and selects, *per
tuple*, the candidate whose model best imputes the other complete tuples:

1. learn ``Φ(ℓ)`` for every candidate ``ℓ`` (incrementally, Proposition 3);
2. treat every complete tuple ``t_j`` as a validation tuple: for each of its
   ``k`` nearest neighbours ``t_i``, add the squared error of imputing
   ``t_j[A_m]`` with ``φ^{(ℓ)}_i`` to ``cost[i][ℓ]``;
3. pick ``ℓ*_i = argmin_ℓ cost[i][ℓ]`` and return ``φ_i = φ^{(ℓ*_i)}_i``.

Tuples that never appear among any validation tuple's neighbours have an
empty cost row; they fall back to the candidate that is best summed over all
tuples (a documented deviation — the paper leaves this case unspecified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..config import resolve_backend
from ..exceptions import ConfigurationError
from ..neighbors import NeighborOrderCache
from ..neighbors.brute import drop_self_rows
from ..regression import DEFAULT_ALPHA, RidgeRegression, batched_design
from .learning import IndividualModels, candidate_ell_values, learn_models_for_candidates

__all__ = [
    "AdaptiveLearningResult",
    "adaptive_learning",
    "scatter_validation_costs",
    "VALIDATION_PAIR_CHUNK",
]

#: Flattened (validation tuple, model owner) pairs processed per block of
#: the vectorized validation kernel.  The online engine's partial cost
#: rebuilds share this kernel, so stale and fresh rows accumulate their
#: sums in the same order.
VALIDATION_PAIR_CHUNK = 65536


def scatter_validation_costs(
    costs: np.ndarray,
    j_idx: np.ndarray,
    i_idx: np.ndarray,
    designs: np.ndarray,
    target: np.ndarray,
    all_parameters: np.ndarray,
    pair_chunk: int = VALIDATION_PAIR_CHUNK,
) -> None:
    """Accumulate squared validation errors onto ``costs`` (in place).

    For every flattened pair ``(j_idx[p], i_idx[p])`` — validation tuple
    ``j`` charging model owner ``i`` — the squared error of imputing
    ``target[j]`` with each of owner ``i``'s candidate models is added to
    ``costs[i]``: one ``einsum`` per pair block, one ``bincount`` per
    candidate column.
    """
    n, n_candidates = costs.shape
    for start in range(0, j_idx.shape[0], pair_chunk):
        stop = min(start + pair_chunk, j_idx.shape[0])
        j_block = j_idx[start:stop]
        i_block = i_idx[start:stop]
        # (pairs, L): prediction of owner i's candidate models on tuple j.
        predictions = np.einsum(
            "pc,lpc->pl", designs[j_block], all_parameters[:, i_block, :]
        )
        errors = (target[j_block, None] - predictions) ** 2
        # Scatter-add per candidate column (bincount beats np.add.at here).
        for position in range(n_candidates):
            costs[:, position] += np.bincount(
                i_block, weights=errors[:, position], minlength=n
            )


@dataclass
class AdaptiveLearningResult:
    """Outcome of Algorithm 3.

    Attributes
    ----------
    models:
        The selected per-tuple models (one ``φ_i`` per tuple).
    candidates:
        The candidate ``ℓ`` values that were evaluated.
    chosen_ell:
        The ``ℓ*_i`` selected for every tuple.
    costs:
        Validation cost matrix of shape ``(n, len(candidates))``; entry
        ``[i, c]`` is ``cost[i][candidates[c]]`` from the paper.
    validation_counts:
        How many validation tuples contributed to each tuple's cost row.
    """

    models: IndividualModels
    candidates: np.ndarray
    chosen_ell: np.ndarray
    costs: np.ndarray
    validation_counts: np.ndarray
    #: Per-candidate parameters ``(len(candidates), n, m)``; only populated
    #: when ``keep_candidate_models=True`` (the online engine keeps them so
    #: appends can refresh a subset of tuples without relearning the rest).
    all_parameters: Optional[np.ndarray] = None


def adaptive_learning(
    features,
    target,
    validation_neighbors: int = 10,
    stepping: int = 1,
    max_ell: Optional[int] = None,
    candidates: Optional[Sequence[int]] = None,
    alpha: float = DEFAULT_ALPHA,
    metric: str = "paper_euclidean",
    incremental: bool = True,
    include_global: bool = True,
    backend: Optional[str] = None,
    order_cache: Optional[NeighborOrderCache] = None,
    keep_candidate_models: bool = False,
) -> AdaptiveLearningResult:
    """Algorithm 3: select a per-tuple ``ℓ`` by validating against complete tuples.

    Parameters
    ----------
    features:
        Complete tuples restricted to ``F``, shape ``(n, m-1)``.
    target:
        Complete tuples' values on the incomplete attribute, shape ``(n,)``.
    validation_neighbors:
        The ``k`` used when collecting each validation tuple's neighbours
        (Line 4 of Algorithm 3); the paper reuses the imputation ``k``.
    stepping:
        The stepping ``h`` of Section V-A2 (1 = evaluate every ``ℓ``).
    max_ell:
        Optional cap on the largest candidate ``ℓ`` (defaults to ``n``).
    candidates:
        Explicit candidate list overriding ``stepping``/``max_ell``.
    alpha:
        Ridge regularization strength.
    metric:
        Distance metric for all neighbour searches.
    incremental:
        Learn the per-candidate models with the incremental U/V updates of
        Proposition 3 (True) or from scratch per candidate (False).
    include_global:
        Always add ``ℓ = n`` (the global-regression model of Proposition 2)
        to the candidate set, even when ``max_ell``/``stepping`` would skip
        it.  Because the ``ℓ = n`` model is the same for every tuple it is
        learned once, so this costs one extra ridge fit regardless of ``n``.
    backend:
        ``"vectorized"``, ``"loop"``, or ``None`` to follow the global knob
        of :mod:`repro.config`.  The vectorized backend batches the
        per-candidate learning (see :func:`learn_models_for_candidates`) and
        replaces the validator double loop of step 2 with one scatter-add
        over the flattened (validation tuple, model owner) pairs.  Both
        backends agree to ``rtol = 1e-9``.
    order_cache:
        Optional pre-built neighbour ordering over ``features`` (with
        ``include_self=True`` and an effective length of at least
        ``max(max(candidates), min(n, validation_neighbors + 1))``); one is
        created on the fly when omitted.  The online engine passes its
        incrementally-maintained cache here so a full relearn reuses it.
    keep_candidate_models:
        Retain the full per-candidate parameter stack on the result's
        ``all_parameters`` (costs one ``(L, n, m)`` array; needed by callers
        that later refresh a subset of tuples incrementally).
    """
    features = np.asarray(features, dtype=float)
    target = np.asarray(target, dtype=float).ravel()
    n = features.shape[0]
    validation_neighbors = check_positive_int(validation_neighbors, "validation_neighbors")
    alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    if candidates is None:
        candidate_array = candidate_ell_values(n, stepping=stepping, max_ell=max_ell)
    else:
        candidate_array = np.asarray(list(candidates), dtype=int)
        if candidate_array.size == 0:
            raise ConfigurationError("candidates must contain at least one ℓ value")

    # The ℓ = n candidate (the global model of Proposition 2) is handled
    # specially: its model does not depend on the tuple, so it is learned
    # once instead of per tuple through the neighbour ordering.
    global_candidate = bool(include_global) and n > 1 and int(candidate_array.max()) < n

    # Shared neighbour ordering (self included) reused for both the learning
    # of Φ(ℓ) and, with the self removed, the validation neighbour lookups.
    max_candidate = int(candidate_array.max())
    needed_length = max(max_candidate, min(n, validation_neighbors + 1))
    if order_cache is None:
        learn_cache = NeighborOrderCache(
            features, metric=metric, include_self=True, max_length=needed_length
        )
    else:
        if not order_cache.include_self:
            raise ConfigurationError(
                "adaptive_learning requires an order_cache with include_self=True"
            )
        if order_cache.effective_length() < needed_length:
            raise ConfigurationError(
                f"order_cache keeps {order_cache.effective_length()} neighbours "
                f"but adaptive learning needs {needed_length}"
            )
        learn_cache = order_cache

    backend = resolve_backend(backend)
    all_parameters = learn_models_for_candidates(
        features,
        target,
        candidate_array,
        alpha=alpha,
        metric=metric,
        incremental=incremental,
        order_cache=learn_cache,
        backend=backend,
    )  # shape (L, n, d + 1)

    if global_candidate:
        global_model = RidgeRegression(alpha=alpha).fit(features, target)
        global_parameters = np.tile(global_model.coefficients, (n, 1))[None, :, :]
        all_parameters = np.concatenate([all_parameters, global_parameters], axis=0)
        candidate_array = np.concatenate([candidate_array, [n]])

    k = min(validation_neighbors, n - 1) if n > 1 else 0
    if backend == "vectorized":
        costs, validation_counts = _validation_costs_vectorized(
            features, target, all_parameters, learn_cache, k
        )
    else:
        costs, validation_counts = _validation_costs_loop(
            features, target, all_parameters, learn_cache, k
        )

    # Per-tuple argmin; unvalidated tuples use the globally best candidate.
    chosen_positions = np.argmin(costs, axis=1)
    if (validation_counts == 0).any():
        global_best = int(np.argmin(costs.sum(axis=0)))
        chosen_positions = np.where(validation_counts == 0, global_best, chosen_positions)

    chosen_ell = candidate_array[chosen_positions]
    selected = all_parameters[chosen_positions, np.arange(n), :]
    models = IndividualModels(selected, chosen_ell)
    return AdaptiveLearningResult(
        models=models,
        candidates=candidate_array,
        chosen_ell=chosen_ell,
        costs=costs,
        validation_counts=validation_counts,
        all_parameters=all_parameters if keep_candidate_models else None,
    )


def _validation_costs_loop(
    features: np.ndarray,
    target: np.ndarray,
    all_parameters: np.ndarray,
    learn_cache: NeighborOrderCache,
    k: int,
):
    """Reference implementation of Algorithm 3's validation step (lines 3–8)."""
    n = features.shape[0]
    n_candidates = all_parameters.shape[0]
    costs = np.zeros((n, n_candidates))
    validation_counts = np.zeros(n, dtype=int)

    # Gather, for every model owner i, the validation tuples j that count it
    # among their k nearest neighbours (excluding j itself).
    validators = [[] for _ in range(n)]
    if k > 0:
        for j in range(n):
            order = learn_cache.order_of(j)
            neighbors = [idx for idx in order if idx != j][:k]
            for i in neighbors:
                validators[i].append(j)

    designs = batched_design(features)
    for i in range(n):
        rows = validators[i]
        if not rows:
            continue
        validation_counts[i] = len(rows)
        # Predictions of tuple i's candidate models on its validation tuples:
        # (v, d+1) @ (d+1, L) -> (v, L)
        predictions = designs[rows] @ all_parameters[:, i, :].T
        errors = (target[rows, None] - predictions) ** 2
        costs[i] = errors.sum(axis=0)
    return costs, validation_counts


def _validation_costs_vectorized(
    features: np.ndarray,
    target: np.ndarray,
    all_parameters: np.ndarray,
    learn_cache: NeighborOrderCache,
    k: int,
    pair_chunk: int = VALIDATION_PAIR_CHUNK,
):
    """Batched validation step: one scatter-add over all (j, i) pairs.

    Every validation tuple ``j`` charges its squared imputation error under
    ``φ^{(ℓ)}_i`` to ``cost[i][ℓ]`` for each of its ``k`` nearest neighbour
    models ``i``; the whole double loop collapses into an ``einsum`` over
    flattened (j, i) pairs followed by a scatter-add on the cost matrix
    (:func:`scatter_validation_costs`).
    """
    n = features.shape[0]
    n_candidates = all_parameters.shape[0]
    costs = np.zeros((n, n_candidates))
    if k <= 0:
        return costs, np.zeros(n, dtype=int)

    # First k non-self neighbours of every validation tuple j, read off the
    # cached ordering matrix (include_self=True, so the self entry must be
    # dropped — it may sit anywhere among zero-distance ties).
    orders = learn_cache.order_matrix()[:, : k + 1]
    owners = drop_self_rows(orders, np.arange(n))[:, :k]  # (n, k)

    j_idx = np.repeat(np.arange(n), k)
    i_idx = owners.ravel()
    designs = batched_design(features)
    scatter_validation_costs(
        costs, j_idx, i_idx, designs, target, all_parameters, pair_chunk
    )

    validation_counts = np.bincount(i_idx, minlength=n)
    return costs, validation_counts.astype(int)
