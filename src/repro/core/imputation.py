"""The imputation phase of IIM (Algorithm 2 of the paper).

Given the individual models ``Φ`` learned over the complete tuples, an
incomplete tuple ``t_x`` is imputed in three steps:

* (S1) find its ``k`` nearest complete neighbours on ``F``;
* (S2) ask each neighbour's individual model for a candidate
  ``t^j_x[A_m] = (1, t_x[F]) φ_j`` (Formula 9);
* (S3) combine the candidates, by default with the voting weights of
  Formulas 11–12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._validation import as_float_matrix, check_positive_int
from ..exceptions import ConfigurationError
from ..neighbors import BruteForceNeighbors
from .combine import get_combiner
from .learning import IndividualModels

__all__ = ["ImputationTrace", "impute_with_individual_models", "impute_one"]


@dataclass
class ImputationTrace:
    """Diagnostic record of one imputed value (useful for examples and tests)."""

    value: float
    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray
    candidates: np.ndarray
    weights: np.ndarray


def impute_one(
    query_features: np.ndarray,
    models: IndividualModels,
    features: np.ndarray,
    target: np.ndarray,
    k: int,
    combination: str = "voting",
    searcher: Optional[BruteForceNeighbors] = None,
    metric: str = "paper_euclidean",
    return_trace: bool = False,
):
    """Impute a single incomplete tuple (Algorithm 2).

    Parameters
    ----------
    query_features:
        The incomplete tuple's values on the complete attributes ``F``.
    models:
        Individual models learned over the complete tuples.
    features, target:
        The complete tuples split into ``F`` columns and the incomplete
        attribute column (aligned with ``models``).
    k:
        Number of imputation neighbours.
    combination:
        Candidate combination scheme (``"voting"``, ``"uniform"``,
        ``"distance"``).
    searcher:
        Optional pre-fitted neighbour searcher over ``features``.
    metric:
        Distance metric (used when ``searcher`` is not supplied).
    return_trace:
        Return an :class:`ImputationTrace` instead of the bare value.
    """
    features = as_float_matrix(features, name="features")
    k = check_positive_int(k, "k")
    if models.n_models != features.shape[0]:
        raise ConfigurationError("models and features must describe the same tuples")
    if k > features.shape[0]:
        raise ConfigurationError(
            f"k={k} exceeds the number of complete tuples {features.shape[0]}"
        )
    if searcher is None:
        searcher = BruteForceNeighbors(metric=metric).fit(features)
    combiner = get_combiner(combination)

    query_features = np.asarray(query_features, dtype=float).ravel()
    distances, neighbor_indices = searcher.kneighbors(query_features, k)
    candidates = models.predict(neighbor_indices, query_features)
    value = combiner(candidates, distances)
    if not return_trace:
        return float(value)

    # Recompute the effective weights for the trace (informational only).
    if combination == "voting":
        from .combine import candidate_vote_weights

        weights = candidate_vote_weights(candidates)
    elif combination == "uniform":
        weights = np.full(candidates.shape[0], 1.0 / candidates.shape[0])
    else:
        safe = np.where(distances <= 0, np.nan, distances)
        if np.isnan(safe).any():
            weights = np.where(distances <= 0, 1.0, 0.0)
            weights /= weights.sum()
        else:
            weights = (1.0 / safe) / np.sum(1.0 / safe)
    return ImputationTrace(
        value=float(value),
        neighbor_indices=neighbor_indices,
        neighbor_distances=distances,
        candidates=candidates,
        weights=weights,
    )


def impute_with_individual_models(
    queries: np.ndarray,
    models: IndividualModels,
    features: np.ndarray,
    target: np.ndarray,
    k: int,
    combination: str = "voting",
    metric: str = "paper_euclidean",
) -> np.ndarray:
    """Impute a batch of incomplete tuples with shared models and index."""
    queries = as_float_matrix(queries, name="queries")
    features = as_float_matrix(features, name="features")
    searcher = BruteForceNeighbors(metric=metric).fit(features)
    values = np.empty(queries.shape[0])
    for row in range(queries.shape[0]):
        values[row] = impute_one(
            queries[row],
            models,
            features,
            target,
            k,
            combination=combination,
            searcher=searcher,
        )
    return values
