"""The imputation phase of IIM (Algorithm 2 of the paper).

Given the individual models ``Φ`` learned over the complete tuples, an
incomplete tuple ``t_x`` is imputed in three steps:

* (S1) find its ``k`` nearest complete neighbours on ``F``;
* (S2) ask each neighbour's individual model for a candidate
  ``t^j_x[A_m] = (1, t_x[F]) φ_j`` (Formula 9);
* (S3) combine the candidates, by default with the voting weights of
  Formulas 11–12.

:func:`impute_with_individual_models` runs the three steps for a whole
batch of incomplete tuples.  On the default ``"vectorized"`` backend (see
:mod:`repro.config`) that is one batched k-nearest-neighbour call, one
``einsum`` producing every candidate of every query, and one batch combiner
from :mod:`repro.core.combine`; the ``"loop"`` backend applies
:func:`impute_one` per query as the executable reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import as_float_matrix, check_positive_int
from ..config import resolve_backend
from ..exceptions import ConfigurationError
from ..neighbors import BruteForceNeighbors
from ..regression import batched_design
from .combine import get_batch_combiner, get_combiner
from .learning import IndividualModels

__all__ = ["ImputationTrace", "impute_with_individual_models", "impute_one"]


@dataclass
class ImputationTrace:
    """Diagnostic record of one imputed value (useful for examples and tests)."""

    value: float
    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray
    candidates: np.ndarray
    weights: np.ndarray


def impute_one(
    query_features: np.ndarray,
    models: IndividualModels,
    features: np.ndarray,
    target: np.ndarray,
    k: int,
    combination: str = "voting",
    searcher: Optional[BruteForceNeighbors] = None,
    metric: str = "paper_euclidean",
    return_trace: bool = False,
    backend: Optional[str] = None,
):
    """Impute a single incomplete tuple (Algorithm 2).

    Parameters
    ----------
    query_features:
        The incomplete tuple's values on the complete attributes ``F``.
    models:
        Individual models learned over the complete tuples.
    features, target:
        The complete tuples split into ``F`` columns and the incomplete
        attribute column (aligned with ``models``).
    k:
        Number of imputation neighbours.
    combination:
        Candidate combination scheme (``"voting"``, ``"uniform"``,
        ``"distance"``).
    searcher:
        Optional pre-fitted neighbour searcher over ``features``.
    metric:
        Distance metric (used when ``searcher`` is not supplied).
    return_trace:
        Return an :class:`ImputationTrace` instead of the bare value.
    backend:
        Backend for the neighbour search (``"vectorized"``, ``"loop"``, or
        ``None`` to use the searcher's own setting / the global knob).
    """
    features = as_float_matrix(features, name="features")
    k = check_positive_int(k, "k")
    if models.n_models != features.shape[0]:
        raise ConfigurationError("models and features must describe the same tuples")
    if k > features.shape[0]:
        raise ConfigurationError(
            f"k={k} exceeds the number of complete tuples {features.shape[0]}"
        )
    if searcher is None:
        searcher = BruteForceNeighbors(metric=metric).fit(features)
    combiner = get_combiner(combination)

    query_features = np.asarray(query_features, dtype=float).ravel()
    distances, neighbor_indices = searcher.kneighbors(query_features, k, backend=backend)
    candidates = models.predict(neighbor_indices, query_features)
    value, weights = combiner(candidates, distances)
    if not return_trace:
        return float(value)
    return ImputationTrace(
        value=float(value),
        neighbor_indices=neighbor_indices,
        neighbor_distances=distances,
        candidates=candidates,
        weights=weights,
    )


def impute_with_individual_models(
    queries: np.ndarray,
    models: IndividualModels,
    features: np.ndarray,
    target: np.ndarray,
    k: int,
    combination: str = "voting",
    metric: str = "paper_euclidean",
    searcher: Optional[BruteForceNeighbors] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Impute a batch of incomplete tuples with shared models and index.

    Parameters
    ----------
    searcher:
        Optional pre-fitted neighbour searcher over ``features``.
    backend:
        ``"vectorized"``, ``"loop"``, or ``None`` to follow the global knob.
    """
    queries = as_float_matrix(queries, name="queries")
    features = as_float_matrix(features, name="features")
    k = check_positive_int(k, "k")
    if models.n_models != features.shape[0]:
        raise ConfigurationError("models and features must describe the same tuples")
    if k > features.shape[0]:
        raise ConfigurationError(
            f"k={k} exceeds the number of complete tuples {features.shape[0]}"
        )
    if searcher is None:
        searcher = BruteForceNeighbors(metric=metric).fit(features)
    backend = resolve_backend(backend)

    if backend == "loop":
        values = np.empty(queries.shape[0])
        for row in range(queries.shape[0]):
            values[row] = impute_one(
                queries[row],
                models,
                features,
                target,
                k,
                combination=combination,
                searcher=searcher,
                backend=backend,
            )
        return values

    # (S1) one batched kNN call for every query.
    distances, neighbor_indices = searcher.kneighbors(queries, k, backend=backend)
    # (S2) all candidates at once: (q, p) designs against (q, k, p) models.
    designs = batched_design(queries)
    candidates = np.einsum("qp,qkp->qk", designs, models.parameters[neighbor_indices])
    # (S3) one batch combination.
    values, _ = get_batch_combiner(combination)(candidates, distances)
    return values
