"""Global configuration knobs for the library.

The hot paths of IIM (neighbour search, per-candidate model learning, the
validation step of adaptive learning and batch imputation) exist in two
implementations:

* ``"vectorized"`` — batched numpy kernels that process whole blocks of
  tuples per array operation (the default; see the design notes in
  :mod:`repro.core.learning`);
* ``"loop"`` — the original per-tuple Python loops, kept as an executable
  reference.  The test suite asserts that both backends produce the same
  results to within ``rtol = 1e-9``.

The active backend is selected, in decreasing priority, by

1. an explicit ``backend=...`` argument on the function or class,
2. the process-wide knob set through :func:`set_backend` /
   :func:`use_backend`,
3. the ``REPRO_BACKEND`` environment variable read at import time,
4. the ``"vectorized"`` default.

The module also holds the process-wide defaults of the online imputation
engine (:mod:`repro.online`):

* the **model cache size** — how many per-attribute model states the engine
  keeps resident (LRU-evicted beyond that; ``None`` keeps all of them) —
  settable through :func:`set_online_model_cache_size` or the
  ``REPRO_ONLINE_CACHE_SIZE`` environment variable (``none``/``0`` =
  unbounded);
* the **refresh policy** — ``"lazy"`` (appends are folded into the cached
  model states on the next imputation touching them, so consecutive appends
  batch into one refresh) or ``"eager"`` (every append refreshes all cached
  states immediately) — settable through :func:`set_online_refresh_policy`
  or the ``REPRO_ONLINE_REFRESH`` environment variable;
* the **incremental fallback fraction** — the hybrid relearn threshold: when
  one mutation batch (append/delete/update) dirties more than this fraction
  of an attribute state's tuples, the engine relearns that state with one
  vectorized full rebuild over the already-maintained neighbour orderings
  instead of paying per-row merge bookkeeping for no savings — settable
  through :func:`set_online_fallback_fraction` or the
  ``REPRO_ONLINE_FALLBACK_FRACTION`` environment variable (``none``
  disables the fallback, keeping the engine always-incremental).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from .exceptions import ConfigurationError

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "ONLINE_REFRESH_POLICIES",
    "DEFAULT_ONLINE_MODEL_CACHE_SIZE",
    "DEFAULT_ONLINE_REFRESH_POLICY",
    "get_online_model_cache_size",
    "set_online_model_cache_size",
    "resolve_online_model_cache_size",
    "get_online_refresh_policy",
    "set_online_refresh_policy",
    "resolve_online_refresh_policy",
    "DEFAULT_ONLINE_FALLBACK_FRACTION",
    "get_online_fallback_fraction",
    "set_online_fallback_fraction",
    "resolve_online_fallback_fraction",
    "DEFAULT_ONLINE_SHARD_CAPACITY",
    "get_online_shard_capacity",
    "set_online_shard_capacity",
    "resolve_online_shard_capacity",
    "DEFAULT_ONLINE_JOURNAL_CAPACITY",
    "get_online_journal_capacity",
    "set_online_journal_capacity",
    "resolve_online_journal_capacity",
    "ONLINE_DELETE_COST_MODES",
    "DEFAULT_ONLINE_DELETE_COST_MODE",
    "get_online_delete_cost_mode",
    "set_online_delete_cost_mode",
    "resolve_online_delete_cost_mode",
    "WAL_SYNC_POLICIES",
    "DEFAULT_WAL_SYNC",
    "get_wal_sync",
    "set_wal_sync",
    "resolve_wal_sync",
    "DEFAULT_MAX_REQUEST_BYTES",
    "get_max_request_bytes",
    "set_max_request_bytes",
    "resolve_max_request_bytes",
    "DEFAULT_REQUEST_DEADLINE",
    "get_request_deadline",
    "set_request_deadline",
    "resolve_request_deadline",
    "DEFAULT_SERVE_WORKERS",
    "get_serve_workers",
    "set_serve_workers",
    "resolve_serve_workers",
    "DEFAULT_MICROBATCH_WINDOW_MS",
    "get_microbatch_window_ms",
    "set_microbatch_window_ms",
    "resolve_microbatch_window_ms",
    "DEFAULT_MICROBATCH_MAX_ROWS",
    "get_microbatch_max_rows",
    "set_microbatch_max_rows",
    "resolve_microbatch_max_rows",
    "DEFAULT_MAX_ROWS_PER_REQUEST",
    "get_max_rows_per_request",
    "set_max_rows_per_request",
    "resolve_max_rows_per_request",
    "DEFAULT_MAX_SESSIONS",
    "get_max_sessions",
    "set_max_sessions",
    "resolve_max_sessions",
    "DEFAULT_MAX_QUEUED_REQUESTS",
    "get_max_queued_requests",
    "set_max_queued_requests",
    "resolve_max_queued_requests",
    "DEFAULT_OBS_ENABLED",
    "get_obs_enabled",
    "set_obs_enabled",
    "resolve_obs_enabled",
    "DEFAULT_QUERY_PROVENANCE",
    "get_query_provenance",
    "set_query_provenance",
    "resolve_query_provenance",
    "DEFAULT_OBS_TRACE_SAMPLE",
    "get_obs_trace_sample",
    "set_obs_trace_sample",
    "resolve_obs_trace_sample",
    "SCENARIO_TRANSPORTS",
    "DEFAULT_SCENARIO_TRANSPORT",
    "get_scenario_transport",
    "set_scenario_transport",
    "resolve_scenario_transport",
    "DEFAULT_SCENARIO_DIGEST_CHECK",
    "get_scenario_digest_check",
    "set_scenario_digest_check",
    "resolve_scenario_digest_check",
]

#: Recognised kernel backends.
BACKENDS = ("vectorized", "loop")

#: Backend used when neither an argument nor :func:`set_backend` selects one.
DEFAULT_BACKEND = "vectorized"


def _validate(name: str) -> str:
    key = str(name).lower()
    if key not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {name!r}; available backends: {sorted(BACKENDS)}"
        )
    return key


# Read but not validated here: a typo'd REPRO_BACKEND should fail at first
# use with a clear error, not break ``import repro`` itself.
_current_backend = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)


def get_backend() -> str:
    """The process-wide kernel backend (``"vectorized"`` or ``"loop"``)."""
    return _validate(_current_backend)


def set_backend(name: str) -> str:
    """Select the process-wide kernel backend; returns the previous one."""
    global _current_backend
    previous = _current_backend
    _current_backend = _validate(name)
    return previous


@contextmanager
def use_backend(name: str):
    """Context manager that temporarily selects a kernel backend.

    >>> from repro.config import use_backend
    >>> with use_backend("loop"):
    ...     pass  # everything inside runs on the reference loops
    """
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def resolve_backend(backend=None) -> str:
    """Resolve an optional per-call ``backend`` argument against the knob."""
    if backend is None:
        return get_backend()
    return _validate(backend)


# --------------------------------------------------------------------------- #
# Online engine knobs
# --------------------------------------------------------------------------- #

#: Recognised refresh policies of :class:`repro.online.OnlineImputationEngine`.
ONLINE_REFRESH_POLICIES = ("lazy", "eager")

#: Per-attribute model states the engine keeps resident by default.
DEFAULT_ONLINE_MODEL_CACHE_SIZE: Optional[int] = 8

#: Refresh policy used when neither an argument nor the knob selects one.
DEFAULT_ONLINE_REFRESH_POLICY = "lazy"

#: Hybrid relearn threshold: a mutation batch dirtying more than this
#: fraction of an attribute state's tuples triggers one vectorized full
#: rebuild instead of the per-row incremental path.  Below the threshold
#: the batched subset relearn still skips enough rows to win; above it the
#: wholesale rebuild caps the per-sync bookkeeping at the cold-relearn cost.
DEFAULT_ONLINE_FALLBACK_FRACTION: Optional[float] = 0.9


def _validate_cache_size(size) -> Optional[int]:
    if size is None:
        return None
    if isinstance(size, str):
        key = size.strip().lower()
        if key in ("none", "unbounded", ""):
            return None
        try:
            size = int(key)
        except ValueError:
            raise ConfigurationError(
                f"model cache size must be a positive integer or 'none', got {size!r}"
            ) from None
    if isinstance(size, bool) or not isinstance(size, int):
        raise ConfigurationError(
            f"model cache size must be a positive integer or None, got {size!r}"
        )
    if size == 0:
        return None
    if size < 0:
        raise ConfigurationError(f"model cache size must be positive, got {size}")
    return size


def _validate_refresh_policy(policy) -> str:
    key = str(policy).lower()
    if key not in ONLINE_REFRESH_POLICIES:
        raise ConfigurationError(
            f"unknown refresh policy {policy!r}; available policies: "
            f"{sorted(ONLINE_REFRESH_POLICIES)}"
        )
    return key


def _validate_fallback_fraction(fraction) -> Optional[float]:
    if fraction is None:
        return None
    if isinstance(fraction, str):
        key = fraction.strip().lower()
        if key in ("none", "off", "disabled", ""):
            return None
        try:
            fraction = float(key)
        except ValueError:
            raise ConfigurationError(
                f"fallback fraction must be a float in [0, 1] or 'none', "
                f"got {fraction!r}"
            ) from None
    if isinstance(fraction, bool) or not isinstance(fraction, (int, float)):
        raise ConfigurationError(
            f"fallback fraction must be a float in [0, 1] or None, got {fraction!r}"
        )
    fraction = float(fraction)
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(
            f"fallback fraction must lie in [0, 1], got {fraction}"
        )
    return fraction


# Like REPRO_BACKEND, the environment values are validated at first use.
_online_model_cache_size = os.environ.get(
    "REPRO_ONLINE_CACHE_SIZE", DEFAULT_ONLINE_MODEL_CACHE_SIZE
)
_online_refresh_policy = os.environ.get(
    "REPRO_ONLINE_REFRESH", DEFAULT_ONLINE_REFRESH_POLICY
)
_online_fallback_fraction = os.environ.get(
    "REPRO_ONLINE_FALLBACK_FRACTION", DEFAULT_ONLINE_FALLBACK_FRACTION
)


def get_online_model_cache_size() -> Optional[int]:
    """The process-wide engine model cache size (``None`` = unbounded)."""
    return _validate_cache_size(_online_model_cache_size)


def set_online_model_cache_size(size) -> Optional[int]:
    """Select the process-wide model cache size; returns the previous one."""
    global _online_model_cache_size
    previous = _online_model_cache_size
    _online_model_cache_size = _validate_cache_size(size)
    return previous


def resolve_online_model_cache_size(size=None) -> Optional[int]:
    """Resolve an optional per-engine cache size against the knob.

    The sentinel ``"default"`` (what the engine constructor uses) defers to
    the process-wide knob; ``None`` explicitly selects an unbounded cache.
    """
    if isinstance(size, str) and size == "default":
        return get_online_model_cache_size()
    return _validate_cache_size(size)


def get_online_refresh_policy() -> str:
    """The process-wide engine refresh policy (``"lazy"`` or ``"eager"``)."""
    return _validate_refresh_policy(_online_refresh_policy)


def set_online_refresh_policy(policy) -> str:
    """Select the process-wide refresh policy; returns the previous one."""
    global _online_refresh_policy
    previous = _online_refresh_policy
    _online_refresh_policy = _validate_refresh_policy(policy)
    return previous


def resolve_online_refresh_policy(policy=None) -> str:
    """Resolve an optional per-engine refresh policy against the knob."""
    if policy is None:
        return get_online_refresh_policy()
    return _validate_refresh_policy(policy)


def get_online_fallback_fraction() -> Optional[float]:
    """The process-wide hybrid relearn threshold (``None`` = always incremental)."""
    return _validate_fallback_fraction(_online_fallback_fraction)


def set_online_fallback_fraction(fraction):
    """Select the process-wide fallback fraction; returns the previous one."""
    global _online_fallback_fraction
    previous = _online_fallback_fraction
    _online_fallback_fraction = _validate_fallback_fraction(fraction)
    return previous


def resolve_online_fallback_fraction(fraction=None) -> Optional[float]:
    """Resolve an optional per-engine fallback fraction against the knob.

    The sentinel ``"default"`` (what the engine constructor uses) defers to
    the process-wide knob; ``None`` explicitly disables the fallback.
    """
    if isinstance(fraction, str) and fraction == "default":
        return get_online_fallback_fraction()
    return _validate_fallback_fraction(fraction)


# --------------------------------------------------------------------------- #
# Columnar store / journal knobs
# --------------------------------------------------------------------------- #

#: Rows per shard of the engine's columnar tuple store.  Appends allocate
#: whole shards (existing rows never move); mutation bookkeeping touches
#: only the shards a batch's slots land in.
DEFAULT_ONLINE_SHARD_CAPACITY = 4096

#: Mutation-journal ring capacity: at most this many append/delete/update
#: entries are retained for lazy replay.  Entries hold store slot
#: references only, so the bound caps journal memory at O(capacity)
#: integers; overflowing entries spill and laggard states full-rebuild.
DEFAULT_ONLINE_JOURNAL_CAPACITY = 512

#: Recognised delete-path validation-cost maintenance modes.
ONLINE_DELETE_COST_MODES = ("rebuild", "decrement")

#: How deletes refresh validation-cost rows: ``"rebuild"`` re-accumulates
#: every dirty row with the cold scatter kernel (exact accumulation order);
#: ``"decrement"`` subtracts the retired validator pairs from rows that
#: only *lost* validators, guarded by a cancellation check that falls back
#: to the rebuild when the subtraction would amplify rounding.
DEFAULT_ONLINE_DELETE_COST_MODE = "rebuild"


def _validate_positive_knob(value, name: str) -> int:
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise ConfigurationError(
                f"{name} must be a positive integer, got {value!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def _validate_delete_cost_mode(mode) -> str:
    key = str(mode).lower()
    if key not in ONLINE_DELETE_COST_MODES:
        raise ConfigurationError(
            f"unknown delete cost mode {mode!r}; available modes: "
            f"{sorted(ONLINE_DELETE_COST_MODES)}"
        )
    return key


_online_shard_capacity = os.environ.get(
    "REPRO_ONLINE_SHARD_CAPACITY", DEFAULT_ONLINE_SHARD_CAPACITY
)
_online_journal_capacity = os.environ.get(
    "REPRO_ONLINE_JOURNAL_CAPACITY", DEFAULT_ONLINE_JOURNAL_CAPACITY
)
_online_delete_cost_mode = os.environ.get(
    "REPRO_ONLINE_DELETE_COST", DEFAULT_ONLINE_DELETE_COST_MODE
)


def get_online_shard_capacity() -> int:
    """The process-wide columnar-store shard capacity (rows per shard)."""
    return _validate_positive_knob(_online_shard_capacity, "shard capacity")


def set_online_shard_capacity(capacity):
    """Select the process-wide shard capacity; returns the previous one."""
    global _online_shard_capacity
    previous = _online_shard_capacity
    _online_shard_capacity = _validate_positive_knob(capacity, "shard capacity")
    return previous


def resolve_online_shard_capacity(capacity=None) -> int:
    """Resolve an optional per-engine shard capacity against the knob."""
    if capacity is None or (isinstance(capacity, str) and capacity == "default"):
        return get_online_shard_capacity()
    return _validate_positive_knob(capacity, "shard capacity")


def get_online_journal_capacity() -> int:
    """The process-wide mutation-journal ring capacity (entries)."""
    return _validate_positive_knob(_online_journal_capacity, "journal capacity")


def set_online_journal_capacity(capacity):
    """Select the process-wide journal capacity; returns the previous one."""
    global _online_journal_capacity
    previous = _online_journal_capacity
    _online_journal_capacity = _validate_positive_knob(capacity, "journal capacity")
    return previous


def resolve_online_journal_capacity(capacity=None) -> int:
    """Resolve an optional per-engine journal capacity against the knob."""
    if capacity is None or (isinstance(capacity, str) and capacity == "default"):
        return get_online_journal_capacity()
    return _validate_positive_knob(capacity, "journal capacity")


def get_online_delete_cost_mode() -> str:
    """The process-wide delete cost mode (``"rebuild"`` or ``"decrement"``)."""
    return _validate_delete_cost_mode(_online_delete_cost_mode)


def set_online_delete_cost_mode(mode):
    """Select the process-wide delete cost mode; returns the previous one."""
    global _online_delete_cost_mode
    previous = _online_delete_cost_mode
    _online_delete_cost_mode = _validate_delete_cost_mode(mode)
    return previous


def resolve_online_delete_cost_mode(mode=None) -> str:
    """Resolve an optional per-engine delete cost mode against the knob."""
    if mode is None or (isinstance(mode, str) and mode == "default"):
        return get_online_delete_cost_mode()
    return _validate_delete_cost_mode(mode)


# --------------------------------------------------------------------------- #
# Reliability knobs (write-ahead log + serve loop)
# --------------------------------------------------------------------------- #

#: Recognised WAL fsync policies of :class:`repro.reliability.WriteAheadLog`:
#: ``"always"`` fsyncs every record (survives power loss), ``"batch"``
#: flushes to the OS once per accepted mutation batch (survives a process
#: kill, not power loss), ``"off"`` leaves records in the Python buffer
#: until rotation or close (fastest; a kill may lose the buffered tail,
#: the CRC framing still recovers the valid prefix).
WAL_SYNC_POLICIES = ("always", "batch", "off")

#: WAL sync policy used when neither an argument nor the knob selects one.
DEFAULT_WAL_SYNC = "batch"

#: Longest request line (bytes) the serve loop accepts before answering a
#: typed ``protocol`` error instead of buffering it whole (``None`` =
#: unbounded, for in-process servers whose requests you author yourself).
DEFAULT_MAX_REQUEST_BYTES: Optional[int] = 1_048_576

#: Per-request deadline (seconds) of the serve loop (``None`` = no
#: deadline).  An overrunning request answers ``DeadlineExceededError``
#: while the worker finishes in the background.
DEFAULT_REQUEST_DEADLINE: Optional[float] = None


def _validate_wal_sync(policy) -> str:
    key = str(policy).lower()
    if key not in WAL_SYNC_POLICIES:
        raise ConfigurationError(
            f"unknown WAL sync policy {policy!r}; available policies: "
            f"{sorted(WAL_SYNC_POLICIES)}"
        )
    return key


def _validate_max_request_bytes(limit) -> Optional[int]:
    if limit is None:
        return None
    if isinstance(limit, str):
        key = limit.strip().lower()
        if key in ("none", "unbounded", ""):
            return None
        try:
            limit = int(key)
        except ValueError:
            raise ConfigurationError(
                f"max request bytes must be a positive integer or 'none', "
                f"got {limit!r}"
            ) from None
    if isinstance(limit, bool) or not isinstance(limit, int):
        raise ConfigurationError(
            f"max request bytes must be a positive integer or None, got {limit!r}"
        )
    if limit <= 0:
        raise ConfigurationError(
            f"max request bytes must be positive, got {limit}"
        )
    return limit


def _validate_request_deadline(deadline) -> Optional[float]:
    if deadline is None:
        return None
    if isinstance(deadline, str):
        key = deadline.strip().lower()
        if key in ("none", "off", ""):
            return None
        try:
            deadline = float(key)
        except ValueError:
            raise ConfigurationError(
                f"request deadline must be a positive number of seconds or "
                f"'none', got {deadline!r}"
            ) from None
    if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
        raise ConfigurationError(
            f"request deadline must be a positive number of seconds or None, "
            f"got {deadline!r}"
        )
    deadline = float(deadline)
    if deadline <= 0:
        raise ConfigurationError(
            f"request deadline must be positive, got {deadline}"
        )
    return deadline


_wal_sync = os.environ.get("REPRO_WAL_SYNC", DEFAULT_WAL_SYNC)
_max_request_bytes = os.environ.get(
    "REPRO_MAX_REQUEST_BYTES", DEFAULT_MAX_REQUEST_BYTES
)
_request_deadline = os.environ.get(
    "REPRO_REQUEST_DEADLINE", DEFAULT_REQUEST_DEADLINE
)


def get_wal_sync() -> str:
    """The process-wide WAL sync policy (``always``/``batch``/``off``)."""
    return _validate_wal_sync(_wal_sync)


def set_wal_sync(policy) -> str:
    """Select the process-wide WAL sync policy; returns the previous one."""
    global _wal_sync
    previous = _wal_sync
    _wal_sync = _validate_wal_sync(policy)
    return previous


def resolve_wal_sync(policy=None) -> str:
    """Resolve an optional per-WAL sync policy against the knob."""
    if policy is None or (isinstance(policy, str) and policy == "default"):
        return get_wal_sync()
    return _validate_wal_sync(policy)


def get_max_request_bytes() -> Optional[int]:
    """The process-wide request-line bound (``None`` = unbounded)."""
    return _validate_max_request_bytes(_max_request_bytes)


def set_max_request_bytes(limit):
    """Select the process-wide request-line bound; returns the previous one."""
    global _max_request_bytes
    previous = _max_request_bytes
    _max_request_bytes = _validate_max_request_bytes(limit)
    return previous


def resolve_max_request_bytes(limit=None) -> Optional[int]:
    """Resolve an optional per-server line bound against the knob.

    The sentinel ``"default"`` defers to the process-wide knob; ``None``
    explicitly disables the bound.
    """
    if isinstance(limit, str) and limit == "default":
        return get_max_request_bytes()
    return _validate_max_request_bytes(limit)


def get_request_deadline() -> Optional[float]:
    """The process-wide per-request deadline in seconds (``None`` = none)."""
    return _validate_request_deadline(_request_deadline)


def set_request_deadline(deadline):
    """Select the process-wide request deadline; returns the previous one."""
    global _request_deadline
    previous = _request_deadline
    _request_deadline = _validate_request_deadline(deadline)
    return previous


def resolve_request_deadline(deadline=None) -> Optional[float]:
    """Resolve an optional per-server deadline against the knob.

    The sentinel ``"default"`` defers to the process-wide knob; ``None``
    explicitly disables the deadline.
    """
    if isinstance(deadline, str) and deadline == "default":
        return get_request_deadline()
    return _validate_request_deadline(deadline)


# --------------------------------------------------------------------------- #
# Serving concurrency + admission knobs (scheduler, micro-batcher, quotas)
# --------------------------------------------------------------------------- #

#: Worker threads draining session queues in the serve loop's scheduler.
#: Sessions are independent engines and numpy releases the GIL inside the
#: GEMM-heavy kernels, so a handful of workers buys real cross-session
#: parallelism; more workers than live sessions (or physical cores) only
#: adds contention.
DEFAULT_SERVE_WORKERS = 4

#: How long (milliseconds) the micro-batcher may hold an eligible
#: single-row ``impute`` request open waiting for coalescible followers.
#: ``0`` coalesces opportunistically — only requests *already queued*
#: behind one another merge, so request-response clients pay no added
#: latency while pipelined clients still batch.
DEFAULT_MICROBATCH_WINDOW_MS = 0.0

#: Most rows one coalesced impute batch may carry.
DEFAULT_MICROBATCH_MAX_ROWS = 64

#: Most rows a single wire request (``fit``/``impute``/mutation batch) may
#: carry before admission answers a typed ``quota`` error (``None`` =
#: unbounded, the historical behaviour).
DEFAULT_MAX_ROWS_PER_REQUEST: Optional[int] = None

#: Most live sessions one server holds before ``create``/``restore``
#: answers a ``quota`` error (``None`` = unbounded).
DEFAULT_MAX_SESSIONS: Optional[int] = None

#: Most requests one session's FIFO queue buffers before producers are
#: answered a typed ``overloaded`` error instead of growing the queue.
DEFAULT_MAX_QUEUED_REQUESTS = 256


def _validate_optional_positive_knob(value, name: str) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, str):
        key = value.strip().lower()
        if key in ("none", "unbounded", ""):
            return None
        value = key
    return _validate_positive_knob(value, name)


def _validate_microbatch_window(value) -> float:
    if isinstance(value, str):
        try:
            value = float(value.strip())
        except ValueError:
            raise ConfigurationError(
                f"microbatch window must be a non-negative number of "
                f"milliseconds, got {value!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"microbatch window must be a non-negative number of "
            f"milliseconds, got {value!r}"
        )
    value = float(value)
    if value < 0.0:
        raise ConfigurationError(
            f"microbatch window must be non-negative, got {value}"
        )
    return value


_serve_workers = os.environ.get("REPRO_SERVE_WORKERS", DEFAULT_SERVE_WORKERS)
_microbatch_window_ms = os.environ.get(
    "REPRO_MICROBATCH_WINDOW_MS", DEFAULT_MICROBATCH_WINDOW_MS
)
_microbatch_max_rows = os.environ.get(
    "REPRO_MICROBATCH_MAX_ROWS", DEFAULT_MICROBATCH_MAX_ROWS
)
_max_rows_per_request = os.environ.get(
    "REPRO_MAX_ROWS_PER_REQUEST", DEFAULT_MAX_ROWS_PER_REQUEST
)
_max_sessions = os.environ.get("REPRO_MAX_SESSIONS", DEFAULT_MAX_SESSIONS)
_max_queued_requests = os.environ.get(
    "REPRO_MAX_QUEUED_REQUESTS", DEFAULT_MAX_QUEUED_REQUESTS
)


def get_serve_workers() -> int:
    """The process-wide serve worker-pool size."""
    return _validate_positive_knob(_serve_workers, "serve workers")


def set_serve_workers(workers):
    """Select the process-wide worker-pool size; returns the previous one."""
    global _serve_workers
    previous = _serve_workers
    _serve_workers = _validate_positive_knob(workers, "serve workers")
    return previous


def resolve_serve_workers(workers=None) -> int:
    """Resolve an optional per-server worker-pool size against the knob."""
    if workers is None or (isinstance(workers, str) and workers == "default"):
        return get_serve_workers()
    return _validate_positive_knob(workers, "serve workers")


def get_microbatch_window_ms() -> float:
    """The process-wide micro-batch coalescing window in milliseconds."""
    return _validate_microbatch_window(_microbatch_window_ms)


def set_microbatch_window_ms(window):
    """Select the process-wide coalescing window; returns the previous one."""
    global _microbatch_window_ms
    previous = _microbatch_window_ms
    _microbatch_window_ms = _validate_microbatch_window(window)
    return previous


def resolve_microbatch_window_ms(window=None) -> float:
    """Resolve an optional per-server coalescing window against the knob."""
    if window is None or (isinstance(window, str) and window == "default"):
        return get_microbatch_window_ms()
    return _validate_microbatch_window(window)


def get_microbatch_max_rows() -> int:
    """The process-wide bound on rows per coalesced impute batch."""
    return _validate_positive_knob(_microbatch_max_rows, "microbatch max rows")


def set_microbatch_max_rows(rows):
    """Select the process-wide micro-batch row bound; returns the previous one."""
    global _microbatch_max_rows
    previous = _microbatch_max_rows
    _microbatch_max_rows = _validate_positive_knob(rows, "microbatch max rows")
    return previous


def resolve_microbatch_max_rows(rows=None) -> int:
    """Resolve an optional per-server micro-batch row bound against the knob."""
    if rows is None or (isinstance(rows, str) and rows == "default"):
        return get_microbatch_max_rows()
    return _validate_positive_knob(rows, "microbatch max rows")


def get_max_rows_per_request() -> Optional[int]:
    """The process-wide per-request row quota (``None`` = unbounded)."""
    return _validate_optional_positive_knob(
        _max_rows_per_request, "max rows per request"
    )


def set_max_rows_per_request(rows):
    """Select the process-wide per-request row quota; returns the previous one."""
    global _max_rows_per_request
    previous = _max_rows_per_request
    _max_rows_per_request = _validate_optional_positive_knob(
        rows, "max rows per request"
    )
    return previous


def resolve_max_rows_per_request(rows=None) -> Optional[int]:
    """Resolve an optional per-server row quota against the knob.

    The sentinel ``"default"`` defers to the process-wide knob; ``None``
    explicitly disables the quota.
    """
    if isinstance(rows, str) and rows == "default":
        return get_max_rows_per_request()
    return _validate_optional_positive_knob(rows, "max rows per request")


def get_max_sessions() -> Optional[int]:
    """The process-wide live-session quota (``None`` = unbounded)."""
    return _validate_optional_positive_knob(_max_sessions, "max sessions")


def set_max_sessions(limit):
    """Select the process-wide live-session quota; returns the previous one."""
    global _max_sessions
    previous = _max_sessions
    _max_sessions = _validate_optional_positive_knob(limit, "max sessions")
    return previous


def resolve_max_sessions(limit=None) -> Optional[int]:
    """Resolve an optional per-server session quota against the knob.

    The sentinel ``"default"`` defers to the process-wide knob; ``None``
    explicitly disables the quota.
    """
    if isinstance(limit, str) and limit == "default":
        return get_max_sessions()
    return _validate_optional_positive_knob(limit, "max sessions")


def get_max_queued_requests() -> int:
    """The process-wide bound on one session's queued requests."""
    return _validate_positive_knob(_max_queued_requests, "max queued requests")


def set_max_queued_requests(limit):
    """Select the process-wide queue bound; returns the previous one."""
    global _max_queued_requests
    previous = _max_queued_requests
    _max_queued_requests = _validate_positive_knob(limit, "max queued requests")
    return previous


def resolve_max_queued_requests(limit=None) -> int:
    """Resolve an optional per-server queue bound against the knob."""
    if limit is None or (isinstance(limit, str) and limit == "default"):
        return get_max_queued_requests()
    return _validate_positive_knob(limit, "max queued requests")


# --------------------------------------------------------------------------- #
# Observability knobs (metrics registry + request tracing)
# --------------------------------------------------------------------------- #

#: Whether the observability layer (:mod:`repro.obs`) records anything.
#: Disabled, every instrument and span helper returns before taking a
#: lock, so the remaining cost at a call site is one boolean check.
DEFAULT_OBS_ENABLED = True

#: Fraction of serve-loop requests whose span tree is captured (trace IDs
#: are always issued and every request lands in the latency histograms;
#: sampling only gates span assembly, the trace ring and the sink).  Head
#: sampling is the norm for production tracing — full capture costs a few
#: percent on sub-millisecond requests — so the default records one request
#: in ten; debugging sessions pass ``--trace-sample 1.0``.
DEFAULT_OBS_TRACE_SAMPLE = 0.1


def _validate_obs_enabled(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        key = value.strip().lower()
        if key in ("1", "true", "yes", "on"):
            return True
        if key in ("0", "false", "no", "off", ""):
            return False
    raise ConfigurationError(
        f"obs_enabled must be a boolean (or '1'/'0'/'true'/'false'/...), "
        f"got {value!r}"
    )


def _validate_obs_trace_sample(value) -> float:
    if isinstance(value, str):
        try:
            value = float(value.strip())
        except ValueError:
            raise ConfigurationError(
                f"obs_trace_sample must be a number in [0, 1], got {value!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"obs_trace_sample must be a number in [0, 1], got {value!r}"
        )
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"obs_trace_sample must be within [0, 1], got {value}"
        )
    return value


_obs_enabled = os.environ.get("REPRO_OBS_ENABLED", DEFAULT_OBS_ENABLED)
_obs_trace_sample = os.environ.get(
    "REPRO_OBS_TRACE_SAMPLE", DEFAULT_OBS_TRACE_SAMPLE
)


def get_obs_enabled() -> bool:
    """Whether the process-wide observability layer records anything.

    This getter sits on every instrumented hot path (one call per metric
    mutation), so unlike the other knobs it caches the validated value:
    an env-supplied string is parsed on first use, after which each call
    is one ``isinstance`` check.
    """
    global _obs_enabled
    if not isinstance(_obs_enabled, bool):
        _obs_enabled = _validate_obs_enabled(_obs_enabled)
    return _obs_enabled


def set_obs_enabled(value) -> bool:
    """Enable/disable observability process-wide; returns the previous value.

    Flipping the knob takes effect immediately for every already-created
    instrument — the registry and every helper consult it per call.
    """
    global _obs_enabled
    previous = _validate_obs_enabled(_obs_enabled)
    _obs_enabled = _validate_obs_enabled(value)
    return previous


def resolve_obs_enabled(value=None) -> bool:
    """Resolve an optional per-call override against the knob."""
    if value is None or (isinstance(value, str) and value == "default"):
        return get_obs_enabled()
    return _validate_obs_enabled(value)


def get_obs_trace_sample() -> float:
    """The process-wide trace sampling rate in ``[0, 1]``.

    Cached like :func:`get_obs_enabled` — consulted once per sampled
    request, so the steady state is one ``isinstance`` check.
    """
    global _obs_trace_sample
    if not isinstance(_obs_trace_sample, float):
        _obs_trace_sample = _validate_obs_trace_sample(_obs_trace_sample)
    return _obs_trace_sample


def set_obs_trace_sample(value) -> float:
    """Select the process-wide trace sampling rate; returns the previous one."""
    global _obs_trace_sample
    previous = _validate_obs_trace_sample(_obs_trace_sample)
    _obs_trace_sample = _validate_obs_trace_sample(value)
    return previous


def resolve_obs_trace_sample(value=None) -> float:
    """Resolve an optional per-server sampling rate against the knob.

    The sentinel ``"default"`` (and ``None``) defers to the process-wide
    knob.
    """
    if value is None or (isinstance(value, str) and value == "default"):
        return get_obs_trace_sample()
    return _validate_obs_trace_sample(value)


# --------------------------------------------------------------------------- #
# Query layer (repro.query)
# --------------------------------------------------------------------------- #

#: Whether query execution captures per-imputed-cell provenance (method,
#: neighbour indices, combiner weights, confidence).  Capture costs a small
#: Python loop over the imputed cells, so sessions serving very wide
#: impute-heavy queries can switch it off; ``EXPLAIN`` output and the
#: ``provenance`` wire field are empty while disabled.
DEFAULT_QUERY_PROVENANCE = True


def _validate_query_provenance(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        key = value.strip().lower()
        if key in ("1", "true", "yes", "on"):
            return True
        if key in ("0", "false", "no", "off", ""):
            return False
    raise ConfigurationError(
        f"query_provenance must be a boolean (or '1'/'0'/'true'/'false'/...), "
        f"got {value!r}"
    )


_query_provenance = os.environ.get(
    "REPRO_QUERY_PROVENANCE", DEFAULT_QUERY_PROVENANCE
)


def get_query_provenance() -> bool:
    """Whether query execution records per-imputed-cell provenance."""
    return _validate_query_provenance(_query_provenance)


def set_query_provenance(value) -> bool:
    """Enable/disable query provenance capture; returns the previous value."""
    global _query_provenance
    previous = _validate_query_provenance(_query_provenance)
    _query_provenance = _validate_query_provenance(value)
    return previous


def resolve_query_provenance(value=None) -> bool:
    """Resolve an optional per-query override against the knob."""
    if value is None or (isinstance(value, str) and value == "default"):
        return get_query_provenance()
    return _validate_query_provenance(value)


# --------------------------------------------------------------------------- #
# Scenario replayer (repro.scenarios)
# --------------------------------------------------------------------------- #
#: How the scenario replayer drives a spec: ``"engine"`` calls the online
#: session facade directly, ``"serve"`` routes every event through the
#: in-process JSONL serve loop, ``"tcp"`` goes through a real socket, and
#: ``"auto"`` picks the serve loop for multi-tenant scenarios (whose point
#: is the session-multiplexed wire path) and the engine otherwise.
SCENARIO_TRANSPORTS = ("auto", "engine", "serve", "tcp")

#: Transport used when neither an argument nor :func:`set_scenario_transport`
#: selects one.
DEFAULT_SCENARIO_TRANSPORT = "auto"

#: Whether a replay of a *registered* scenario first re-checks the generated
#: trace against the scenario's checked-in golden digest, so accidental
#: generator drift fails loudly before any event is driven.
DEFAULT_SCENARIO_DIGEST_CHECK = True


def _validate_scenario_transport(value) -> str:
    key = str(value).lower()
    if key not in SCENARIO_TRANSPORTS:
        raise ConfigurationError(
            f"unknown scenario transport {value!r}; available transports: "
            f"{list(SCENARIO_TRANSPORTS)}"
        )
    return key


def _validate_scenario_digest_check(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        key = value.strip().lower()
        if key in ("1", "true", "yes", "on"):
            return True
        if key in ("0", "false", "no", "off", ""):
            return False
    raise ConfigurationError(
        f"scenario_digest_check must be a boolean (or '1'/'0'/'true'/"
        f"'false'/...), got {value!r}"
    )


_scenario_transport = os.environ.get(
    "REPRO_SCENARIO_TRANSPORT", DEFAULT_SCENARIO_TRANSPORT
)
_scenario_digest_check = os.environ.get(
    "REPRO_SCENARIO_DIGEST_CHECK", DEFAULT_SCENARIO_DIGEST_CHECK
)


def get_scenario_transport() -> str:
    """The process-wide scenario replay transport (validated lazily)."""
    return _validate_scenario_transport(_scenario_transport)


def set_scenario_transport(value) -> str:
    """Select the scenario replay transport; returns the previous one."""
    global _scenario_transport
    previous = _validate_scenario_transport(_scenario_transport)
    _scenario_transport = _validate_scenario_transport(value)
    return previous


def resolve_scenario_transport(value=None) -> str:
    """Resolve an optional per-call transport against the knob."""
    if value is None or (isinstance(value, str) and value == "default"):
        return get_scenario_transport()
    return _validate_scenario_transport(value)


def get_scenario_digest_check() -> bool:
    """Whether replays of registered scenarios verify the golden digest."""
    return _validate_scenario_digest_check(_scenario_digest_check)


def set_scenario_digest_check(value) -> bool:
    """Enable/disable the golden-digest pre-check; returns the previous value."""
    global _scenario_digest_check
    previous = _validate_scenario_digest_check(_scenario_digest_check)
    _scenario_digest_check = _validate_scenario_digest_check(value)
    return previous


def resolve_scenario_digest_check(value=None) -> bool:
    """Resolve an optional per-call override against the knob."""
    if value is None or (isinstance(value, str) and value == "default"):
        return get_scenario_digest_check()
    return _validate_scenario_digest_check(value)
