"""Global configuration knobs for the library.

The hot paths of IIM (neighbour search, per-candidate model learning, the
validation step of adaptive learning and batch imputation) exist in two
implementations:

* ``"vectorized"`` — batched numpy kernels that process whole blocks of
  tuples per array operation (the default; see the design notes in
  :mod:`repro.core.learning`);
* ``"loop"`` — the original per-tuple Python loops, kept as an executable
  reference.  The test suite asserts that both backends produce the same
  results to within ``rtol = 1e-9``.

The active backend is selected, in decreasing priority, by

1. an explicit ``backend=...`` argument on the function or class,
2. the process-wide knob set through :func:`set_backend` /
   :func:`use_backend`,
3. the ``REPRO_BACKEND`` environment variable read at import time,
4. the ``"vectorized"`` default.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .exceptions import ConfigurationError

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
]

#: Recognised kernel backends.
BACKENDS = ("vectorized", "loop")

#: Backend used when neither an argument nor :func:`set_backend` selects one.
DEFAULT_BACKEND = "vectorized"


def _validate(name: str) -> str:
    key = str(name).lower()
    if key not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {name!r}; available backends: {sorted(BACKENDS)}"
        )
    return key


# Read but not validated here: a typo'd REPRO_BACKEND should fail at first
# use with a clear error, not break ``import repro`` itself.
_current_backend = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)


def get_backend() -> str:
    """The process-wide kernel backend (``"vectorized"`` or ``"loop"``)."""
    return _validate(_current_backend)


def set_backend(name: str) -> str:
    """Select the process-wide kernel backend; returns the previous one."""
    global _current_backend
    previous = _current_backend
    _current_backend = _validate(name)
    return previous


@contextmanager
def use_backend(name: str):
    """Context manager that temporarily selects a kernel backend.

    >>> from repro.config import use_backend
    >>> with use_backend("loop"):
    ...     pass  # everything inside runs on the reference loops
    """
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def resolve_backend(backend=None) -> str:
    """Resolve an optional per-call ``backend`` argument against the knob."""
    if backend is None:
        return get_backend()
    return _validate(backend)
