"""Classification metrics for the application study (Section VI-D2).

The paper reports the F1 score of a kNN classifier over datasets with real
missing values, before and after imputation, using 5-fold cross validation.
The helpers here compute accuracy, per-class precision/recall/F1 and the
weighted-average F1 the paper's tables report.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..exceptions import DataError

__all__ = ["accuracy_score", "precision_recall_f1", "f1_score", "confusion_matrix"]


def _validate_labels(truth, predicted):
    truth = np.asarray(truth).ravel()
    predicted = np.asarray(predicted).ravel()
    if truth.shape[0] == 0:
        raise DataError("label arrays must be non-empty")
    if truth.shape[0] != predicted.shape[0]:
        raise DataError(
            f"label arrays must have the same length, got {truth.shape[0]} and {predicted.shape[0]}"
        )
    return truth, predicted


def accuracy_score(truth, predicted) -> float:
    """Fraction of correctly classified instances."""
    truth, predicted = _validate_labels(truth, predicted)
    return float(np.mean(truth == predicted))


def confusion_matrix(truth, predicted) -> np.ndarray:
    """Square confusion matrix over the union of observed labels."""
    truth, predicted = _validate_labels(truth, predicted)
    labels = np.unique(np.concatenate([truth, predicted]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((labels.shape[0], labels.shape[0]), dtype=int)
    for t, p in zip(truth, predicted):
        matrix[index[t], index[p]] += 1
    return matrix


def precision_recall_f1(truth, predicted) -> Dict[object, Dict[str, float]]:
    """Per-class precision, recall and F1 (one-vs-rest)."""
    truth, predicted = _validate_labels(truth, predicted)
    results: Dict[object, Dict[str, float]] = {}
    for label in np.unique(truth):
        true_positive = float(np.sum((predicted == label) & (truth == label)))
        false_positive = float(np.sum((predicted == label) & (truth != label)))
        false_negative = float(np.sum((predicted != label) & (truth == label)))
        precision = true_positive / (true_positive + false_positive) if true_positive + false_positive > 0 else 0.0
        recall = true_positive / (true_positive + false_negative) if true_positive + false_negative > 0 else 0.0
        if precision + recall > 0:
            f1 = 2.0 * precision * recall / (precision + recall)
        else:
            f1 = 0.0
        results[label.item() if hasattr(label, "item") else label] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": float(np.sum(truth == label)),
        }
    return results


def f1_score(truth, predicted, average: str = "weighted") -> float:
    """F1 score aggregated across classes.

    Parameters
    ----------
    average:
        ``"weighted"`` (support-weighted mean, the paper's reporting),
        ``"macro"`` (unweighted mean) or ``"binary"`` (positive class = the
        largest label, for two-class problems).
    """
    per_class = precision_recall_f1(truth, predicted)
    if not per_class:
        raise DataError("cannot compute F1 with no observed classes")
    if average == "macro":
        return float(np.mean([stats["f1"] for stats in per_class.values()]))
    if average == "weighted":
        supports = np.array([stats["support"] for stats in per_class.values()])
        f1s = np.array([stats["f1"] for stats in per_class.values()])
        return float(np.sum(f1s * supports) / np.sum(supports))
    if average == "binary":
        labels = sorted(per_class.keys())
        if len(labels) != 2:
            raise DataError("binary averaging requires exactly two classes")
        return float(per_class[labels[-1]]["f1"])
    raise DataError(f"unknown average {average!r}; use 'weighted', 'macro' or 'binary'")
