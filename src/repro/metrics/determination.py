"""Coefficient-of-determination style measures of sparsity and heterogeneity.

Section VI-A2 of the paper characterises each dataset with two measures:

* ``R²_S`` (sparsity): how well the values *suggested by complete neighbours*
  (a kNN aggregation) predict the truth.  Low values mean neighbours do not
  share similar values — the sparsity problem.
* ``R²_H`` (heterogeneity): how well a *single global regression* predicts
  the truth.  Low values mean no one model fits all tuples — the
  heterogeneity problem.

Both are the ordinary ``R² = 1 - SS_res / SS_tot`` computed against a chosen
predictor; the helpers here build the kNN and GLR predictors from a complete
relation so datasets can be profiled exactly as in Table V / Table VI.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import as_float_vector, check_consistent_length, check_positive_int
from ..exceptions import DataError
from ..data.relation import AttributeRef, Relation
from ..neighbors import BruteForceNeighbors
from ..regression import RidgeRegression

__all__ = ["r_squared", "sparsity_r2", "heterogeneity_r2"]


def r_squared(truth, predicted) -> float:
    """Plain coefficient of determination ``1 - SS_res / SS_tot``."""
    truth = as_float_vector(truth, name="truth")
    predicted = as_float_vector(predicted, name="predicted")
    check_consistent_length(truth, predicted, names=("truth", "predicted"))
    ss_res = float(np.sum((truth - predicted) ** 2))
    ss_tot = float(np.sum((truth - truth.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _holdout_columns(relation: Relation, attribute: AttributeRef):
    if not relation.is_complete():
        raise DataError("dataset profiling requires a complete relation")
    target_index = relation.schema.index_of(attribute)
    complete_indices = [i for i in range(relation.n_attributes) if i != target_index]
    if not complete_indices:
        raise DataError("profiling needs at least one complete attribute besides the target")
    values = relation.raw
    return values[:, complete_indices], values[:, target_index]


def sparsity_r2(
    relation: Relation,
    attribute: AttributeRef,
    n_neighbors: int = 5,
    sample_size: Optional[int] = None,
    random_state: Optional[int] = 0,
) -> float:
    """``R²_S``: determination of the truth by the kNN-aggregated neighbour value.

    For each (sampled) tuple, its value on ``attribute`` is predicted as the
    mean of its ``n_neighbors`` nearest neighbours' values (neighbours found
    on the remaining attributes, excluding the tuple itself).  Low values
    signal the sparsity problem.
    """
    n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
    features, target = _holdout_columns(relation, attribute)
    n = features.shape[0]
    if n_neighbors >= n:
        raise DataError("n_neighbors must be smaller than the relation size")

    rng = np.random.default_rng(random_state)
    if sample_size is not None and sample_size < n:
        rows = np.sort(rng.choice(n, size=sample_size, replace=False))
    else:
        rows = np.arange(n)

    searcher = BruteForceNeighbors().fit(features)
    predictions = np.empty(rows.shape[0])
    for position, row in enumerate(rows):
        _, indices = searcher.kneighbors(features[row], n_neighbors, exclude_self=True)
        predictions[position] = target[indices].mean()
    return r_squared(target[rows], predictions)


def heterogeneity_r2(
    relation: Relation,
    attribute: AttributeRef,
    alpha: float = 1e-3,
    sample_size: Optional[int] = None,
    random_state: Optional[int] = 0,
) -> float:
    """``R²_H``: determination of the truth by a single global regression.

    A ridge regression from the remaining attributes to ``attribute`` is fit
    on all tuples and evaluated in-sample (matching the paper's use of the
    measure as a dataset descriptor).  Low values signal heterogeneity.
    """
    features, target = _holdout_columns(relation, attribute)
    model = RidgeRegression(alpha=alpha).fit(features, target)
    predictions = model.predict(features)

    n = features.shape[0]
    if sample_size is not None and sample_size < n:
        rng = np.random.default_rng(random_state)
        rows = np.sort(rng.choice(n, size=sample_size, replace=False))
        return r_squared(target[rows], predictions[rows])
    return r_squared(target, predictions)
