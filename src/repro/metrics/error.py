"""Imputation error metrics (Section VI-A2 of the paper).

The paper evaluates imputation accuracy with the root-mean-square (RMS)
error between the imputed values and the held-out ground truth.  Mean
absolute error and normalised RMS are provided for additional reporting.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_vector, check_consistent_length
from ..exceptions import DataError

__all__ = ["rms_error", "mean_absolute_error", "normalized_rms_error"]


def _validate_pair(truth, imputed):
    truth = as_float_vector(truth, name="truth")
    imputed = as_float_vector(imputed, name="imputed", allow_nan=True)
    check_consistent_length(truth, imputed, names=("truth", "imputed"))
    if np.any(np.isnan(imputed)):
        raise DataError("imputed values contain NaN; the imputer left cells unfilled")
    return truth, imputed


def rms_error(truth, imputed) -> float:
    """Root-mean-square imputation error (lower is better)."""
    truth, imputed = _validate_pair(truth, imputed)
    return float(np.sqrt(np.mean((truth - imputed) ** 2)))


def mean_absolute_error(truth, imputed) -> float:
    """Mean absolute imputation error."""
    truth, imputed = _validate_pair(truth, imputed)
    return float(np.mean(np.abs(truth - imputed)))


def normalized_rms_error(truth, imputed) -> float:
    """RMS error divided by the truth's standard deviation (scale free).

    Returns the raw RMS when the truth is constant (zero deviation).
    """
    truth, imputed = _validate_pair(truth, imputed)
    rms = float(np.sqrt(np.mean((truth - imputed) ** 2)))
    std = float(np.std(truth))
    if std == 0.0:
        return rms
    return rms / std
