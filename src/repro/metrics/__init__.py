"""Evaluation metrics: imputation error, dataset profiling, clustering, classification."""

from .classification import accuracy_score, confusion_matrix, f1_score, precision_recall_f1
from .clustering import contingency_matrix, normalized_mutual_information, purity_score
from .determination import heterogeneity_r2, r_squared, sparsity_r2
from .error import mean_absolute_error, normalized_rms_error, rms_error

__all__ = [
    "rms_error",
    "mean_absolute_error",
    "normalized_rms_error",
    "r_squared",
    "sparsity_r2",
    "heterogeneity_r2",
    "purity_score",
    "normalized_mutual_information",
    "contingency_matrix",
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "precision_recall_f1",
]
