"""Clustering quality metrics for the application study (Section VI-D1).

The paper measures how imputation affects a downstream k-means clustering by
comparing the clusters obtained on imputed data against the "truth" clusters
obtained on the original complete data, using *purity*.  Normalised mutual
information is provided as a secondary measure.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

__all__ = ["purity_score", "normalized_mutual_information", "contingency_matrix"]


def _validate_labels(truth, predicted):
    truth = np.asarray(truth).ravel()
    predicted = np.asarray(predicted).ravel()
    if truth.shape[0] == 0:
        raise DataError("label arrays must be non-empty")
    if truth.shape[0] != predicted.shape[0]:
        raise DataError(
            f"label arrays must have the same length, got {truth.shape[0]} and {predicted.shape[0]}"
        )
    return truth, predicted


def contingency_matrix(truth, predicted) -> np.ndarray:
    """Counts of co-occurrences between truth classes and predicted clusters."""
    truth, predicted = _validate_labels(truth, predicted)
    truth_values, truth_codes = np.unique(truth, return_inverse=True)
    pred_values, pred_codes = np.unique(predicted, return_inverse=True)
    matrix = np.zeros((truth_values.shape[0], pred_values.shape[0]), dtype=int)
    np.add.at(matrix, (truth_codes, pred_codes), 1)
    return matrix


def purity_score(truth, predicted) -> float:
    """Cluster purity: each cluster votes for its most common truth class.

    ``purity = (1/N) Σ_clusters max_class |cluster ∩ class|`` — the measure
    used in Table VII of the paper (higher is better).
    """
    matrix = contingency_matrix(truth, predicted)
    return float(matrix.max(axis=0).sum() / matrix.sum())


def normalized_mutual_information(truth, predicted) -> float:
    """NMI between the truth classes and predicted clusters (arithmetic mean norm)."""
    matrix = contingency_matrix(truth, predicted).astype(float)
    total = matrix.sum()
    joint = matrix / total
    row_marginal = joint.sum(axis=1, keepdims=True)
    col_marginal = joint.sum(axis=0, keepdims=True)

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (row_marginal @ col_marginal)
        log_ratio = np.where(joint > 0, np.log(ratio), 0.0)
    mutual_information = float(np.sum(joint * log_ratio))

    def entropy(marginal: np.ndarray) -> float:
        marginal = marginal[marginal > 0]
        return float(-np.sum(marginal * np.log(marginal)))

    h_truth = entropy(row_marginal.ravel())
    h_pred = entropy(col_marginal.ravel())
    denominator = 0.5 * (h_truth + h_pred)
    if denominator == 0.0:
        return 1.0
    return mutual_information / denominator
