"""Recursive-descent parser of the repro query language.

Grammar (keywords case-insensitive, ``--`` comments, ``;`` terminators)::

    script     := statement (";" statement)* [";"]
    statement  := ["EXPLAIN"] select | append | update | delete | "IMPUTE"
    select     := "SELECT" select_list [where] [order] [limit]
    select_list:= "*" | item ("," item)*
    item       := aggregate | IDENT
    aggregate  := ("COUNT"|"AVG"|"MIN"|"MAX") "(" ("*" | IDENT) ")"
    where      := "WHERE" or_expr
    or_expr    := and_expr ("OR" and_expr)*
    and_expr   := not_expr ("AND" not_expr)*
    not_expr   := "NOT" not_expr | "(" or_expr ")" | comparison
    comparison := operand op operand
    op         := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    operand    := IDENT | signed_number
    order      := "ORDER" "BY" IDENT ["ASC"|"DESC"] ("," IDENT [..])*
    limit      := "LIMIT" integer
    append     := "APPEND" ["VALUES"] row ("," row)*
    row        := "(" cell ("," cell)* ")"
    cell       := signed_number | "?" | "NULL" | "NAN"
    update     := "UPDATE" integer "SET" IDENT "=" signed_number ("," ..)*
    delete     := "DELETE" integer ("," integer)*

``?``/``NULL``/``NAN`` mark missing cells and are legal **only** inside
``APPEND`` rows — a NaN is not comparable, so the same markers inside a
``WHERE`` clause are a syntax error (missing cells impute on demand before
any predicate sees them).  ``COUNT(*)`` is the only star aggregate.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

from ..exceptions import QuerySyntaxError
from .lexer import Token, tokenize
from .nodes import (
    Aggregate,
    And,
    AppendStatement,
    ColumnRef,
    Comparison,
    DeleteStatement,
    ImputeStatement,
    Literal,
    Not,
    Or,
    OrderKey,
    SelectStatement,
    Statement,
    UpdateStatement,
)

__all__ = ["parse_statement", "parse_script", "COMPARATORS", "STATEMENT_KEYWORDS"]

#: Recognised comparison operators (``<>`` normalises to ``!=``).
COMPARATORS = ("=", "!=", "<>", "<", "<=", ">", ">=")

#: Keywords that may open a statement — the trace-format sniffer of the
#: replay CLI uses this set to tell a statement trace from legacy CSV.
STATEMENT_KEYWORDS = frozenset(
    {"SELECT", "EXPLAIN", "APPEND", "UPDATE", "DELETE", "IMPUTE"}
)

_AGGREGATES = ("COUNT", "AVG", "MIN", "MAX")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # Token plumbing ---------------------------------------------------- #
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None,
                what: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        token = self._current
        wanted = what or (text if text is not None else kind.lower())
        got = "end of statement" if token.kind == "EOF" else repr(token.text)
        raise QuerySyntaxError(
            f"expected {wanted}, got {got} at offset {token.position}"
        )

    # Terminals --------------------------------------------------------- #
    def _signed_number(self, *, what: str = "a number") -> float:
        sign = 1.0
        token = self._accept("SYMBOL", "-") or self._accept("SYMBOL", "+")
        if token is not None and token.text == "-":
            sign = -1.0
        number = self._expect("NUMBER", what=what)
        return sign * float(number.text)

    def _integer(self, *, what: str) -> int:
        token = self._expect("NUMBER", what=what)
        try:
            value = int(token.text)
        except ValueError:
            raise QuerySyntaxError(
                f"{what} must be an integer, got {token.text!r} at offset "
                f"{token.position}"
            )
        return value

    def _identifier(self, *, what: str = "an attribute name") -> str:
        return self._expect("IDENT", what=what).text

    # Statements -------------------------------------------------------- #
    def parse_script(self) -> List[Statement]:
        statements: List[Statement] = []
        while self._accept("SYMBOL", ";"):
            pass
        while not self._check("EOF"):
            statements.append(self._statement())
            if not self._accept("SYMBOL", ";") and not self._check("EOF"):
                token = self._current
                raise QuerySyntaxError(
                    f"expected ';' after the statement, got {token.text!r} "
                    f"at offset {token.position}"
                )
            while self._accept("SYMBOL", ";"):
                pass
        return statements

    def _statement(self) -> Statement:
        token = self._current
        if token.kind != "KEYWORD":
            raise QuerySyntaxError(
                f"a statement must start with one of "
                f"{sorted(STATEMENT_KEYWORDS)}, got {token.text!r} at "
                f"offset {token.position}"
            )
        if token.text == "EXPLAIN":
            self._advance()
            self._expect("KEYWORD", "SELECT", what="SELECT after EXPLAIN")
            return self._select(explain=True)
        if token.text == "SELECT":
            self._advance()
            return self._select(explain=False)
        if token.text == "APPEND":
            self._advance()
            return self._append()
        if token.text == "UPDATE":
            self._advance()
            return self._update()
        if token.text == "DELETE":
            self._advance()
            return self._delete()
        if token.text == "IMPUTE":
            self._advance()
            return ImputeStatement()
        raise QuerySyntaxError(
            f"a statement must start with one of "
            f"{sorted(STATEMENT_KEYWORDS)}, got {token.text!r} at offset "
            f"{token.position}"
        )

    # SELECT ------------------------------------------------------------ #
    def _select(self, *, explain: bool) -> SelectStatement:
        columns: Optional[Tuple[Union[ColumnRef, Aggregate], ...]]
        if self._accept("SYMBOL", "*"):
            columns = None
        else:
            items: List[Union[ColumnRef, Aggregate]] = [self._select_item()]
            while self._accept("SYMBOL", ","):
                items.append(self._select_item())
            columns = tuple(items)
        where = None
        if self._accept("KEYWORD", "WHERE"):
            where = self._or_expr()
        order_by: Tuple[OrderKey, ...] = ()
        if self._accept("KEYWORD", "ORDER"):
            self._expect("KEYWORD", "BY", what="BY after ORDER")
            keys = [self._order_key()]
            while self._accept("SYMBOL", ","):
                keys.append(self._order_key())
            order_by = tuple(keys)
        limit = None
        if self._accept("KEYWORD", "LIMIT"):
            limit = self._integer(what="the LIMIT count")
            if limit < 0:
                raise QuerySyntaxError(f"LIMIT must be >= 0, got {limit}")
        return SelectStatement(
            columns=columns,
            where=where,
            order_by=order_by,
            limit=limit,
            explain=explain,
        )

    def _select_item(self) -> Union[ColumnRef, Aggregate]:
        token = self._current
        if token.kind == "KEYWORD" and token.text in _AGGREGATES:
            self._advance()
            func = token.text.lower()
            self._expect("SYMBOL", "(", what=f"'(' after {func}")
            if self._accept("SYMBOL", "*"):
                if func != "count":
                    raise QuerySyntaxError(
                        f"only COUNT may take '*', not {func.upper()} "
                        f"(at offset {token.position})"
                    )
                attribute = None
            else:
                attribute = self._identifier()
            self._expect("SYMBOL", ")", what=f"')' closing {func}(...)")
            return Aggregate(func, attribute)
        return ColumnRef(self._identifier(what="an attribute or aggregate"))

    def _order_key(self) -> OrderKey:
        attribute = self._identifier()
        descending = False
        if self._accept("KEYWORD", "DESC"):
            descending = True
        else:
            self._accept("KEYWORD", "ASC")
        return OrderKey(attribute, descending)

    # WHERE ------------------------------------------------------------- #
    def _or_expr(self):
        items = [self._and_expr()]
        while self._accept("KEYWORD", "OR"):
            items.append(self._and_expr())
        return items[0] if len(items) == 1 else Or(tuple(items))

    def _and_expr(self):
        items = [self._not_expr()]
        while self._accept("KEYWORD", "AND"):
            items.append(self._not_expr())
        return items[0] if len(items) == 1 else And(tuple(items))

    def _not_expr(self):
        if self._accept("KEYWORD", "NOT"):
            return Not(self._not_expr())
        if self._accept("SYMBOL", "("):
            inner = self._or_expr()
            self._expect("SYMBOL", ")", what="')' closing the group")
            return inner
        return self._comparison()

    def _comparison(self) -> Comparison:
        left = self._operand()
        token = self._current
        if token.kind != "SYMBOL" or token.text not in COMPARATORS:
            got = "end of statement" if token.kind == "EOF" else repr(token.text)
            raise QuerySyntaxError(
                f"expected a comparison operator "
                f"({', '.join(COMPARATORS)}), got {got} at offset "
                f"{token.position}"
            )
        self._advance()
        op = "!=" if token.text == "<>" else token.text
        return Comparison(left, op, self._operand())

    def _operand(self):
        token = self._current
        if token.kind == "IDENT":
            return ColumnRef(self._advance().text)
        if token.kind == "KEYWORD" and token.text in ("NULL", "NAN"):
            raise QuerySyntaxError(
                f"{token.text} is not comparable at offset {token.position}; "
                f"missing cells are imputed on demand before predicates run"
            )
        if self._check("SYMBOL", "?"):
            raise QuerySyntaxError(
                f"'?' is not comparable at offset {token.position}; missing "
                f"cells are imputed on demand before predicates run"
            )
        return Literal(self._signed_number(what="an attribute or number"))

    # Data statements ---------------------------------------------------- #
    def _append(self) -> AppendStatement:
        self._accept("KEYWORD", "VALUES")
        rows = [self._row()]
        while self._accept("SYMBOL", ","):
            rows.append(self._row())
        width = len(rows[0])
        for i, row in enumerate(rows):
            if len(row) != width:
                raise QuerySyntaxError(
                    f"APPEND rows must have equal width; row 0 has {width} "
                    f"cells, row {i} has {len(row)}"
                )
        return AppendStatement(tuple(rows))

    def _row(self) -> Tuple[float, ...]:
        self._expect("SYMBOL", "(", what="'(' opening a value row")
        cells = [self._cell()]
        while self._accept("SYMBOL", ","):
            cells.append(self._cell())
        self._expect("SYMBOL", ")", what="')' closing the value row")
        return tuple(cells)

    def _cell(self) -> float:
        if self._accept("SYMBOL", "?"):
            return math.nan
        if self._accept("KEYWORD", "NULL") or self._accept("KEYWORD", "NAN"):
            return math.nan
        return self._signed_number(what="a number or missing marker")

    def _update(self) -> UpdateStatement:
        index = self._integer(what="the UPDATE row index")
        self._expect("KEYWORD", "SET", what="SET after the row index")
        assignments = [self._assignment()]
        while self._accept("SYMBOL", ","):
            assignments.append(self._assignment())
        return UpdateStatement(index, tuple(assignments))

    def _assignment(self) -> Tuple[str, float]:
        name = self._identifier()
        self._expect("SYMBOL", "=", what="'=' in the assignment")
        if (
            self._check("SYMBOL", "?")
            or self._check("KEYWORD", "NULL")
            or self._check("KEYWORD", "NAN")
        ):
            token = self._current
            raise QuerySyntaxError(
                f"UPDATE values must be complete numbers at offset "
                f"{token.position}; use IMPUTE to fill pending tuples"
            )
        return name, self._signed_number(what="the assigned value")

    def _delete(self) -> DeleteStatement:
        indices = [self._integer(what="a DELETE row index")]
        while self._accept("SYMBOL", ","):
            indices.append(self._integer(what="a DELETE row index"))
        return DeleteStatement(tuple(indices))


def parse_script(text: str) -> List[Statement]:
    """Parse ``text`` into a list of statements (``;``-separated)."""
    return _Parser(tokenize(text)).parse_script()


def parse_statement(text: str) -> Statement:
    """Parse exactly one statement out of ``text``."""
    statements = parse_script(text)
    if not statements:
        raise QuerySyntaxError("empty query")
    if len(statements) > 1:
        raise QuerySyntaxError(
            f"expected one statement, got {len(statements)}; send statements "
            f"one at a time (or use a trace file)"
        )
    return statements[0]
