"""repro.query — a typed query language over live imputation sessions.

The relational layer the ROADMAP calls for: a tokenizer →
recursive-descent parser → AST → planner → executor pipeline evaluating
``SELECT`` / ``WHERE`` / ``ORDER BY`` / ``LIMIT`` and simple aggregates
(``count``/``avg``/``min``/``max``) over a session's relation, where
**referencing a missing cell imputes it on demand** — in one batch
through the engine's vectorized kernels, bit-identical to pre-imputing
the touched rows and then querying — and every imputed cell carries
provenance (method, neighbours, per-neighbour ℓ, combiner weights,
confidence, trace id) surfaced by ``EXPLAIN`` and the serve loop's
``provenance`` wire field.

The same statement grammar doubles as the trace format replacing the
legacy CSV ``--ops`` lifecycle files: ``APPEND`` (rows may carry ``?``
missing markers), ``UPDATE``, ``DELETE`` and ``IMPUTE`` (promote the
pending incomplete tuples into the store) ride alongside queries in one
script, driven by :func:`execute_script`, the replay CLI, the scenario
replayer, and the interactive REPL (``python -m repro repl``).
"""

from __future__ import annotations

from .executor import (
    QueryResult,
    StatementResult,
    execute_query,
    execute_script,
)
from .lexer import KEYWORDS, MAX_QUERY_LENGTH, Token, tokenize
from .nodes import (
    Aggregate,
    And,
    AppendStatement,
    ColumnRef,
    Comparison,
    DeleteStatement,
    ImputeStatement,
    Literal,
    Not,
    Or,
    OrderKey,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .parser import STATEMENT_KEYWORDS, parse_script, parse_statement
from .planner import QueryPlan, plan_query

__all__ = [
    "tokenize",
    "Token",
    "KEYWORDS",
    "MAX_QUERY_LENGTH",
    "STATEMENT_KEYWORDS",
    "parse_statement",
    "parse_script",
    "plan_query",
    "QueryPlan",
    "execute_query",
    "execute_script",
    "QueryResult",
    "StatementResult",
    "Statement",
    "SelectStatement",
    "AppendStatement",
    "UpdateStatement",
    "DeleteStatement",
    "ImputeStatement",
    "ColumnRef",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Aggregate",
    "OrderKey",
]
