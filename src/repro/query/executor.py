"""Query executor: impute-on-demand evaluation over a live session.

Evaluation of a SELECT proceeds in four instrumented phases
(``repro_query_seconds{phase}``, spans nested under the serving request):

1. **parse** — tokenize + parse (skipped when given an AST);
2. **plan** — resolve attributes against the engine schema and analyse
   which rows the query *touches*: a row is touched iff it is missing a
   cell in a referenced attribute (select list, ``WHERE``, ``ORDER BY``);
3. **impute** — the touched rows are imputed **in one batch** through
   :meth:`~repro.online.engine.OnlineImputationEngine.impute_batch` (the
   vectorized kernels — never row-at-a-time), filling *all* their missing
   cells, exactly what pre-imputing those rows and then querying would
   compute (bit-identical under the vectorized backend, rtol 1e-9
   otherwise).  Every imputed cell's provenance (method, neighbours,
   per-neighbour ℓ, combiner weights, confidence, trace id) is captured
   unless the ``query_provenance`` config knob is off;
4. **evaluate** — filter, stable multi-key ordering, limit, and the
   projection or aggregates, all plain numpy over the materialised block.

The executor never mutates the session: on-demand imputations are
query-local (the store and the pending side-store are unchanged).  Data
statements (``APPEND``/``UPDATE``/``DELETE``/``IMPUTE``) route through
``session.mutate`` so the write-ahead log sees them like any other
mutation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import resolve_query_provenance
from ..exceptions import (
    QueryError,
    QuotaExceededError,
    UnsupportedOperationError,
)
from ..obs import count_query_rows, get_tracer, query_phase
from .nodes import (
    And,
    AppendStatement,
    ColumnRef,
    Comparison,
    DeleteStatement,
    Expression,
    ImputeStatement,
    Not,
    Or,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .parser import parse_statement
from .planner import plan_query

__all__ = ["QueryResult", "StatementResult", "execute_query", "execute_script"]


@dataclass
class QueryResult:
    """The outcome of one SELECT (or EXPLAIN SELECT)."""

    kind: str  # "select" | "explain"
    columns: List[str]
    #: Result rows, ``(r, c)`` floats (aggregates produce one row).
    rows: np.ndarray
    #: Source row index of each result row (``[]`` for aggregates).
    #: Indices < ``n_tuples`` address the complete store; larger ones are
    #: pending tuples (``index - n_tuples`` into the side-store).
    row_indices: List[int]
    aggregate: bool
    rows_scanned: int
    rows_imputed: int
    #: One dict per cell imputed on demand (all missing cells of every
    #: touched row), re-addressed to source row indices.
    provenance: List[Dict[str, object]] = field(default_factory=list)
    #: The resolved plan (:meth:`QueryPlan.describe` + runtime counts).
    plan: Dict[str, object] = field(default_factory=dict)


@dataclass
class StatementResult:
    """The outcome of one data statement (append/update/delete/impute)."""

    kind: str
    detail: Dict[str, object] = field(default_factory=dict)


def _engine_of(session):
    """The imputation engine behind ``session`` (itself, if engine-like)."""
    engine = getattr(session, "engine", session)
    if not hasattr(engine, "impute_batch") or not hasattr(
        engine, "store_relation"
    ):
        raise UnsupportedOperationError(
            "queries need an online session (method 'IIM', mode 'online'); "
            "this session does not expose an imputation engine"
        )
    return engine


# --------------------------------------------------------------------------- #
# WHERE evaluation
# --------------------------------------------------------------------------- #
_COMPARATORS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _operand_values(operand, matrix: np.ndarray, schema):
    if isinstance(operand, ColumnRef):
        return matrix[:, schema.index_of(operand.name)]
    return float(operand.value)  # scalar: numpy broadcasts comparisons


def _evaluate_filter(expr: Expression, matrix: np.ndarray, schema) -> np.ndarray:
    if isinstance(expr, Comparison):
        left = _operand_values(expr.left, matrix, schema)
        right = _operand_values(expr.right, matrix, schema)
        result = _COMPARATORS[expr.op](left, right)
        if not isinstance(result, np.ndarray):  # literal-vs-literal
            result = np.full(matrix.shape[0], bool(result))
        return result
    if isinstance(expr, And):
        result = _evaluate_filter(expr.items[0], matrix, schema)
        for item in expr.items[1:]:
            result = result & _evaluate_filter(item, matrix, schema)
        return result
    if isinstance(expr, Or):
        result = _evaluate_filter(expr.items[0], matrix, schema)
        for item in expr.items[1:]:
            result = result | _evaluate_filter(item, matrix, schema)
        return result
    if isinstance(expr, Not):
        return ~_evaluate_filter(expr.item, matrix, schema)
    raise QueryError(f"unsupported filter node {type(expr).__name__}")


def _order_rows(
    matrix: np.ndarray,
    selected: np.ndarray,
    order_by: Sequence[Tuple[int, bool]],
) -> np.ndarray:
    """Stable multi-key ordering: apply keys right-to-left, each stable."""
    order = selected
    for index, descending in reversed(list(order_by)):
        keys = matrix[order, index]
        if descending:
            keys = -keys
        order = order[np.argsort(keys, kind="stable")]
    return order


def _aggregate_row(
    matrix: np.ndarray,
    selected: np.ndarray,
    aggregates: Sequence[Tuple[str, Optional[int]]],
) -> np.ndarray:
    values: List[float] = []
    for func, index in aggregates:
        if func == "count":
            # After on-demand imputation no referenced cell is missing, so
            # count(attr) == count(*) == the filtered row count.
            values.append(float(selected.size))
            continue
        column = matrix[selected, index]
        if column.size == 0:
            values.append(float("nan"))
        elif func == "avg":
            values.append(float(column.mean()))
        elif func == "min":
            values.append(float(column.min()))
        else:
            values.append(float(column.max()))
    return np.array([values], dtype=float)


# --------------------------------------------------------------------------- #
# SELECT execution
# --------------------------------------------------------------------------- #
def _execute_select(
    session,
    statement: SelectStatement,
    *,
    max_impute_rows: Optional[int],
    provenance: Optional[bool],
) -> QueryResult:
    engine = _engine_of(session)
    with query_phase("plan"):
        relation = engine.store_relation(include_pending=True)
        plan = plan_query(statement, relation.schema)
        matrix = np.array(relation.raw, dtype=float)
        mask = np.isnan(matrix)
        referenced = np.array(plan.referenced, dtype=int)
        if referenced.size and mask.any():
            touched = np.flatnonzero(mask[:, referenced].any(axis=1))
        else:
            touched = np.empty(0, dtype=int)
    count_query_rows("scanned", matrix.shape[0])

    if max_impute_rows is not None and touched.size > max_impute_rows:
        raise QuotaExceededError(
            f"query touches {touched.size} incomplete rows, exceeding the "
            f"per-request quota of {max_impute_rows} imputed rows; narrow "
            f"the query"
        )

    cells: List[Dict[str, object]] = []
    if touched.size:
        collect = resolve_query_provenance(provenance)
        with query_phase("impute"):
            if collect:
                imputed, cells = engine.impute_batch(
                    matrix[touched], collect_provenance=True
                )
            else:
                imputed = engine.impute_batch(matrix[touched])
            matrix[touched] = imputed
        count_query_rows("imputed", int(touched.size))
        trace_id = get_tracer().current_trace_id
        for cell in cells:
            # impute_batch addresses rows within the touched block; map
            # back to source row indices and stamp the request trace.
            cell["row"] = int(touched[cell["row"]])
            cell["trace_id"] = trace_id

    with query_phase("evaluate"):
        if statement.where is None:
            selected = np.arange(matrix.shape[0])
        else:
            keep = _evaluate_filter(statement.where, matrix, plan.schema)
            selected = np.flatnonzero(keep)
        if plan.is_aggregate:
            rows = _aggregate_row(matrix, selected, plan.aggregates)
            if plan.limit is not None:
                rows = rows[: plan.limit]
            row_indices: List[int] = []
        else:
            order = _order_rows(matrix, selected, plan.order_by)
            if plan.limit is not None:
                order = order[: plan.limit]
            rows = matrix[np.ix_(order, np.array(plan.projection, dtype=int))]
            row_indices = order.tolist()

    describe = plan.describe()
    describe.update(
        rows_scanned=int(matrix.shape[0]),
        rows_touched=int(touched.size),
        cells_imputed=len(cells) if cells else int(mask[touched].sum()),
    )
    return QueryResult(
        kind="explain" if statement.explain else "select",
        columns=list(plan.output_names),
        rows=rows,
        row_indices=row_indices,
        aggregate=plan.is_aggregate,
        rows_scanned=int(matrix.shape[0]),
        rows_imputed=int(touched.size),
        provenance=cells,
        plan=describe,
    )


# --------------------------------------------------------------------------- #
# Data statements
# --------------------------------------------------------------------------- #
def _execute_data(session, statement: Statement) -> StatementResult:
    # Imported here, not at module top: repro.api imports this package for
    # the serve loop's query command, so the reverse import must wait
    # until both packages are fully initialised.
    from ..api.messages import MutationOp

    engine = _engine_of(session)
    if isinstance(statement, AppendStatement):
        rows = np.array(statement.rows, dtype=float)
        op = MutationOp.append(rows)
        detail = {
            "rows_appended": int(rows.shape[0]),
            "rows_incomplete": int(np.isnan(rows).any(axis=1).sum()),
        }
    elif isinstance(statement, UpdateStatement):
        n_tuples = engine.n_tuples
        if not 0 <= statement.index < n_tuples:
            raise QueryError(
                f"UPDATE addresses complete store rows [0, {n_tuples}), got "
                f"{statement.index} (pending tuples cannot be updated; "
                f"IMPUTE promotes them first)"
            )
        row = np.array(engine.store_relation().raw[statement.index], dtype=float)
        schema = engine.schema
        for name, value in statement.assignments:
            if name not in schema:
                raise QueryError(
                    f"unknown attribute {name!r}; the schema has "
                    f"{list(schema.attributes)}"
                )
            row[schema.index_of(name)] = value
        op = MutationOp.update(statement.index, row)
        detail = {"index": statement.index, "row": [float(v) for v in row]}
    elif isinstance(statement, DeleteStatement):
        op = MutationOp.delete(list(statement.indices))
        detail = {"rows_deleted": len(statement.indices)}
    elif isinstance(statement, ImputeStatement):
        op = MutationOp.promote()
        detail = {"rows_promoted": int(engine.n_pending)}
    else:
        raise QueryError(f"unsupported statement {type(statement).__name__}")

    if hasattr(session, "mutate"):
        session.mutate([op])
    elif op.kind == "append":
        engine.append(op.rows, allow_incomplete=True)
    elif op.kind == "delete":
        engine.delete(op.indices)
    elif op.kind == "update":
        engine.update(op.index, op.row)
    else:
        engine.promote_pending()
    detail["n_pending"] = int(engine.n_pending)
    return StatementResult(kind=statement.__class__.__name__
                           .replace("Statement", "").lower(), detail=detail)


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
# Prepared-statement cache: serving workloads repeat the same statement
# text, and re-tokenizing it would otherwise dominate selective queries.
# Cached ASTs are shared across calls — the executor treats them as
# read-only.  Parse errors are never cached (the raise happens first).
_PARSE_CACHE: "OrderedDict[str, Statement]" = OrderedDict()
_PARSE_CACHE_LIMIT = 128
_PARSE_CACHE_LOCK = threading.Lock()


def _parse_cached(text: str) -> Statement:
    with _PARSE_CACHE_LOCK:
        statement = _PARSE_CACHE.get(text)
        if statement is not None:
            _PARSE_CACHE.move_to_end(text)
            return statement
    with query_phase("parse"):
        statement = parse_statement(text)
    with _PARSE_CACHE_LOCK:
        _PARSE_CACHE[text] = statement
        while len(_PARSE_CACHE) > _PARSE_CACHE_LIMIT:
            _PARSE_CACHE.popitem(last=False)
    return statement


def execute_query(
    session,
    statement: Union[str, Statement],
    *,
    max_impute_rows: Optional[int] = None,
    provenance: Optional[bool] = None,
) -> Union[QueryResult, StatementResult]:
    """Execute one statement (text or AST) against a live session.

    ``max_impute_rows`` is the admission quota of the serve loop: a query
    that would impute more touched rows is rejected with a typed
    :class:`~repro.exceptions.QuotaExceededError` *before* any kernel
    runs.  ``provenance`` overrides the ``query_provenance`` config knob
    for this call.
    """
    if isinstance(statement, str):
        statement = _parse_cached(statement)
    if isinstance(statement, SelectStatement):
        return _execute_select(
            session,
            statement,
            max_impute_rows=max_impute_rows,
            provenance=provenance,
        )
    return _execute_data(session, statement)


def execute_script(
    session,
    text: str,
    *,
    max_impute_rows: Optional[int] = None,
    provenance: Optional[bool] = None,
) -> List[Union[QueryResult, StatementResult]]:
    """Execute every ``;``-separated statement of ``text``, in order."""
    from .parser import parse_script

    with query_phase("parse"):
        statements = parse_script(text)
    return [
        execute_query(
            session,
            statement,
            max_impute_rows=max_impute_rows,
            provenance=provenance,
        )
        for statement in statements
    ]
