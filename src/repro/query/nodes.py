"""AST node types of the repro query language.

Two families of statements share one grammar:

* **Queries** — :class:`SelectStatement` (optionally wrapped by
  ``EXPLAIN``): projection or aggregates over a session's relation with
  ``WHERE`` / ``ORDER BY`` / ``LIMIT``, where referencing a missing cell
  imputes it on demand;
* **Data statements** — :class:`AppendStatement` (rows may carry missing
  cells), :class:`UpdateStatement`, :class:`DeleteStatement` and
  :class:`ImputeStatement` (promote the pending incomplete tuples), the
  verbs a trace file mixes with queries.

Every node renders back to canonical statement text via ``str()`` — the
``EXPLAIN`` plan uses it to echo the filter it evaluated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

__all__ = [
    "ColumnRef",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Aggregate",
    "OrderKey",
    "SelectStatement",
    "AppendStatement",
    "UpdateStatement",
    "DeleteStatement",
    "ImputeStatement",
    "Statement",
    "Expression",
]


def _render_value(value: float) -> str:
    if math.isnan(value):
        return "?"
    rendered = repr(float(value))
    return rendered[:-2] if rendered.endswith(".0") else rendered


# --------------------------------------------------------------------------- #
# WHERE expressions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnRef:
    """A reference to a named attribute of the relation."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal:
    """A numeric literal."""

    value: float

    def __str__(self) -> str:
        return _render_value(self.value)


Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with one of ``= != <> < <= > >=``."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And:
    items: Tuple["Expression", ...]

    def __str__(self) -> str:
        return "(" + " AND ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Or:
    items: Tuple["Expression", ...]

    def __str__(self) -> str:
        return "(" + " OR ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Not:
    item: "Expression"

    def __str__(self) -> str:
        return f"NOT {self.item}"


Expression = Union[Comparison, And, Or, Not]


# --------------------------------------------------------------------------- #
# SELECT
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Aggregate:
    """``count/avg/min/max(attr)`` — ``attribute=None`` is ``COUNT(*)``."""

    func: str  # "count" | "avg" | "min" | "max"
    attribute: Optional[str]

    def __str__(self) -> str:
        return f"{self.func}({self.attribute if self.attribute else '*'})"


@dataclass(frozen=True)
class OrderKey:
    attribute: str
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.attribute} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class SelectStatement:
    """A query: ``columns=None`` means ``SELECT *``; a select list is
    either all plain columns or all aggregates (there is no GROUP BY)."""

    columns: Optional[Tuple[Union[ColumnRef, Aggregate], ...]] = None
    where: Optional[Expression] = None
    order_by: Tuple[OrderKey, ...] = ()
    limit: Optional[int] = None
    explain: bool = False

    def __str__(self) -> str:
        items = (
            "*"
            if self.columns is None
            else ", ".join(str(c) for c in self.columns)
        )
        parts = [f"SELECT {items}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(str(k) for k in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        text = " ".join(parts)
        return ("EXPLAIN " if self.explain else "") + text + ";"


# --------------------------------------------------------------------------- #
# Data statements
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AppendStatement:
    """``APPEND (v, ?, v), ...;`` — ``NaN`` entries mark missing cells."""

    rows: Tuple[Tuple[float, ...], ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(
            "(" + ", ".join(_render_value(v) for v in row) + ")"
            for row in self.rows
        )
        return f"APPEND {rendered};"


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE <index> SET attr = value, ...;`` (complete values only)."""

    index: int = 0
    assignments: Tuple[Tuple[str, float], ...] = ()

    def __str__(self) -> str:
        sets = ", ".join(
            f"{name} = {_render_value(value)}"
            for name, value in self.assignments
        )
        return f"UPDATE {self.index} SET {sets};"


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE <index>, ...;`` — store indices of the rows to remove."""

    indices: Tuple[int, ...] = ()

    def __str__(self) -> str:
        return "DELETE " + ", ".join(str(i) for i in self.indices) + ";"


@dataclass(frozen=True)
class ImputeStatement:
    """``IMPUTE;`` — impute the pending incomplete tuples and move them
    into the store (the ``promote`` mutation)."""

    def __str__(self) -> str:
        return "IMPUTE;"


Statement = Union[
    SelectStatement,
    AppendStatement,
    UpdateStatement,
    DeleteStatement,
    ImputeStatement,
]
