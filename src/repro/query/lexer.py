"""Tokenizer of the repro query language.

Statements are sequences of keywords, attribute identifiers, numeric
literals, comparison operators and punctuation, terminated by ``;`` with
``--`` line comments.  The lexer is a single left-to-right scan producing
:class:`Token` objects that carry their source offset, so parse errors can
point at the typo (``at offset 17``).

Keywords are case-insensitive (``select`` == ``SELECT``); identifiers keep
their exact spelling because relation schemas are case-sensitive.  There
are no string literals — every cell of a relation is a float — so a quote
character is a syntax error, and the only "missing" markers (``?``,
``null``, ``nan``) are data placeholders that the parser accepts inside
``APPEND`` value rows alone.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from ..exceptions import QuerySyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS", "MAX_QUERY_LENGTH"]

#: Hard cap on the length of one query text, an admission bound of the
#: parser itself: anything longer is rejected with a typed syntax error
#: before any token is built, so an oversized statement can never anchor
#: a memory blow-up (the serve loop's line-size cap is the outer wall).
MAX_QUERY_LENGTH = 16384

#: Reserved words (matched case-insensitively; tokens carry the upper-case
#: spelling).  ``NULL``/``NAN`` are the spelled-out missing markers.
KEYWORDS = frozenset(
    {
        "SELECT", "EXPLAIN", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT",
        "AND", "OR", "NOT",
        "COUNT", "AVG", "MIN", "MAX",
        "APPEND", "VALUES", "UPDATE", "SET", "DELETE", "IMPUTE",
        "NULL", "NAN",
    }
)

#: Multi-character operators first so ``<=`` never lexes as ``<`` ``=``.
_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ";", "*",
            "?", "-", "+")

_NUMBER = re.compile(r"(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?")
_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass(frozen=True)
class Token:
    """One lexeme: its kind, exact text, and source offset."""

    kind: str  # "KEYWORD" | "IDENT" | "NUMBER" | "SYMBOL" | "EOF"
    text: str
    position: int

    def __repr__(self) -> str:  # compact parse-error payloads
        return f"{self.kind}({self.text!r}@{self.position})"


def tokenize(text: str) -> List[Token]:
    """Scan ``text`` into a token list ending with an ``EOF`` token.

    Raises :class:`~repro.exceptions.QuerySyntaxError` on any character
    outside the language (including control bytes and quotes) and on
    queries longer than :data:`MAX_QUERY_LENGTH`.
    """
    if not isinstance(text, str):
        raise QuerySyntaxError(
            f"a query must be a string, got {type(text).__name__}"
        )
    if len(text) > MAX_QUERY_LENGTH:
        raise QuerySyntaxError(
            f"query of {len(text)} characters exceeds the "
            f"{MAX_QUERY_LENGTH}-character limit; split the statement"
        )
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        match = _NUMBER.match(text, i)
        if match and ch not in "+-":  # signs are tokens; parser folds them
            tokens.append(Token("NUMBER", match.group(), i))
            i = match.end()
            continue
        match = _WORD.match(text, i)
        if match:
            word = match.group()
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = match.end()
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("SYMBOL", symbol, i))
                i += len(symbol)
                break
        else:
            raise QuerySyntaxError(
                f"unexpected character {ch!r} at offset {i}"
            )
    tokens.append(Token("EOF", "", n))
    return tokens
