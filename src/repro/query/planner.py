"""Query planner: resolve a parsed SELECT against a relation schema.

Planning is pure name/shape analysis — no data is read.  The planner

* resolves every attribute reference to a column index (unknown names are
  a typed :class:`~repro.exceptions.QueryError` listing the schema);
* rejects mixed select lists (plain columns + aggregates — there is no
  ``GROUP BY``) and ``ORDER BY`` on aggregate queries;
* computes the **referenced attribute set** — the columns named anywhere
  in the select list, ``WHERE`` clause or ``ORDER BY`` keys.  The
  executor imputes exactly the rows missing a referenced cell ("touched"
  rows), in one batch; rows missing only unreferenced cells are never
  imputed and their gaps never surface (the projection is a subset of the
  referenced set).

The resulting :class:`QueryPlan` renders to the ``EXPLAIN`` payload via
:meth:`QueryPlan.describe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..data.relation import Schema
from ..exceptions import QueryError
from .nodes import (
    Aggregate,
    And,
    ColumnRef,
    Comparison,
    Expression,
    Not,
    Or,
    SelectStatement,
)

__all__ = ["QueryPlan", "plan_query"]


def _resolve(schema: Schema, name: str) -> int:
    if name not in schema:
        raise QueryError(
            f"unknown attribute {name!r}; the schema has "
            f"{list(schema.attributes)}"
        )
    return schema.index_of(name)


def _expression_columns(expr: Expression, schema: Schema) -> List[int]:
    if isinstance(expr, Comparison):
        return [
            _resolve(schema, operand.name)
            for operand in (expr.left, expr.right)
            if isinstance(operand, ColumnRef)
        ]
    if isinstance(expr, (And, Or)):
        columns: List[int] = []
        for item in expr.items:
            columns.extend(_expression_columns(item, schema))
        return columns
    if isinstance(expr, Not):
        return _expression_columns(expr.item, schema)
    raise QueryError(f"unsupported filter node {type(expr).__name__}")


@dataclass(frozen=True)
class QueryPlan:
    """A resolved SELECT: column indices, order keys and the referenced set."""

    statement: SelectStatement
    schema: Schema
    #: Projection column indices (``None`` for aggregate queries).
    projection: Optional[Tuple[int, ...]]
    #: Output column names (attribute names, or aggregate spellings).
    output_names: Tuple[str, ...]
    #: Resolved aggregates as ``(func, column_index_or_None)`` pairs.
    aggregates: Optional[Tuple[Tuple[str, Optional[int]], ...]]
    #: ``(column_index, descending)`` pairs, applied in order.
    order_by: Tuple[Tuple[int, bool], ...]
    limit: Optional[int]
    #: Sorted indices of every attribute the query references.
    referenced: Tuple[int, ...]

    @property
    def is_aggregate(self) -> bool:
        return self.aggregates is not None

    def describe(self) -> Dict[str, object]:
        """The ``EXPLAIN`` plan payload (JSON-safe)."""
        statement = self.statement
        return {
            "kind": "aggregate" if self.is_aggregate else "scan",
            "columns": list(self.output_names),
            "filter": None if statement.where is None else str(statement.where),
            "order_by": [str(key) for key in statement.order_by],
            "limit": self.limit,
            "referenced_attributes": [
                self.schema.attributes[i] for i in self.referenced
            ],
            "on_demand_imputation": (
                "rows missing a referenced cell are imputed in one batch "
                "through the session engine before evaluation"
            ),
        }


def plan_query(statement: SelectStatement, schema: Schema) -> QueryPlan:
    """Resolve ``statement`` against ``schema`` (raises ``QueryError``)."""
    referenced: set = set()

    projection: Optional[Tuple[int, ...]]
    aggregates: Optional[Tuple[Tuple[str, Optional[int]], ...]]
    if statement.columns is None:
        projection = tuple(range(schema.width))
        output_names = tuple(schema.attributes)
        aggregates = None
        referenced.update(projection)
    else:
        plain = [c for c in statement.columns if isinstance(c, ColumnRef)]
        aggs = [c for c in statement.columns if isinstance(c, Aggregate)]
        if plain and aggs:
            raise QueryError(
                "cannot mix plain attributes and aggregates in one select "
                "list (there is no GROUP BY)"
            )
        if aggs:
            resolved: List[Tuple[str, Optional[int]]] = []
            for agg in aggs:
                if agg.attribute is None:
                    resolved.append((agg.func, None))
                else:
                    index = _resolve(schema, agg.attribute)
                    referenced.add(index)
                    resolved.append((agg.func, index))
            aggregates = tuple(resolved)
            projection = None
            output_names = tuple(str(a) for a in aggs)
        else:
            indices = tuple(_resolve(schema, c.name) for c in plain)
            referenced.update(indices)
            projection = indices
            output_names = tuple(c.name for c in plain)
            aggregates = None

    if statement.where is not None:
        referenced.update(_expression_columns(statement.where, schema))

    if statement.order_by and aggregates is not None:
        raise QueryError(
            "ORDER BY does not apply to an aggregate query (it returns "
            "one row)"
        )
    order_by = tuple(
        (_resolve(schema, key.attribute), key.descending)
        for key in statement.order_by
    )
    referenced.update(index for index, _ in order_by)

    return QueryPlan(
        statement=statement,
        schema=schema,
        projection=projection,
        output_names=output_names,
        aggregates=aggregates,
        order_by=order_by,
        limit=statement.limit,
        referenced=tuple(sorted(referenced)),
    )
