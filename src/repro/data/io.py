"""CSV input/output for relations.

The loaders deliberately avoid pandas: datasets in this reproduction are
plain numerical CSV files (optionally with a header row and a label column),
which numpy handles directly.  Missing cells may be encoded as empty fields,
``?`` (the KEEL/UCI convention) or ``NA``/``NaN``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from ..exceptions import DataError
from .relation import Relation, Schema

__all__ = ["read_csv", "write_csv", "MISSING_TOKENS"]

#: Cell contents interpreted as a missing value when reading CSV files.
MISSING_TOKENS = frozenset({"", "?", "na", "nan", "null", "none"})


def _parse_cell(token: str) -> float:
    token = token.strip()
    if token.lower() in MISSING_TOKENS:
        return float("nan")
    try:
        return float(token)
    except ValueError as exc:
        raise DataError(f"cannot parse numeric cell {token!r}") from exc


def read_csv(
    path: Union[str, Path],
    has_header: bool = True,
    label_column: Optional[Union[int, str]] = None,
    name: str = "",
    delimiter: str = ",",
) -> Relation:
    """Read a numeric CSV file into a :class:`Relation`.

    Parameters
    ----------
    path:
        Path to the CSV file.
    has_header:
        Whether the first row holds attribute names.
    label_column:
        Optional column (index or header name) holding integer class labels;
        it is removed from the numeric attributes and stored as labels.
    name:
        Dataset name recorded on the relation (defaults to the file stem).
    delimiter:
        Field delimiter.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"CSV file not found: {path}")

    with path.open("r", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if row and any(cell.strip() for cell in row)]
    if not rows:
        raise DataError(f"CSV file {path} is empty")

    if has_header:
        header = [cell.strip() for cell in rows[0]]
        body = rows[1:]
    else:
        header = [f"A{i + 1}" for i in range(len(rows[0]))]
        body = rows
    if not body:
        raise DataError(f"CSV file {path} has a header but no data rows")

    widths = {len(row) for row in body}
    if len(widths) != 1:
        raise DataError(f"CSV file {path} has ragged rows with widths {sorted(widths)}")
    width = widths.pop()
    if len(header) != width:
        raise DataError(
            f"CSV file {path}: header has {len(header)} fields but rows have {width}"
        )

    label_index: Optional[int] = None
    if label_column is not None:
        if isinstance(label_column, str):
            if label_column not in header:
                raise DataError(f"label column {label_column!r} not found in header {header}")
            label_index = header.index(label_column)
        else:
            label_index = int(label_column)
            if not 0 <= label_index < width:
                raise DataError(f"label column index {label_index} out of range")

    numeric_columns = [i for i in range(width) if i != label_index]
    if not numeric_columns:
        raise DataError("CSV file has no numeric attribute columns besides the label")

    values = np.empty((len(body), len(numeric_columns)), dtype=float)
    labels: Optional[List[int]] = [] if label_index is not None else None
    for r, row in enumerate(body):
        for c, col in enumerate(numeric_columns):
            values[r, c] = _parse_cell(row[col])
        if labels is not None:
            token = row[label_index].strip()
            try:
                labels.append(int(float(token)))
            except ValueError as exc:
                raise DataError(f"cannot parse class label {token!r} on row {r}") from exc

    schema = Schema([header[i] for i in numeric_columns])
    return Relation(values, schema, labels, name=name or path.stem)


def write_csv(
    relation: Relation,
    path: Union[str, Path],
    include_header: bool = True,
    label_header: str = "label",
    missing_token: str = "",
    delimiter: str = ",",
) -> Path:
    """Write a :class:`Relation` to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    values = relation.raw
    labels = relation.labels

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if include_header:
            header: Sequence[str] = list(relation.schema.attributes)
            if labels is not None:
                header = list(header) + [label_header]
            writer.writerow(header)
        for i in range(relation.n_tuples):
            row = [
                missing_token if np.isnan(v) else repr(float(v)) for v in values[i]
            ]
            if labels is not None:
                row.append(str(int(labels[i])))
            writer.writerow(row)
    return path
