"""Missing-value injection strategies used by the evaluation protocol.

Section VI-A2 of the paper evaluates imputation by removing known values from
otherwise complete datasets:

* a random fraction of tuples each lose one value on a random attribute
  (Tables V, VI and most figures);
* a *fixed* incomplete attribute can be forced (Table VI varies ``A_x``);
* incomplete tuples can be *clustered* so that the nearest neighbours of an
  incomplete tuple are themselves incomplete (Figure 8).

Every injector returns an :class:`InjectionResult` holding the dirty
relation, the ground-truth values that were removed, and the exact cell
coordinates, so metrics can later compare imputations against the truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_fraction,
    check_positive_int,
    check_random_state,
)
from ..exceptions import MissingValueError
from .relation import AttributeRef, Relation

__all__ = [
    "MissingCell",
    "InjectionResult",
    "inject_missing",
    "inject_missing_cells",
    "inject_missing_attribute",
    "inject_missing_clustered",
]


@dataclass(frozen=True)
class MissingCell:
    """A single removed cell: tuple index, attribute index and true value."""

    row: int
    attribute: int
    true_value: float


@dataclass
class InjectionResult:
    """The outcome of a missing-value injection.

    Attributes
    ----------
    dirty:
        The relation with the selected cells replaced by NaN.
    cells:
        The removed cells together with their ground-truth values, in the
        order they were removed.
    """

    dirty: Relation
    cells: List[MissingCell]

    @property
    def truth(self) -> np.ndarray:
        """Ground-truth values for the removed cells, aligned with ``cells``."""
        return np.array([c.true_value for c in self.cells], dtype=float)

    @property
    def rows(self) -> np.ndarray:
        """Row indices of the removed cells."""
        return np.array([c.row for c in self.cells], dtype=int)

    @property
    def attributes(self) -> np.ndarray:
        """Attribute (column) indices of the removed cells."""
        return np.array([c.attribute for c in self.cells], dtype=int)

    def __len__(self) -> int:
        return len(self.cells)


def _require_complete(relation: Relation) -> None:
    if not relation.is_complete():
        raise MissingValueError(
            "missing-value injection requires a complete relation; "
            f"found {relation.n_missing_cells} pre-existing missing cells"
        )


def _build_result(relation: Relation, coordinates: Sequence[Tuple[int, int]]) -> InjectionResult:
    values = relation.values
    cells: List[MissingCell] = []
    seen = set()
    for row, col in coordinates:
        if (row, col) in seen:
            continue
        seen.add((row, col))
        cells.append(MissingCell(row=int(row), attribute=int(col), true_value=float(values[row, col])))
        values[row, col] = np.nan
    remaining_complete = ~np.isnan(values).any(axis=1)
    if not remaining_complete.any():
        raise MissingValueError(
            "injection would leave no complete tuple; reduce the missing fraction"
        )
    return InjectionResult(dirty=relation.with_values(values), cells=cells)


def inject_missing(
    relation: Relation,
    fraction: float = 0.05,
    attributes: Optional[Sequence[AttributeRef]] = None,
    random_state=None,
) -> InjectionResult:
    """Remove one value from a random attribute of ``fraction`` of the tuples.

    This is the paper's default protocol: "we randomly pick 5% tuples as
    ``t_x`` with one missing value on a random attribute ``A_x``".

    Parameters
    ----------
    relation:
        A complete relation.
    fraction:
        Fraction of tuples to make incomplete, in ``(0, 1)``.
    attributes:
        Optional restriction of which attributes may be chosen as the
        incomplete attribute; defaults to all attributes.
    random_state:
        Seed or generator for reproducibility.
    """
    _require_complete(relation)
    fraction = check_fraction(fraction, "fraction")
    rng = check_random_state(random_state)
    n = relation.n_tuples
    n_incomplete = max(1, int(round(fraction * n)))
    if n_incomplete >= n:
        raise MissingValueError(
            f"fraction {fraction} would make all {n} tuples incomplete"
        )
    if attributes is None:
        candidate_columns = np.arange(relation.n_attributes)
    else:
        candidate_columns = np.asarray(relation.schema.indices_of(attributes), dtype=int)
        if candidate_columns.size == 0:
            raise MissingValueError("attributes must contain at least one attribute")
    rows = rng.choice(n, size=n_incomplete, replace=False)
    cols = rng.choice(candidate_columns, size=n_incomplete, replace=True)
    return _build_result(relation, list(zip(rows.tolist(), cols.tolist())))


def inject_missing_attribute(
    relation: Relation,
    attribute: AttributeRef,
    n_incomplete: int,
    random_state=None,
) -> InjectionResult:
    """Remove the value of a *fixed* attribute from ``n_incomplete`` random tuples.

    Used by Table VI, which reports the error separately per incomplete
    attribute ``A_x`` over the ASF dataset.
    """
    _require_complete(relation)
    n_incomplete = check_positive_int(n_incomplete, "n_incomplete")
    rng = check_random_state(random_state)
    n = relation.n_tuples
    if n_incomplete >= n:
        raise MissingValueError(
            f"n_incomplete={n_incomplete} must be smaller than the relation size {n}"
        )
    column = relation.schema.index_of(attribute)
    rows = rng.choice(n, size=n_incomplete, replace=False)
    return _build_result(relation, [(int(r), column) for r in rows])


def inject_missing_cells(
    relation: Relation,
    coordinates: Sequence[Tuple[int, AttributeRef]],
) -> InjectionResult:
    """Remove an explicit list of ``(row, attribute)`` cells.

    Useful for deterministic tests and for replaying a previously recorded
    missing pattern.
    """
    _require_complete(relation)
    if not coordinates:
        raise MissingValueError("coordinates must contain at least one cell")
    resolved = []
    for row, attribute in coordinates:
        row = int(row)
        if not 0 <= row < relation.n_tuples:
            raise MissingValueError(f"row index {row} out of range")
        resolved.append((row, relation.schema.index_of(attribute)))
    return _build_result(relation, resolved)


def inject_missing_clustered(
    relation: Relation,
    n_incomplete: int,
    cluster_size: int,
    attribute: Optional[AttributeRef] = None,
    random_state=None,
) -> InjectionResult:
    """Remove values from *clusters* of nearby tuples (Figure 8's protocol).

    A cluster of size ``s`` means that an incomplete tuple's ``s - 1``
    closest neighbours (in the full attribute space) are also incomplete, so
    tuple-model methods cannot find nearby complete tuples.

    Parameters
    ----------
    relation:
        A complete relation.
    n_incomplete:
        Total number of incomplete tuples to produce (across all clusters).
    cluster_size:
        Number of mutually-close incomplete tuples per cluster
        (``cluster_size = 1`` degenerates to random injection).
    attribute:
        The attribute to blank within each cluster; a random attribute per
        cluster when ``None``.
    random_state:
        Seed or generator for reproducibility.
    """
    _require_complete(relation)
    n_incomplete = check_positive_int(n_incomplete, "n_incomplete")
    cluster_size = check_positive_int(cluster_size, "cluster_size")
    rng = check_random_state(random_state)
    n = relation.n_tuples
    if n_incomplete >= n:
        raise MissingValueError(
            f"n_incomplete={n_incomplete} must be smaller than the relation size {n}"
        )
    if cluster_size > n_incomplete:
        raise MissingValueError(
            f"cluster_size={cluster_size} cannot exceed n_incomplete={n_incomplete}"
        )

    values = relation.raw
    chosen: List[int] = []
    chosen_set = set()
    n_clusters = int(np.ceil(n_incomplete / cluster_size))
    seeds = rng.choice(n, size=n_clusters, replace=False)
    for seed_row in seeds:
        if len(chosen) >= n_incomplete:
            break
        remaining = n_incomplete - len(chosen)
        want = min(cluster_size, remaining)
        # Gather the seed tuple plus its closest unchosen neighbours.
        deltas = values - values[seed_row]
        distances = np.sqrt(np.mean(deltas * deltas, axis=1))
        order = np.argsort(distances, kind="stable")
        members = []
        for candidate in order:
            if candidate in chosen_set:
                continue
            members.append(int(candidate))
            if len(members) == want:
                break
        for member in members:
            chosen.append(member)
            chosen_set.add(member)

    if attribute is None:
        columns = rng.integers(0, relation.n_attributes, size=len(chosen))
    else:
        columns = np.full(len(chosen), relation.schema.index_of(attribute), dtype=int)
    return _build_result(relation, list(zip(chosen, columns.tolist())))
