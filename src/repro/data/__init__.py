"""Relational data substrate: relations, missing values, datasets, splits, I/O."""

from .relation import Relation, Schema
from .missing import (
    InjectionResult,
    MissingCell,
    inject_missing,
    inject_missing_attribute,
    inject_missing_cells,
    inject_missing_clustered,
)
from .generators import (
    make_classification_relation,
    make_heterogeneous_regression,
    make_homogeneous_regression,
    make_piecewise_curve,
    make_sparse_highdim,
    make_two_street_example,
)
from .datasets import DATASETS, DatasetSpec, dataset_names, dataset_summary, load_dataset
from .io import read_csv, write_csv
from .splits import KFold, StratifiedKFold, TrainTestSplit, train_test_split

__all__ = [
    "Relation",
    "Schema",
    "MissingCell",
    "InjectionResult",
    "inject_missing",
    "inject_missing_attribute",
    "inject_missing_cells",
    "inject_missing_clustered",
    "make_heterogeneous_regression",
    "make_homogeneous_regression",
    "make_sparse_highdim",
    "make_piecewise_curve",
    "make_classification_relation",
    "make_two_street_example",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "dataset_summary",
    "read_csv",
    "write_csv",
    "KFold",
    "StratifiedKFold",
    "TrainTestSplit",
    "train_test_split",
]
