"""Train/test splitting and k-fold cross validation over relations.

The downstream-application experiments (Section VI-D of the paper) use 5-fold
cross validation of a kNN classifier over datasets with real missing values.
These helpers provide deterministic, seedable splits that work directly on
:class:`~repro.data.relation.Relation` objects or on row-index arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .._validation import check_fraction, check_positive_int, check_random_state
from ..exceptions import DataError
from .relation import Relation

__all__ = ["TrainTestSplit", "train_test_split", "KFold", "StratifiedKFold"]


@dataclass
class TrainTestSplit:
    """Row indices of a train/test partition plus the derived sub-relations."""

    train_indices: np.ndarray
    test_indices: np.ndarray
    train: Relation
    test: Relation


def train_test_split(
    relation: Relation,
    test_fraction: float = 0.2,
    random_state=None,
) -> TrainTestSplit:
    """Randomly partition a relation into train and test sub-relations."""
    test_fraction = check_fraction(test_fraction, "test_fraction")
    rng = check_random_state(random_state)
    n = relation.n_tuples
    n_test = int(round(test_fraction * n))
    if n_test < 1 or n_test >= n:
        raise DataError(
            f"test_fraction={test_fraction} yields an empty train or test side for n={n}"
        )
    permutation = rng.permutation(n)
    test_indices = np.sort(permutation[:n_test])
    train_indices = np.sort(permutation[n_test:])
    return TrainTestSplit(
        train_indices=train_indices,
        test_indices=test_indices,
        train=relation.select_rows(train_indices),
        test=relation.select_rows(test_indices),
    )


class KFold:
    """Deterministic k-fold splitter over row indices.

    Parameters
    ----------
    n_splits:
        Number of folds (>= 2).
    shuffle:
        Whether to shuffle row order before slicing folds.
    random_state:
        Seed for the shuffle.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        self.n_splits = check_positive_int(n_splits, "n_splits")
        if self.n_splits < 2:
            raise DataError("n_splits must be >= 2")
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, n_rows: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        n_rows = check_positive_int(n_rows, "n_rows")
        if n_rows < self.n_splits:
            raise DataError(
                f"cannot split {n_rows} rows into {self.n_splits} folds"
            )
        indices = np.arange(n_rows)
        if self.shuffle:
            rng = check_random_state(self.random_state)
            indices = rng.permutation(n_rows)
        fold_sizes = np.full(self.n_splits, n_rows // self.n_splits, dtype=int)
        fold_sizes[: n_rows % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = np.sort(indices[start : start + size])
            train = np.sort(np.concatenate([indices[:start], indices[start + size :]]))
            yield train, test
            start += size

    def split_relation(self, relation: Relation) -> Iterator[Tuple[Relation, Relation]]:
        """Yield ``(train, test)`` sub-relations."""
        for train_idx, test_idx in self.split(relation.n_tuples):
            yield relation.select_rows(train_idx), relation.select_rows(test_idx)


class StratifiedKFold:
    """K-fold splitter that preserves class proportions in every fold.

    Used for the classification application so that small classes (e.g. in
    the HEP-like dataset with only 200 tuples) appear in every test fold.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        self.n_splits = check_positive_int(n_splits, "n_splits")
        if self.n_splits < 2:
            raise DataError("n_splits must be >= 2")
        self.shuffle = bool(shuffle)
        self.random_state = random_state

    def split(self, labels) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` stratified on ``labels``."""
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] == 0:
            raise DataError("labels must be a non-empty 1-D array")
        n_rows = labels.shape[0]
        if n_rows < self.n_splits:
            raise DataError(f"cannot split {n_rows} rows into {self.n_splits} folds")
        rng = check_random_state(self.random_state)

        # Assign each row to a fold, round-robin within its class.
        fold_of_row = np.empty(n_rows, dtype=int)
        for label in np.unique(labels):
            rows = np.flatnonzero(labels == label)
            if self.shuffle:
                rows = rng.permutation(rows)
            fold_of_row[rows] = np.arange(rows.size) % self.n_splits

        for fold in range(self.n_splits):
            test = np.flatnonzero(fold_of_row == fold)
            train = np.flatnonzero(fold_of_row != fold)
            if test.size == 0 or train.size == 0:
                raise DataError(
                    "stratified split produced an empty fold; reduce n_splits"
                )
            yield np.sort(train), np.sort(test)

    def split_relation(self, relation: Relation) -> Iterator[Tuple[Relation, Relation]]:
        """Yield ``(train, test)`` sub-relations stratified on the relation labels."""
        labels = relation.labels
        if labels is None:
            raise DataError("StratifiedKFold requires a labelled relation")
        for train_idx, test_idx in self.split(labels):
            yield relation.select_rows(train_idx), relation.select_rows(test_idx)
