"""Relational substrate: :class:`Schema` and :class:`Relation`.

The paper operates on a relation ``r`` of ``n`` tuples over a schema ``R`` of
``m`` numerical attributes, with missing values confined to an *incomplete
attribute* per tuple.  :class:`Relation` is a light-weight columnar table
built on a single float64 matrix with NaN marking missing cells, plus an
optional label column used by the downstream classification/clustering
applications of Section VI-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import as_float_matrix
from ..exceptions import DataError, SchemaError

__all__ = ["Schema", "Relation"]

AttributeRef = Union[int, str]


@dataclass(frozen=True)
class Schema:
    """An ordered list of attribute names, ``R = {A1, ..., Am}``.

    Attribute names must be unique non-empty strings.  The schema supports
    resolving attributes given either their name or positional index, which
    keeps the rest of the library agnostic to how callers refer to columns.
    """

    attributes: Tuple[str, ...]
    _index: Dict[str, int] = field(init=False, repr=False, compare=False)

    def __init__(self, attributes: Sequence[str]):
        attributes = tuple(str(a) for a in attributes)
        if len(attributes) == 0:
            raise SchemaError("a schema must contain at least one attribute")
        if any(not a for a in attributes):
            raise SchemaError("attribute names must be non-empty strings")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"attribute names must be unique, got {attributes}")
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "_index", {a: i for i, a in enumerate(attributes)})

    @classmethod
    def default(cls, m: int) -> "Schema":
        """Build the paper's default schema ``A1, ..., Am``."""
        if m < 1:
            raise SchemaError(f"schema width must be >= 1, got {m}")
        return cls([f"A{j + 1}" for j in range(m)])

    @property
    def width(self) -> int:
        """Number of attributes ``m``."""
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, attribute: AttributeRef) -> bool:
        if isinstance(attribute, str):
            return attribute in self._index
        return isinstance(attribute, (int, np.integer)) and 0 <= attribute < self.width

    def index_of(self, attribute: AttributeRef) -> int:
        """Resolve an attribute name or index (negative indices allowed) to a column index."""
        if isinstance(attribute, (int, np.integer)) and not isinstance(attribute, bool):
            index = int(attribute)
            if index < 0:
                index += self.width
            if not 0 <= index < self.width:
                raise SchemaError(
                    f"attribute index {attribute} out of range for schema of width {self.width}"
                )
            return index
        if isinstance(attribute, str):
            if attribute not in self._index:
                raise SchemaError(f"unknown attribute {attribute!r}; schema has {self.attributes}")
            return self._index[attribute]
        raise SchemaError(f"attribute reference must be an int or str, got {attribute!r}")

    def indices_of(self, attributes: Iterable[AttributeRef]) -> List[int]:
        """Resolve a collection of attribute references to column indices."""
        return [self.index_of(a) for a in attributes]

    def name_of(self, index: int) -> str:
        """Return the attribute name at ``index``."""
        return self.attributes[self.index_of(index)]

    def complement(self, attributes: Iterable[AttributeRef]) -> List[int]:
        """Column indices of ``R \\ attributes`` (the paper's complete attributes F)."""
        excluded = set(self.indices_of(attributes))
        return [i for i in range(self.width) if i not in excluded]


class Relation:
    """A relation of numerical tuples with optional missing cells and labels.

    Parameters
    ----------
    values:
        Array-like of shape ``(n, m)``.  NaN entries denote missing cells.
    schema:
        Attribute names; defaults to ``A1..Am``.
    labels:
        Optional integer class labels of length ``n`` used by the
        classification application (Section VI-D2 of the paper).
    name:
        Optional dataset name carried through for reporting.
    """

    def __init__(
        self,
        values,
        schema: Optional[Union[Schema, Sequence[str]]] = None,
        labels: Optional[Sequence[int]] = None,
        name: str = "",
    ):
        self._values = as_float_matrix(values, name="values", allow_nan=True)
        n, m = self._values.shape
        if schema is None:
            self._schema = Schema.default(m)
        elif isinstance(schema, Schema):
            self._schema = schema
        else:
            self._schema = Schema(schema)
        if self._schema.width != m:
            raise SchemaError(
                f"schema width {self._schema.width} does not match data width {m}"
            )
        if labels is None:
            self._labels: Optional[np.ndarray] = None
        else:
            labels = np.asarray(labels)
            if labels.shape != (n,):
                raise DataError(
                    f"labels must have shape ({n},), got {labels.shape}"
                )
            self._labels = labels.copy()
        self.name = str(name)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The underlying ``(n, m)`` float matrix (a defensive copy)."""
        return self._values.copy()

    @property
    def raw(self) -> np.ndarray:
        """Read-only view of the underlying matrix (no copy)."""
        view = self._values.view()
        view.setflags(write=False)
        return view

    @property
    def schema(self) -> Schema:
        """The relation schema."""
        return self._schema

    @property
    def labels(self) -> Optional[np.ndarray]:
        """Class labels, or ``None`` when the relation is unlabelled."""
        return None if self._labels is None else self._labels.copy()

    @property
    def n_tuples(self) -> int:
        """Number of tuples ``n``."""
        return self._values.shape[0]

    @property
    def n_attributes(self) -> int:
        """Number of attributes ``m``."""
        return self._values.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n, m)``."""
        return self._values.shape

    def __len__(self) -> int:
        return self.n_tuples

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Relation(n={self.n_tuples}, m={self.n_attributes},"
            f" missing={self.n_missing_cells}{label})"
        )

    # ------------------------------------------------------------------ #
    # Missing-value structure
    # ------------------------------------------------------------------ #
    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean ``(n, m)`` mask, True where a cell is missing."""
        return np.isnan(self._values)

    @property
    def n_missing_cells(self) -> int:
        """Total number of missing cells."""
        return int(np.isnan(self._values).sum())

    @property
    def incomplete_rows(self) -> np.ndarray:
        """Indices of tuples containing at least one missing cell."""
        return np.flatnonzero(np.isnan(self._values).any(axis=1))

    @property
    def complete_rows(self) -> np.ndarray:
        """Indices of tuples without missing cells."""
        return np.flatnonzero(~np.isnan(self._values).any(axis=1))

    def is_complete(self) -> bool:
        """Whether the relation has no missing cell at all."""
        return self.n_missing_cells == 0

    def complete_part(self) -> "Relation":
        """The sub-relation of complete tuples (the paper's ``r``)."""
        return self.select_rows(self.complete_rows)

    def incomplete_part(self) -> "Relation":
        """The sub-relation of incomplete tuples (the paper's ``{t_x}``)."""
        return self.select_rows(self.incomplete_rows)

    # ------------------------------------------------------------------ #
    # Access and manipulation
    # ------------------------------------------------------------------ #
    def column(self, attribute: AttributeRef) -> np.ndarray:
        """Values of one attribute as a 1-D array (copy)."""
        return self._values[:, self._schema.index_of(attribute)].copy()

    def columns(self, attributes: Iterable[AttributeRef]) -> np.ndarray:
        """Values of several attributes as an ``(n, len(attributes))`` array."""
        indices = self._schema.indices_of(attributes)
        return self._values[:, indices].copy()

    def row(self, index: int) -> np.ndarray:
        """One tuple as a 1-D array (copy)."""
        return self._values[index].copy()

    def select_rows(self, indices) -> "Relation":
        """A new relation restricted to ``indices`` (order preserved)."""
        indices = np.asarray(indices, dtype=int)
        labels = None if self._labels is None else self._labels[indices]
        return Relation(self._values[indices], self._schema, labels, name=self.name)

    def select_attributes(self, attributes: Iterable[AttributeRef]) -> "Relation":
        """A new relation restricted to the given attributes (order preserved)."""
        indices = self._schema.indices_of(attributes)
        if not indices:
            raise SchemaError("cannot project onto an empty attribute list")
        names = [self._schema.attributes[i] for i in indices]
        return Relation(self._values[:, indices], Schema(names), self._labels, name=self.name)

    def with_values(self, values: np.ndarray) -> "Relation":
        """A new relation with the same schema/labels but different cell values."""
        return Relation(values, self._schema, self._labels, name=self.name)

    def set_cell(self, row: int, attribute: AttributeRef, value: float) -> "Relation":
        """Return a copy of the relation with one cell replaced."""
        values = self._values.copy()
        values[row, self._schema.index_of(attribute)] = value
        return self.with_values(values)

    def drop_incomplete(self) -> "Relation":
        """Discard incomplete tuples (the "Missing" column of Table VII)."""
        return self.complete_part()

    def copy(self) -> "Relation":
        """Deep copy of the relation."""
        return Relation(self._values.copy(), self._schema, self._labels, name=self.name)

    def concat(self, other: "Relation") -> "Relation":
        """Stack two relations sharing the same schema."""
        if other.schema.attributes != self._schema.attributes:
            raise SchemaError("cannot concatenate relations with different schemas")
        values = np.vstack([self._values, other._values])
        if self._labels is None and other._labels is None:
            labels = None
        elif self._labels is not None and other._labels is not None:
            labels = np.concatenate([self._labels, other._labels])
        else:
            raise DataError("cannot concatenate a labelled relation with an unlabelled one")
        return Relation(values, self._schema, labels, name=self.name)

    # ------------------------------------------------------------------ #
    # Statistics used throughout the library
    # ------------------------------------------------------------------ #
    def column_means(self, skip_missing: bool = True) -> np.ndarray:
        """Per-attribute mean, ignoring missing cells when requested."""
        if skip_missing:
            with np.errstate(invalid="ignore"):
                return np.nanmean(self._values, axis=0)
        return self._values.mean(axis=0)

    def column_stds(self, skip_missing: bool = True) -> np.ndarray:
        """Per-attribute standard deviation, ignoring missing cells when requested."""
        if skip_missing:
            with np.errstate(invalid="ignore"):
                return np.nanstd(self._values, axis=0)
        return self._values.std(axis=0)

    def summary(self) -> Dict[str, object]:
        """A plain-dict summary used by the experiment reporting layer."""
        return {
            "name": self.name,
            "n_tuples": self.n_tuples,
            "n_attributes": self.n_attributes,
            "n_missing_cells": self.n_missing_cells,
            "n_incomplete_tuples": int(len(self.incomplete_rows)),
            "has_labels": self._labels is not None,
        }
