"""Named dataset registry mirroring the paper's Table IV.

Each entry maps a dataset name used in the paper (``asf``, ``ccs``, ``ccpp``,
``sn``, ``phase``, ``ca``, ``da``, ``mam``, ``hep``) to a synthetic generator
configured to match the published size and the property the paper uses the
dataset to exercise (heterogeneity, sparsity, a clear global regression, or
real embedded missing values with class labels).

``load_dataset(name)`` returns the full-size relation; ``size`` can be used
to scale a dataset down for fast tests and benchmark smoke runs while
preserving its structural character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .._validation import check_positive_int
from ..exceptions import DatasetError
from . import generators
from .relation import Relation

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "dataset_summary"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata and construction recipe for one named dataset."""

    name: str
    n_tuples: int
    n_attributes: int
    source: str
    property_description: str
    has_labels: bool
    builder: Callable[[int, int], Relation]

    def build(self, size: Optional[int] = None, random_state: Optional[int] = None) -> Relation:
        """Construct the dataset, optionally scaled to ``size`` tuples."""
        n = self.n_tuples if size is None else check_positive_int(size, "size")
        seed = 0 if random_state is None else int(random_state)
        relation = self.builder(n, seed)
        relation.name = self.name
        return relation


def _build_asf(n: int, seed: int) -> Relation:
    # Airfoil-self-noise analogue: 6 attributes, several acoustic regimes,
    # no clear global regression (the paper's flagship heterogeneous dataset).
    return generators.make_heterogeneous_regression(
        n_tuples=n,
        n_attributes=6,
        n_regimes=5,
        noise=0.04,
        spread=12.0,
        regime_offset=1.2,
        name="asf",
        random_state=seed,
    )


def _build_ccs(n: int, seed: int) -> Relation:
    # Concrete-compressive-strength analogue: moderate heterogeneity.
    return generators.make_heterogeneous_regression(
        n_tuples=n,
        n_attributes=6,
        n_regimes=3,
        noise=0.1,
        spread=10.0,
        regime_offset=0.7,
        name="ccs",
        random_state=seed + 1,
    )


def _build_ccpp(n: int, seed: int) -> Relation:
    # Combined-cycle-power-plant analogue: dense, near-linear.
    return generators.make_homogeneous_regression(
        n_tuples=n,
        n_attributes=5,
        noise=0.08,
        spread=8.0,
        name="ccpp",
        random_state=seed + 2,
    )


def _build_sn(n: int, seed: int) -> Relation:
    # SN analogue: huge two-attribute relation, piecewise-linear curve.
    return generators.make_piecewise_curve(
        n_tuples=n,
        n_segments=8,
        noise=0.05,
        x_range=100.0,
        name="sn",
        random_state=seed + 3,
    )


def _build_phase(n: int, seed: int) -> Relation:
    # Siemens three-phase power analogue: a clear global regression.
    return generators.make_homogeneous_regression(
        n_tuples=n,
        n_attributes=4,
        noise=0.03,
        spread=6.0,
        name="phase",
        random_state=seed + 4,
    )


def _build_ca(n: int, seed: int) -> Relation:
    # California-housing analogue: 9 attributes, severe sparsity (neighbour
    # values unrelated on the small-scale columns), one global model.
    return generators.make_sparse_highdim(
        n_tuples=n,
        n_attributes=9,
        n_small_attributes=3,
        noise=0.04,
        spread=25.0,
        small_scale=0.05,
        name="ca",
        random_state=seed + 5,
    )


def _build_da(n: int, seed: int) -> Relation:
    # KEEL "dee/da" analogue: mixed behaviour, two regimes with heavier noise.
    return generators.make_heterogeneous_regression(
        n_tuples=n,
        n_attributes=6,
        n_regimes=2,
        noise=0.15,
        spread=9.0,
        regime_offset=0.6,
        name="da",
        random_state=seed + 6,
    )


def _build_mam(n: int, seed: int) -> Relation:
    # Mammographic-mass analogue: binary labels, real embedded missing cells.
    # Classes overlap (as in the real data, where the task F1 is ~0.82) so the
    # downstream classifier is sensitive to imputation quality.
    return generators.make_classification_relation(
        n_tuples=n,
        n_attributes=5,
        n_classes=2,
        class_separation=1.1,
        noise=1.4,
        missing_fraction=0.12,
        name="mam",
        random_state=seed + 7,
    )


def _build_hep(n: int, seed: int) -> Relation:
    # Hepatitis analogue: small, wide, binary labels, real embedded missing cells.
    return generators.make_classification_relation(
        n_tuples=n,
        n_attributes=19,
        n_classes=2,
        class_separation=0.9,
        noise=1.2,
        missing_fraction=0.08,
        name="hep",
        random_state=seed + 8,
    )


#: Registry of the paper's nine datasets (Table IV).
DATASETS: Dict[str, DatasetSpec] = {
    "asf": DatasetSpec(
        name="asf", n_tuples=1500, n_attributes=6, source="UCI (synthetic analogue)",
        property_description="no clear global regression (heterogeneity)",
        has_labels=False, builder=_build_asf,
    ),
    "ccs": DatasetSpec(
        name="ccs", n_tuples=1000, n_attributes=6, source="UCI (synthetic analogue)",
        property_description="moderate heterogeneity", has_labels=False, builder=_build_ccs,
    ),
    "ccpp": DatasetSpec(
        name="ccpp", n_tuples=10000, n_attributes=5, source="UCI (synthetic analogue)",
        property_description="dense, near-linear", has_labels=False, builder=_build_ccpp,
    ),
    "sn": DatasetSpec(
        name="sn", n_tuples=100000, n_attributes=2, source="UCI (synthetic analogue)",
        property_description="large 2-D piecewise-linear curve", has_labels=False,
        builder=_build_sn,
    ),
    "phase": DatasetSpec(
        name="phase", n_tuples=10000, n_attributes=4, source="Siemens (synthetic analogue)",
        property_description="clear global regression", has_labels=False, builder=_build_phase,
    ),
    "ca": DatasetSpec(
        name="ca", n_tuples=20000, n_attributes=9, source="KEEL (synthetic analogue)",
        property_description="sparse with high dimension", has_labels=False, builder=_build_ca,
    ),
    "da": DatasetSpec(
        name="da", n_tuples=7000, n_attributes=6, source="KEEL (synthetic analogue)",
        property_description="mixed regimes with heavy noise", has_labels=False,
        builder=_build_da,
    ),
    "mam": DatasetSpec(
        name="mam", n_tuples=1000, n_attributes=5, source="KEEL (synthetic analogue)",
        property_description="real missing values, class labels, no truth",
        has_labels=True, builder=_build_mam,
    ),
    "hep": DatasetSpec(
        name="hep", n_tuples=200, n_attributes=19, source="KEEL (synthetic analogue)",
        property_description="real missing values, class labels, no truth",
        has_labels=True, builder=_build_hep,
    ),
}


def dataset_names() -> Tuple[str, ...]:
    """Names of all registered datasets, in Table IV order."""
    return tuple(DATASETS.keys())


def load_dataset(
    name: str,
    size: Optional[int] = None,
    random_state: Optional[int] = None,
) -> Relation:
    """Build a named dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case insensitive).
    size:
        Optional number of tuples; defaults to the paper's published size.
    random_state:
        Seed controlling the synthetic generation (default 0, so repeated
        calls return identical data).
    """
    key = str(name).lower()
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available datasets: {sorted(DATASETS)}"
        )
    return DATASETS[key].build(size=size, random_state=random_state)


def dataset_summary() -> Dict[str, Dict[str, object]]:
    """Summary table of the registry (name, size, source, property)."""
    return {
        spec.name: {
            "n_tuples": spec.n_tuples,
            "n_attributes": spec.n_attributes,
            "source": spec.source,
            "property": spec.property_description,
            "has_labels": spec.has_labels,
        }
        for spec in DATASETS.values()
    }
