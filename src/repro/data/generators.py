"""Synthetic data generators.

The paper evaluates on UCI/KEEL/Siemens datasets that are not available in
this offline environment.  These generators produce datasets with the same
*structural properties* the paper relies on (Table IV):

* **heterogeneous** data — several local linear regimes with different
  parameters, so no single global regression fits (low ``R²_H``); used to
  stand in for ASF/CCS/DA.
* **homogeneous** data — one dominant linear relation (high ``R²_H``); used
  to stand in for CCPP/PHASE.
* **sparse high-dimensional** data — wide tables where nearest neighbours do
  not share values (low ``R²_S``) but one regression model holds globally;
  used to stand in for CA.
* **labelled class-structured** data with embedded missing values — used by
  the clustering/classification application experiments (MAM/HEP).

Every generator is deterministic given its ``random_state``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import (
    check_fraction,
    check_positive_float,
    check_positive_int,
    check_random_state,
)
from ..exceptions import ConfigurationError
from .relation import Relation, Schema

__all__ = [
    "make_heterogeneous_regression",
    "make_homogeneous_regression",
    "make_sparse_highdim",
    "make_piecewise_curve",
    "make_classification_relation",
    "make_two_street_example",
]


def _latent_positions(rng: np.random.Generator, n: int, n_latents: int, n_blobs: int) -> np.ndarray:
    """Latent coordinates drawn from a few blobs so neighbourhoods are meaningful."""
    centers = rng.uniform(-1.0, 1.0, size=(n_blobs, n_latents))
    assignment = rng.integers(0, n_blobs, size=n)
    return centers[assignment] + rng.normal(scale=0.25, size=(n, n_latents))


def make_heterogeneous_regression(
    n_tuples: int,
    n_attributes: int,
    n_regimes: int = 4,
    noise: float = 0.05,
    spread: float = 10.0,
    regime_offset: float = 1.0,
    name: str = "heterogeneous",
    random_state=None,
) -> Relation:
    """Data drawn from several *distinct* locally linear regimes.

    Tuples live on a low-dimensional latent manifold; every attribute is a
    linear read-out of the latent coordinates, but the read-out parameters
    differ per regime (regimes partition the latent space into contiguous
    regions, like the "two streets" of the paper's Figure 1).  Attributes
    are therefore mutually predictable *within* a regime, while no single
    global regression fits all tuples — the heterogeneity problem.

    Parameters
    ----------
    n_tuples, n_attributes:
        Size of the relation.
    n_regimes:
        Number of distinct linear regimes.
    noise:
        Relative standard deviation of the per-attribute observation noise.
    spread:
        Scale of the attribute values.
    regime_offset:
        How far apart the regime-specific read-outs are (0 = homogeneous);
        larger values make any global model worse.
    """
    n_tuples = check_positive_int(n_tuples, "n_tuples")
    n_attributes = check_positive_int(n_attributes, "n_attributes")
    if n_attributes < 2:
        raise ConfigurationError("n_attributes must be >= 2")
    n_regimes = check_positive_int(n_regimes, "n_regimes")
    noise = check_positive_float(noise, "noise", allow_zero=True)
    spread = check_positive_float(spread, "spread")
    regime_offset = check_positive_float(regime_offset, "regime_offset", allow_zero=True)
    rng = check_random_state(random_state)

    n_latents = min(2, n_attributes - 1)
    latents = _latent_positions(rng, n_tuples, n_latents, n_blobs=max(3, n_regimes))

    # Contiguous regimes: partition the latent space along a random direction.
    anchor = rng.normal(size=n_latents)
    anchor /= np.linalg.norm(anchor)
    projection = latents @ anchor
    regime_edges = np.quantile(projection, np.linspace(0, 1, n_regimes + 1)[1:-1])
    regimes = np.searchsorted(regime_edges, projection)

    # Shared read-out plus a regime-specific perturbation of comparable size.
    # Columns are normalised so every attribute carries a comparable amount
    # of latent signal (no attribute degenerates into pure noise).
    base_loadings = rng.uniform(-1.0, 1.0, size=(n_latents, n_attributes))
    base_loadings /= np.linalg.norm(base_loadings, axis=0, keepdims=True)
    base_intercepts = rng.uniform(-0.5, 0.5, size=n_attributes)
    values = np.empty((n_tuples, n_attributes))
    for regime in range(n_regimes):
        members = regimes == regime
        if not members.any():
            continue
        perturbation = rng.uniform(-1.0, 1.0, size=(n_latents, n_attributes))
        perturbation /= np.linalg.norm(perturbation, axis=0, keepdims=True)
        loadings = base_loadings + regime_offset * perturbation
        intercepts = base_intercepts + regime_offset * rng.uniform(-1.0, 1.0, size=n_attributes)
        values[members] = intercepts + latents[members] @ loadings
    values += rng.normal(scale=noise, size=values.shape)
    values *= spread
    return Relation(values, Schema.default(n_attributes), name=name)


def make_homogeneous_regression(
    n_tuples: int,
    n_attributes: int,
    noise: float = 0.05,
    spread: float = 10.0,
    name: str = "homogeneous",
    random_state=None,
) -> Relation:
    """Data following one clear global linear structure (the PHASE/CCPP analogue).

    Every attribute is a linear read-out of shared latent coordinates with
    small observation noise, so a single global regression predicts any
    attribute from the others well (high ``R²_H``).
    """
    n_tuples = check_positive_int(n_tuples, "n_tuples")
    n_attributes = check_positive_int(n_attributes, "n_attributes")
    if n_attributes < 2:
        raise ConfigurationError("n_attributes must be >= 2")
    noise = check_positive_float(noise, "noise", allow_zero=True)
    spread = check_positive_float(spread, "spread")
    rng = check_random_state(random_state)

    # Two latent factors keep every attribute recoverable from any two others,
    # which is what gives these datasets their clear global regression.
    n_latents = min(2, n_attributes - 1)
    latents = _latent_positions(rng, n_tuples, n_latents, n_blobs=4)
    loadings = rng.uniform(-1.0, 1.0, size=(n_latents, n_attributes))
    loadings /= np.linalg.norm(loadings, axis=0, keepdims=True)
    intercepts = rng.uniform(-0.5, 0.5, size=n_attributes)
    values = intercepts + latents @ loadings
    values += rng.normal(scale=noise, size=values.shape)
    values *= spread
    return Relation(values, Schema.default(n_attributes), name=name)


def make_sparse_highdim(
    n_tuples: int,
    n_attributes: int,
    n_small_attributes: int = 3,
    noise: float = 0.04,
    spread: float = 25.0,
    small_scale: float = 0.05,
    name: str = "sparse",
    random_state=None,
) -> Relation:
    """Wide data where neighbours rarely share values but one regression holds.

    Two independent latent factors drive two groups of attributes:

    * a *large-scale* group (driven by latent ``v``, value range ``±spread``)
      that dominates the Euclidean distance of Formula 1, and
    * a *small-scale* group of ``n_small_attributes`` columns (driven by
      latent ``u``, value range ``± spread·small_scale``).

    Nearest neighbours are therefore matched almost exclusively on the
    large-scale attributes; their small-scale values are unrelated to the
    query's, so neighbour value-sharing fails for those columns (severe
    sparsity, low ``R²_S``), while a global linear regression still predicts
    every attribute from its own group accurately (high ``R²_H``) — the
    profile the paper reports for the high-dimensional CA dataset.
    """
    n_tuples = check_positive_int(n_tuples, "n_tuples")
    n_attributes = check_positive_int(n_attributes, "n_attributes")
    if n_attributes < 3:
        raise ConfigurationError("n_attributes must be >= 3 for the two attribute groups")
    n_small_attributes = check_positive_int(n_small_attributes, "n_small_attributes")
    if n_small_attributes >= n_attributes:
        raise ConfigurationError("n_small_attributes must leave at least two large attributes")
    noise = check_positive_float(noise, "noise", allow_zero=True)
    spread = check_positive_float(spread, "spread")
    small_scale = check_positive_float(small_scale, "small_scale")
    rng = check_random_state(random_state)

    n_large = n_attributes - n_small_attributes
    u = rng.uniform(-1.0, 1.0, size=(n_tuples, 2))
    v = rng.uniform(-1.0, 1.0, size=(n_tuples, 2))

    large_loadings = rng.uniform(0.5, 1.0, size=(2, n_large)) * rng.choice(
        [-1.0, 1.0], size=(2, n_large)
    )
    small_loadings = rng.uniform(0.5, 1.0, size=(2, n_small_attributes)) * rng.choice(
        [-1.0, 1.0], size=(2, n_small_attributes)
    )
    large = (v @ large_loadings + rng.normal(scale=noise, size=(n_tuples, n_large))) * spread
    small = (u @ small_loadings + rng.normal(scale=noise, size=(n_tuples, n_small_attributes)))
    small *= spread * small_scale

    # Interleave: small-scale attributes go last (A_{m-2} .. A_m), matching
    # the paper's default of the last attribute being the incomplete one.
    values = np.column_stack([large, small])
    return Relation(values, Schema.default(n_attributes), name=name)


def make_piecewise_curve(
    n_tuples: int,
    n_segments: int = 6,
    noise: float = 0.05,
    x_range: float = 100.0,
    name: str = "curve",
    random_state=None,
) -> Relation:
    """A large two-attribute relation following a piecewise linear curve.

    This is the SN analogue: 2 attributes, many rows, no single global linear
    relation (the paper reports ``R²_H = 0.05`` for SN) but locally linear
    structure that individual models capture.
    """
    n_tuples = check_positive_int(n_tuples, "n_tuples")
    n_segments = check_positive_int(n_segments, "n_segments")
    noise = check_positive_float(noise, "noise", allow_zero=True)
    x_range = check_positive_float(x_range, "x_range")
    rng = check_random_state(random_state)

    x = rng.uniform(0.0, x_range, size=n_tuples)
    knots = np.linspace(0.0, x_range, n_segments + 1)
    # Positive, segment-specific slopes: the curve is monotone (so either
    # attribute is locally predictable from the other) but far from a single
    # straight line, matching SN's low global-regression fit.
    slopes = rng.uniform(0.05, 1.0, size=n_segments)
    # Build a continuous piecewise-linear function by accumulating segments.
    knot_values = np.concatenate([[0.0], np.cumsum(slopes * np.diff(knots))])
    y = np.interp(x, knots, knot_values) + rng.normal(scale=noise, size=n_tuples)
    values = np.column_stack([x, y])
    return Relation(values, Schema.default(2), name=name)


def make_classification_relation(
    n_tuples: int,
    n_attributes: int,
    n_classes: int = 2,
    class_separation: float = 3.0,
    noise: float = 1.0,
    missing_fraction: float = 0.0,
    name: str = "classification",
    random_state=None,
) -> Relation:
    """Labelled, class-structured data with optional embedded missing cells.

    Stands in for the MAM and HEP datasets of Section VI-D2: each class is a
    Gaussian blob whose attributes are correlated, and a fraction of cells is
    blanked *without* recording the truth (mirroring real-world missingness).
    """
    n_tuples = check_positive_int(n_tuples, "n_tuples")
    n_attributes = check_positive_int(n_attributes, "n_attributes")
    n_classes = check_positive_int(n_classes, "n_classes")
    if n_classes < 2:
        raise ConfigurationError("n_classes must be >= 2")
    class_separation = check_positive_float(class_separation, "class_separation")
    noise = check_positive_float(noise, "noise")
    if missing_fraction:
        missing_fraction = check_fraction(missing_fraction, "missing_fraction", inclusive=True)
    rng = check_random_state(random_state)

    centers = rng.normal(scale=class_separation, size=(n_classes, n_attributes))
    labels = rng.integers(0, n_classes, size=n_tuples)
    # Correlated within-class structure: sample latent factors and mix them.
    mixing = rng.normal(size=(n_attributes, n_attributes))
    latent = rng.normal(scale=noise, size=(n_tuples, n_attributes))
    values = centers[labels] + latent @ (0.5 * mixing)

    if missing_fraction > 0:
        n_cells = n_tuples * n_attributes
        n_missing = int(round(missing_fraction * n_cells))
        if n_missing >= n_cells:
            raise ConfigurationError("missing_fraction would blank every cell")
        flat = rng.choice(n_cells, size=n_missing, replace=False)
        rows, cols = np.unravel_index(flat, (n_tuples, n_attributes))
        values = values.copy()
        values[rows, cols] = np.nan
        # Guarantee at least one complete tuple remains so imputers can fit.
        incomplete = np.isnan(values).any(axis=1)
        if incomplete.all():
            values[0] = centers[labels[0]]

    return Relation(values, Schema.default(n_attributes), labels=labels, name=name)


def make_two_street_example() -> Relation:
    """The 8-tuple running example of Figure 1 (tuples ``t1``–``t8``)."""
    values = np.array(
        [
            [0.0, 5.8],
            [0.8, 4.6],
            [1.9, 3.8],
            [2.9, 3.2],
            [6.8, 3.0],
            [7.5, 4.1],
            [8.2, 4.8],
            [9.0, 5.5],
        ]
    )
    return Relation(values, Schema(["A1", "A2"]), name="figure1")
