"""The consolidated command-line interface: ``python -m repro``.

Four subcommands front the whole library through the :mod:`repro.api`
service layer:

* ``impute`` — one-shot batch imputation of a CSV file with any registry
  method (``python -m repro impute dirty.csv --method IIM --output clean.csv``);
* ``replay`` — the streaming/lifecycle CSV-trace replay against the online
  engine (subsumes the deprecated ``python -m repro.online`` entry point;
  same arguments);
* ``serve`` — the JSONL serve loop over stdio or a TCP socket
  (``python -m repro serve --stdio``, ``python -m repro serve --port 7007``),
  with crash-safe durability via ``--wal-dir`` and request hardening via
  ``--deadline`` / ``--max-request-bytes``;
* ``recover`` — rebuild an online session from a write-ahead log (plus the
  last checkpoint, when one exists) after a crash, and optionally write a
  fresh checkpoint (``python -m repro recover wal/s --output ckpt``);
* ``bench`` — the service-layer benchmark (facade overhead + serve-loop
  throughput + concurrency sweep + observability overhead + query
  impute-on-demand cost), written to ``BENCH_api.json``;
* ``metrics-dump`` — print the standard metric catalogue of the
  observability layer (``python -m repro metrics-dump --format
  prometheus``), zero-valued in a fresh process — the reference for what a
  live ``metrics`` serve command can return;
* ``scenario`` — the parametric workload registry: ``scenario list`` the
  built-in specs, ``scenario describe NAME`` one spec and its generator's
  parameter schema, ``scenario replay NAME`` a spec through the engine or
  the full serve loop with cold-refit verification, and ``scenario trace
  NAME`` the deterministic trace digest (``--output`` writes the canonical
  trace bytes).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .exceptions import ReproError

PROG = "python -m repro"


def _parse_override(token: str):
    """Parse one ``--set key=value`` override (numbers stay numeric)."""
    if "=" not in token:
        raise ReproError(
            f"--set expects key=value, got {token!r}"
        )
    key, raw = token.split("=", 1)
    value: object = raw
    lowered = raw.strip().lower()
    if lowered in ("none", "null"):
        value = None
    elif lowered in ("true", "false"):
        value = lowered == "true"
    else:
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
    return key.strip(), value


def _cmd_impute(args) -> int:
    from .api import BatchSession
    from .data.io import read_csv, write_csv

    try:
        overrides = dict(_parse_override(token) for token in args.set or [])
        session = BatchSession(args.method, **overrides)
        relation = read_csv(args.csv, has_header=not args.no_header)
        if relation.n_missing_cells == 0:
            print(f"{args.csv}: no missing cells; nothing to impute")
            imputed = relation
        else:
            session.fit(relation)
            imputed = session.impute_relation(relation)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = session.stats()
    print(
        f"method {stats['method']} imputed {stats['counters']['imputed_cells']} "
        f"cells across {relation.n_tuples} tuples "
        f"(fitted on {stats['n_tuples']} complete tuples)"
    )
    if args.output:
        write_csv(imputed, args.output)
        print(f"imputed relation written to {args.output}")
    return 0


def _cmd_replay(args, extras) -> int:
    from .online.cli import main as replay_main

    return replay_main(extras, prog=f"{PROG} replay")


def _cmd_serve(args) -> int:
    from .api.serve import SessionServer, serve_stdio, serve_tcp

    # Wire-supplied save/restore paths are confined to the artifact root
    # (default: the working directory) so clients cannot touch the rest of
    # the filesystem.
    server = SessionServer(
        artifact_root=args.artifact_root,
        wal_root=args.wal_dir,
        wal_sync=args.sync,
        deadline_seconds=args.deadline,
        max_request_bytes=args.max_request_bytes,
        trace_log=args.trace_log,
        trace_sample=args.trace_sample,
        workers=args.workers,
        microbatch_window_ms=args.microbatch_window_ms,
        microbatch_max_rows=args.microbatch_max_rows,
        max_rows_per_request=args.max_rows_per_request,
        max_sessions=args.max_sessions,
        max_queued_requests=args.max_queued_requests,
        auth_token=args.auth_token,
    )
    if args.port is not None:
        print(
            f"serving JSONL sessions on {args.host}:{args.port} "
            f"(send {{\"cmd\": \"shutdown\"}} to stop)",
            file=sys.stderr,
        )
        return serve_tcp(args.host, args.port, server)
    return serve_stdio(server=server)


def _cmd_repl(args) -> int:
    from .api.repl import run_repl

    try:
        return run_repl(
            args.connect,
            artifact_root=args.artifact_root,
            token=args.auth_token,
            session=args.session,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_recover(args) -> int:
    from .api.sessions import recover_session

    try:
        session, report = recover_session(
            args.wal_dir,
            checkpoint=args.checkpoint,
            # Recovery only reads; reattach the WAL solely when we are about
            # to checkpoint (--output), which truncates it afterwards.
            reattach=args.output is not None,
        )
        if args.output is not None:
            report["output"] = str(session.save(args.output))
            session.close()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(
        f"recovered session from {args.wal_dir}: replayed "
        f"{report['replayed_ops']} WAL op(s) "
        f"(skipped {report['skipped_ops']} already in the checkpoint) "
        f"onto checkpoint {report['checkpoint'] or '<none>'}; "
        f"{report['n_tuples']} tuples live"
    )
    if report["torn_tail"]:
        torn = report["torn_tail"]
        print(
            f"torn WAL tail truncated at {torn['segment']} offset "
            f"{torn['offset']} ({torn['reason']})"
        )
    if args.output is not None:
        print(
            f"fresh checkpoint written to {report['output']} "
            f"(the WAL was truncated; old segments are gone)"
        )
    return 0


def _cmd_bench(args) -> int:
    from .api.bench import run_api_benchmark
    from .experiments.settings import get_profile

    profile = get_profile(args.profile) if args.profile else None
    report = run_api_benchmark(profile=profile)
    path = Path(args.output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    overhead = report["facade_overhead"]
    throughput = report["serve_throughput"]
    print(
        f"facade overhead: session {overhead['session_seconds']:.4f}s vs "
        f"direct {overhead['direct_seconds']:.4f}s "
        f"(x{overhead['overhead_ratio']:.3f}, bit-identical)"
    )
    print(
        f"serve throughput: {throughput['single_requests_per_second']:,.0f} "
        f"single-row req/s; {throughput['batched_requests_per_second']:,.0f} "
        f"batched req/s ({throughput['batched_rows_per_second']:,.0f} rows/s "
        f"at batch {throughput['batch_size']})"
    )
    concurrency = report["serve_concurrency"]
    at4 = {
        mode: entry["by_clients"]["4"]["aggregate_requests_per_second"]
        for mode, entry in concurrency["modes"].items()
    }
    print(
        f"serve concurrency (4 clients): "
        f"baseline {at4['baseline_single_lock']:,.0f} req/s; "
        f"concurrent {at4['concurrent']:,.0f} req/s; "
        f"coalesced {at4['coalesced']:,.0f} req/s "
        f"(best x{concurrency['best_speedup_at_4_clients']:.2f} vs "
        f"single lock)"
    )
    obs = report["obs_overhead"]
    print(
        f"obs overhead: facade disabled x{obs['facade_disabled_ratio']:.3f} / "
        f"enabled x{obs['facade_enabled_ratio']:.3f} vs no-op; serve single "
        f"enabled x{obs['serve_single_enabled_ratio']:.3f} vs disabled"
    )
    query = report["query_ondemand"]
    print(
        f"query on-demand ({query['touched_rows']} of "
        f"{query['pending_rows']} pending rows touched): "
        f"{query['ondemand_seconds'] * 1e3:.2f}ms vs touched-only "
        f"pre-impute x{query['ondemand_vs_touched_ratio']:.3f}; "
        f"full materialize would cost "
        f"x{query['full_vs_ondemand_speedup']:.2f} more"
    )
    print(f"report written to {path}")
    return 0


def _scenario_spec(args):
    """Resolve the spec a ``scenario`` subcommand operates on."""
    from .scenarios import ScenarioSpec, get

    if getattr(args, "spec", None):
        return ScenarioSpec.from_json(Path(args.spec).read_text())
    return get(args.name)


def _cmd_scenario(args) -> int:
    from .scenarios import (
        describe_schema,
        generate_trace,
        get,
        golden_digest,
        registry,
        replay,
    )

    try:
        if args.scenario_command == "list":
            names = registry.list()
            if args.names:
                for name in names:
                    print(name)
                return 0
            rows = [
                {
                    "name": name,
                    "generator": get(name).generator,
                    "seed": get(name).seed,
                    "golden_digest": golden_digest(name),
                    "description": get(name).description,
                }
                for name in names
            ]
            if args.json:
                print(json.dumps(rows, indent=2))
                return 0
            width = max(len(row["name"]) for row in rows)
            for row in rows:
                print(
                    f"{row['name']:<{width}}  {row['generator']:<12} "
                    f"{row['description']}"
                )
            return 0

        if args.scenario_command == "describe":
            spec = _scenario_spec(args)
            payload = {
                "spec": spec.to_dict(),
                "schema": [dict(row) for row in
                           describe_schema(spec.generator)],
                "golden_digest": golden_digest(spec.name),
            }
            print(json.dumps(payload, indent=2))
            return 0

        if args.scenario_command == "trace":
            spec = _scenario_spec(args)
            trace = generate_trace(spec)
            if args.output:
                Path(args.output).write_bytes(trace.to_bytes())
            print(json.dumps({
                "scenario": spec.name,
                "digest": trace.digest(),
                "n_sessions": len(trace.sessions),
                "n_steps": len(trace.steps),
                "n_rounds": trace.n_rounds,
                "golden_digest": golden_digest(spec.name),
                "output": args.output,
            }, indent=2))
            return 0

        # replay
        spec = _scenario_spec(args)
        report = replay(
            spec,
            transport=args.transport,
            verify=not args.no_verify,
            run_cold=not args.no_cold,
            check_digest=False if args.no_digest_check else None,
            isolate_obs=True,
        )
        payload = report.as_dict()
        if args.output:
            Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"scenario {report.scenario}: {report.n_rounds} round(s) over "
            f"{len(report.session_stats)} session(s) via {report.transport}; "
            f"verified={report.verified} "
            f"(max |online-cold| = {report.max_abs_diff:.3g}); "
            f"online {report.online_seconds:.3f}s"
            + (
                f", cold {report.cold_seconds:.3f}s "
                f"(speedup x{report.speedup:.2f})"
                if not args.no_cold else ""
            )
        )
        for phase in sorted(report.phase_summaries):
            summary = report.phase_summaries[phase]
            print(
                f"  {phase:<22} n={summary['count']:<5} "
                f"p50={summary['p50']:.6f}s p95={summary['p95']:.6f}s "
                f"p99={summary['p99']:.6f}s"
            )
        if args.output:
            print(f"report written to {args.output}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_metrics_dump(args) -> int:
    from .obs import get_registry

    registry = get_registry()
    if args.format == "prometheus":
        sys.stdout.write(registry.to_prometheus())
    else:
        print(json.dumps(registry.snapshot(), indent=2))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Unified CLI over the repro imputation service layer.",
    )
    commands = parser.add_subparsers(dest="command")

    impute = commands.add_parser(
        "impute", help="impute a CSV relation with any registry method"
    )
    impute.add_argument("csv", help="CSV file with missing cells")
    impute.add_argument(
        "--method", default="IIM", help="registry method name (default: IIM)"
    )
    impute.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="constructor override, repeatable (e.g. --set k=5)",
    )
    impute.add_argument(
        "--no-header", action="store_true", help="the CSV file has no header row"
    )
    impute.add_argument("--output", metavar="CSV", help="write the imputed relation")

    commands.add_parser(
        "replay",
        help="replay a CSV trace against the online engine "
        "(see 'replay --help' for its arguments)",
        add_help=False,
    )

    serve = commands.add_parser("serve", help="run the JSONL session server")
    transport = serve.add_mutually_exclusive_group()
    transport.add_argument(
        "--stdio", action="store_true",
        help="serve newline-delimited JSON over stdin/stdout (default)",
    )
    transport.add_argument("--port", type=int, help="serve over a TCP socket")
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--artifact-root", default=".", metavar="DIR",
        help="directory save/restore paths are confined to (default: the "
        "working directory)",
    )
    serve.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="write-ahead-log root: every online session logs its mutations "
        "to DIR/<session>/ so they survive a crash (default: no WAL)",
    )
    serve.add_argument(
        "--sync", default="default", metavar="POLICY",
        help="WAL fsync policy: always|batch|off "
        "(default: REPRO_WAL_SYNC or 'batch')",
    )
    serve.add_argument(
        "--deadline", default="default", metavar="SECONDS",
        help="per-request deadline in seconds; overruns answer a 'deadline' "
        "error (default: REPRO_REQUEST_DEADLINE or none)",
    )
    serve.add_argument(
        "--max-request-bytes", default="default", metavar="N",
        help="bound on one request line; longer lines answer a 'protocol' "
        "error (default: REPRO_MAX_REQUEST_BYTES or 1048576)",
    )
    serve.add_argument(
        "--workers", default="default", metavar="N",
        help="worker threads draining session queues; sessions run "
        "concurrently, one session's requests stay ordered "
        "(default: REPRO_SERVE_WORKERS or 4)",
    )
    serve.add_argument(
        "--microbatch-window-ms", default="default", metavar="MS",
        help="how long to hold a single-row impute open for coalescible "
        "followers; 0 coalesces only already-queued requests "
        "(default: REPRO_MICROBATCH_WINDOW_MS or 0)",
    )
    serve.add_argument(
        "--microbatch-max-rows", default="default", metavar="N",
        help="most rows one coalesced impute batch may carry "
        "(default: REPRO_MICROBATCH_MAX_ROWS or 64)",
    )
    serve.add_argument(
        "--max-rows-per-request", default="default", metavar="N",
        help="per-request row quota; larger requests answer a 'quota' "
        "error (default: REPRO_MAX_ROWS_PER_REQUEST or none)",
    )
    serve.add_argument(
        "--max-sessions", default="default", metavar="N",
        help="live-session quota; further create/restore answers a "
        "'quota' error (default: REPRO_MAX_SESSIONS or none)",
    )
    serve.add_argument(
        "--max-queued-requests", default="default", metavar="N",
        help="bound on one session's queued requests; excess answers an "
        "'overloaded' error (default: REPRO_MAX_QUEUED_REQUESTS or 256)",
    )
    serve.add_argument(
        "--auth-token", default=None, metavar="SECRET",
        help="shared-secret auth: every request must carry a matching "
        "'token' field or is answered an 'auth' error (default: no auth)",
    )
    serve.add_argument(
        "--trace-log", default=None, metavar="DIR",
        help="persist sampled request traces as rotated JSONL segments "
        "under DIR (default: in-memory ring only)",
    )
    serve.add_argument(
        "--trace-sample", default="default", metavar="RATE",
        help="fraction of requests whose span tree is captured, in [0, 1] "
        "(default: REPRO_OBS_TRACE_SAMPLE or 0.1; metrics stay complete "
        "for every request regardless)",
    )

    repl = commands.add_parser(
        "repl",
        help="interactive query REPL (statements end with ';'; \\help "
        "lists meta-commands)",
    )
    repl.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="speak to a running TCP serve loop instead of an in-process "
        "server",
    )
    repl.add_argument(
        "--artifact-root", default=".", metavar="DIR",
        help="save/restore confinement for the in-process server "
        "(default: the working directory)",
    )
    repl.add_argument(
        "--auth-token", default=None, metavar="SECRET",
        help="token sent with every request (for servers started with "
        "--auth-token)",
    )
    repl.add_argument(
        "--session", default=None, metavar="NAME",
        help="session to \\use on startup (default: none selected)",
    )

    recover = commands.add_parser(
        "recover",
        help="rebuild an online session from its write-ahead log after a crash",
    )
    recover.add_argument(
        "wal_dir", help="the session's WAL directory (e.g. wal/<session>)"
    )
    recover.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="last saved artifact to replay the WAL tail onto "
        "(default: WAL-only recovery from the logged config)",
    )
    recover.add_argument(
        "--output", default=None, metavar="PATH",
        help="write a fresh checkpoint of the recovered session; this "
        "truncates the WAL, so keep a copy if you need the old segments",
    )
    recover.add_argument(
        "--json", action="store_true", help="print the recovery report as JSON"
    )

    bench = commands.add_parser(
        "bench", help="measure facade overhead and serve-loop throughput"
    )
    bench.add_argument(
        "--profile", default=None, help="scale profile (smoke|bench|paper)"
    )
    bench.add_argument(
        "--output", default="BENCH_api.json",
        help="report path (default: BENCH_api.json)",
    )

    scenario = commands.add_parser(
        "scenario",
        help="list, describe, trace, and replay parametric workload "
        "scenarios from the registry",
    )
    scenario_commands = scenario.add_subparsers(
        dest="scenario_command", required=True
    )

    scenario_list = scenario_commands.add_parser(
        "list", help="list the registered scenarios"
    )
    scenario_list.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )
    scenario_list.add_argument(
        "--names", action="store_true",
        help="one bare name per line (for shell loops)",
    )

    def _spec_args(sub):
        sub.add_argument(
            "name", nargs="?", default=None,
            help="registered scenario name (omit with --spec)",
        )
        sub.add_argument(
            "--spec", default=None, metavar="JSON",
            help="load the scenario spec from a JSON file instead of the "
            "registry",
        )

    scenario_describe = scenario_commands.add_parser(
        "describe",
        help="print one spec and its generator's parameter schema as JSON",
    )
    _spec_args(scenario_describe)

    scenario_replay = scenario_commands.add_parser(
        "replay",
        help="replay a scenario with cold-refit verification and per-phase "
        "latency percentiles",
    )
    _spec_args(scenario_replay)
    scenario_replay.add_argument(
        "--transport", default=None,
        choices=("auto", "engine", "serve", "tcp"),
        help="how to drive the trace (default: REPRO_SCENARIO_TRANSPORT or "
        "'auto' — serve loop for multi-tenant scenarios, direct engine "
        "otherwise)",
    )
    scenario_replay.add_argument(
        "--no-verify", action="store_true",
        help="report divergence from the cold oracle instead of failing",
    )
    scenario_replay.add_argument(
        "--no-cold", action="store_true",
        help="skip the cold-refit oracle entirely (pure latency run)",
    )
    scenario_replay.add_argument(
        "--no-digest-check", action="store_true",
        help="skip the golden trace digest pre-check",
    )
    scenario_replay.add_argument(
        "--output", default=None, metavar="JSON",
        help="write the full replay report (steps, phases, stats) as JSON",
    )

    scenario_trace = scenario_commands.add_parser(
        "trace",
        help="generate a scenario's deterministic trace and print its digest",
    )
    _spec_args(scenario_trace)
    scenario_trace.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the canonical trace bytes to FILE",
    )

    metrics_dump = commands.add_parser(
        "metrics-dump",
        help="print the observability metric catalogue (JSON or Prometheus "
        "text); zero-valued in a fresh process",
    )
    metrics_dump.add_argument(
        "--format", default="json", choices=("json", "prometheus"),
        help="output format (default: json)",
    )

    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = _build_parser()
    # `replay` forwards everything after the subcommand to the trace-replay
    # parser unchanged, so the deprecated entry point and the consolidated
    # CLI accept identical arguments.
    if argv and argv[0] == "replay":
        return _cmd_replay(None, argv[1:])
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "impute":
        return _cmd_impute(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "repl":
        return _cmd_repl(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "metrics-dump":
        return _cmd_metrics_dump(args)
    if args.command == "scenario":
        if (
            args.scenario_command != "list"
            and args.name is None
            and not getattr(args, "spec", None)
        ):
            parser.error(
                f"scenario {args.scenario_command}: a scenario name or "
                f"--spec FILE is required"
            )
        return _cmd_scenario(args)
    return _cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())
