"""Internal argument- and array-validation helpers.

These helpers centralise the defensive checks used across the package so the
individual algorithms stay focused on the mathematics.  They always raise
exceptions from :mod:`repro.exceptions`, never bare ``ValueError``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .exceptions import ConfigurationError, DataError

__all__ = [
    "as_float_matrix",
    "as_float_vector",
    "check_consistent_length",
    "check_positive_int",
    "check_non_negative_int",
    "check_positive_float",
    "check_fraction",
    "check_in_choices",
    "check_random_state",
]


def as_float_matrix(data, name: str = "X", allow_nan: bool = False) -> np.ndarray:
    """Convert ``data`` to a 2-D float64 array, validating its contents.

    Parameters
    ----------
    data:
        Array-like of shape ``(n, m)``.
    name:
        Name used in error messages.
    allow_nan:
        Whether NaN entries (missing values) are permitted.

    Returns
    -------
    numpy.ndarray
        A C-contiguous float64 matrix.
    """
    try:
        array = np.asarray(data, dtype=float)
    except (TypeError, ValueError) as exc:
        raise DataError(f"{name} could not be converted to a float array: {exc}") from exc
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise DataError(f"{name} must be 2-dimensional, got shape {array.shape}")
    if array.shape[0] == 0:
        raise DataError(f"{name} must contain at least one row")
    if array.shape[1] == 0:
        raise DataError(f"{name} must contain at least one column")
    if not allow_nan and not np.all(np.isfinite(array)):
        raise DataError(f"{name} contains NaN or infinite values")
    if allow_nan and np.any(np.isinf(array)):
        raise DataError(f"{name} contains infinite values")
    return np.ascontiguousarray(array)


def as_float_vector(data, name: str = "y", allow_nan: bool = False) -> np.ndarray:
    """Convert ``data`` to a 1-D float64 array, validating its contents."""
    try:
        array = np.asarray(data, dtype=float)
    except (TypeError, ValueError) as exc:
        raise DataError(f"{name} could not be converted to a float array: {exc}") from exc
    array = np.ravel(array)
    if array.shape[0] == 0:
        raise DataError(f"{name} must contain at least one element")
    if not allow_nan and not np.all(np.isfinite(array)):
        raise DataError(f"{name} contains NaN or infinite values")
    if allow_nan and np.any(np.isinf(array)):
        raise DataError(f"{name} contains infinite values")
    return array


def check_consistent_length(*arrays, names: Optional[Sequence[str]] = None) -> None:
    """Raise :class:`DataError` unless all arrays share the same first dimension."""
    lengths = [np.asarray(a).shape[0] for a in arrays]
    if len(set(lengths)) > 1:
        if names is None:
            names = [f"array{i}" for i in range(len(arrays))]
        described = ", ".join(f"{n}={length}" for n, length in zip(names, lengths))
        raise DataError(f"inconsistent first dimensions: {described}")


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative_int(value, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive_float(value, name: str, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a finite float > 0 (or >= 0) and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
    if allow_zero:
        if value < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_fraction(value, name: str, inclusive: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1)`` (or ``[0, 1]``) and return it."""
    value = check_positive_float(value, name, allow_zero=inclusive)
    if inclusive:
        if value > 1:
            raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    elif value >= 1:
        raise ConfigurationError(f"{name} must be in (0, 1), got {value}")
    return value


def check_in_choices(value, name: str, choices: Iterable) -> object:
    """Validate that ``value`` is one of ``choices`` and return it unchanged."""
    choices = tuple(choices)
    if value not in choices:
        raise ConfigurationError(f"{name} must be one of {choices}, got {value!r}")
    return value


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    ``Generator`` which is returned unchanged.
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise ConfigurationError(
        f"random_state must be None, an int, or a numpy Generator, got {seed!r}"
    )
