"""LOESS imputation (Cleveland & Loader) — local regression over neighbours.

For each incomplete tuple the method fits a tri-cube-weighted local linear
regression over its ``k`` nearest complete neighbours and evaluates it at
the tuple.  Unlike IIM, the regression is fitted *online per incomplete
tuple*, which the paper highlights as the source of LOESS's high imputation
time (Figures 4b, 5b).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_positive_int
from ..regression import LoessRegression
from .base import BaseImputer

__all__ = ["LoessImputer"]


class LoessImputer(BaseImputer):
    """Locally weighted regression imputation.

    Parameters
    ----------
    k:
        Number of neighbours defining the local fit (the span).
    metric:
        Distance metric for the neighbour search.
    """

    name = "LOESS"

    def __init__(self, k: int = 20, metric: str = "paper_euclidean"):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.metric = metric

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        model = LoessRegression(n_neighbors=self.k, metric=self.metric).fit(features, target)
        return model.predict(queries)
