"""The paper's baseline imputation methods (Table II) and the shared base class."""

from .base import AttributeImputationTask, BaseImputer
from .blr import BLRImputer
from .eracer import ERACERImputer
from .glr import GLRImputer
from .gmm_impute import GMMImputer
from .ifc import IFCImputer
from .ills import ILLSImputer
from .knn import KNNImputer
from .knne import KNNEnsembleImputer
from .loess_impute import LoessImputer
from .mean import MeanImputer
from .pmm import PMMImputer
from .registry import (
    IMPUTER_FACTORIES,
    METHOD_SPECS,
    MethodCapabilities,
    MethodSpec,
    available_methods,
    figure_comparison_methods,
    make_imputer,
    method_capabilities,
    method_spec,
    paper_table2_methods,
)
from .svd_impute import SVDImputer
from .xgb import XGBImputer

__all__ = [
    "BaseImputer",
    "AttributeImputationTask",
    "MeanImputer",
    "KNNImputer",
    "KNNEnsembleImputer",
    "IFCImputer",
    "GMMImputer",
    "SVDImputer",
    "ILLSImputer",
    "GLRImputer",
    "LoessImputer",
    "BLRImputer",
    "ERACERImputer",
    "PMMImputer",
    "XGBImputer",
    "IMPUTER_FACTORIES",
    "METHOD_SPECS",
    "MethodSpec",
    "MethodCapabilities",
    "method_spec",
    "method_capabilities",
    "make_imputer",
    "available_methods",
    "paper_table2_methods",
    "figure_comparison_methods",
]
