"""Iterative fuzzy-clustering imputation (Nikfalazar et al.) — the IFC baseline.

The complete tuples are clustered with fuzzy c-means.  For an incomplete
tuple, its membership in each cluster is computed from the complete
attributes ``F`` (against the cluster centroids restricted to ``F``), and
the missing value is the membership-weighted combination of the centroids'
values on the incomplete attribute.  An optional refinement loop re-computes
memberships after plugging the current imputation back in, mirroring the
"iterative" part of the original method.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_non_negative_int, check_positive_float, check_positive_int
from ..cluster import FuzzyCMeans
from .base import BaseImputer

__all__ = ["IFCImputer"]


class IFCImputer(BaseImputer):
    """Fuzzy-cluster-average imputation.

    Parameters
    ----------
    n_clusters:
        Number of fuzzy clusters.
    fuzziness:
        Fuzzifier of the c-means objective (> 1).
    n_refinements:
        Number of refinement rounds re-estimating memberships with the
        imputed value plugged in (0 = single pass).
    random_state:
        Seed for the clustering initialisation.
    """

    name = "IFC"

    def __init__(
        self,
        n_clusters: int = 5,
        fuzziness: float = 2.0,
        n_refinements: int = 2,
        random_state=0,
    ):
        super().__init__()
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.fuzziness = check_positive_float(fuzziness, "fuzziness")
        self.n_refinements = check_non_negative_int(n_refinements, "n_refinements")
        self.random_state = random_state
        self._model: FuzzyCMeans = None

    def _fit(self, complete) -> None:
        n_clusters = min(self.n_clusters, complete.n_tuples)
        self._model = FuzzyCMeans(
            n_clusters=n_clusters,
            fuzziness=self.fuzziness,
            random_state=self.random_state,
        ).fit(complete.raw)

    @staticmethod
    def _membership(queries: np.ndarray, centers: np.ndarray, fuzziness: float) -> np.ndarray:
        distances = np.sqrt(np.sum((queries[:, None, :] - centers[None, :, :]) ** 2, axis=2))
        distances = np.maximum(distances, 1e-12)
        power = 2.0 / (fuzziness - 1.0)
        ratio = distances[:, :, None] / distances[:, None, :]
        return 1.0 / np.sum(ratio ** power, axis=2)

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        centers = self._model.cluster_centers_
        feature_centers = centers[:, list(feature_indices)]
        target_centers = centers[:, target_index]

        membership = self._membership(queries, feature_centers, self.fuzziness)
        estimates = membership @ target_centers

        # Iterative refinement: recompute memberships in the *full* attribute
        # space with the current estimate substituted for the missing value.
        for _ in range(self.n_refinements):
            augmented = np.empty((queries.shape[0], centers.shape[1]))
            augmented[:, list(feature_indices)] = queries
            augmented[:, target_index] = estimates
            membership = self._membership(augmented, centers, self.fuzziness)
            estimates = membership @ target_centers
        return estimates
