"""ERACER-style neighbour regression (Mayfield et al.) — combining g and h.

ERACER models each attribute with a regression over *both* the tuple's own
other attributes (the attribute model ``g``) and aggregate statistics of its
neighbours (the tuple model ``h``) — e.g. a sensor's temperature depends on
its own humidity and on its neighbours' temperature and humidity.  Inference
iterates the regressions until the imputed values stabilise.

This implementation builds, for every tuple, the neighbour-mean vector over
its ``k`` nearest complete tuples and fits a ridge regression from
``[own F values, neighbour means of all attributes]`` to the incomplete
attribute, then applies it to the incomplete tuples with a small number of
refinement rounds.

Backends
--------
The neighbour-mean construction and prediction exist in two implementations
selected through :mod:`repro.config` (or the ``backend`` constructor
argument): ``"vectorized"`` (default) batches the neighbour searches, the
per-tuple neighbour means and the regression predictions over whole blocks
of tuples, while ``"loop"`` iterates tuple by tuple as the executable
reference.  The test suite asserts both agree to ``rtol = 1e-9``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..config import resolve_backend
from ..neighbors import BruteForceNeighbors
from ..regression import RidgeRegression
from .base import BaseImputer

__all__ = ["ERACERImputer"]


class ERACERImputer(BaseImputer):
    """Relational (neighbour-augmented) regression imputation.

    Parameters
    ----------
    k:
        Number of neighbours whose attribute means augment the regression.
    n_iterations:
        Number of refinement rounds after the initial prediction.
    metric:
        Distance metric for the neighbour searches.
    backend:
        ``"vectorized"``, ``"loop"``, or ``None`` (default) to follow the
        global knob of :mod:`repro.config`.
    """

    name = "ERACER"

    def __init__(
        self,
        k: int = 10,
        n_iterations: int = 2,
        metric: str = "paper_euclidean",
        backend: Optional[str] = None,
    ):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.n_iterations = check_non_negative_int(n_iterations, "n_iterations")
        self.metric = metric
        self.backend = None if backend is None else resolve_backend(backend)

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        backend = resolve_backend(self.backend)
        if backend == "loop":
            return self._impute_loop(
                features, target, queries, feature_indices, target_index
            )
        complete = self._complete_values
        n_complete = features.shape[0]
        feature_idx = list(feature_indices)
        width = complete.shape[1]

        searcher = BruteForceNeighbors(metric=self.metric, backend=backend).fit(features)

        # Training side: augment every complete tuple with the mean attribute
        # vector of its nearest neighbours (excluding itself when possible) —
        # one batched search and one batched gather/mean over all tuples.
        if n_complete > 1:
            train_k = min(self.k, n_complete - 1)
            _, train_neighbors = searcher.kneighbors(features, train_k, exclude_self=True)
        else:
            _, train_neighbors = searcher.kneighbors(features, 1)
        train_neighbor_means = complete[train_neighbors].mean(axis=1)
        train_design = np.hstack([features, train_neighbor_means])
        model = RidgeRegression().fit(train_design, target)

        # Query side: initial neighbour means from the complete attributes.
        effective_k = min(self.k, features.shape[0])
        _, query_neighbors = searcher.kneighbors(queries, effective_k)
        query_neighbor_means = complete[query_neighbors].mean(axis=1)
        query_design = np.hstack([queries, query_neighbor_means])
        estimates = model.predict(query_design)

        # Refinement: re-select neighbours in the full attribute space using
        # the current estimates (relational message passing, simplified).
        full_searcher = BruteForceNeighbors(metric=self.metric, backend=backend).fit(
            complete
        )
        for _ in range(self.n_iterations):
            augmented = np.empty((queries.shape[0], width))
            augmented[:, feature_idx] = queries
            augmented[:, target_index] = estimates
            _, neighbor_sets = full_searcher.kneighbors(augmented, effective_k)
            neighbor_means = complete[neighbor_sets].mean(axis=1)
            estimates = model.predict(np.hstack([queries, neighbor_means]))
        return estimates

    def _impute_loop(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        """Reference implementation: one tuple at a time."""
        complete = self._complete_values
        n_complete = features.shape[0]
        feature_idx = list(feature_indices)
        width = complete.shape[1]

        searcher = BruteForceNeighbors(metric=self.metric, backend="loop").fit(features)

        train_design = np.empty((n_complete, features.shape[1] + width))
        for i in range(n_complete):
            if n_complete > 1:
                train_k = min(self.k, n_complete - 1)
                _, neighbors = searcher.kneighbors(
                    features[i], train_k, exclude_self=True
                )
            else:
                _, neighbors = searcher.kneighbors(features[i], 1)
            train_design[i, : features.shape[1]] = features[i]
            train_design[i, features.shape[1]:] = complete[neighbors].mean(axis=0)
        model = RidgeRegression().fit(train_design, target)

        effective_k = min(self.k, n_complete)
        q = queries.shape[0]
        estimates = np.empty(q)
        for i in range(q):
            _, neighbors = searcher.kneighbors(queries[i], effective_k)
            design = np.concatenate([queries[i], complete[neighbors].mean(axis=0)])
            estimates[i] = model.predict(design.reshape(1, -1))[0]

        full_searcher = BruteForceNeighbors(metric=self.metric, backend="loop").fit(
            complete
        )
        for _ in range(self.n_iterations):
            for i in range(q):
                augmented = np.empty(width)
                augmented[feature_idx] = queries[i]
                augmented[target_index] = estimates[i]
                _, neighbors = full_searcher.kneighbors(augmented, effective_k)
                design = np.concatenate(
                    [queries[i], complete[neighbors].mean(axis=0)]
                )
                estimates[i] = model.predict(design.reshape(1, -1))[0]
        return estimates
