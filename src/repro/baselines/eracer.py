"""ERACER-style neighbour regression (Mayfield et al.) — combining g and h.

ERACER models each attribute with a regression over *both* the tuple's own
other attributes (the attribute model ``g``) and aggregate statistics of its
neighbours (the tuple model ``h``) — e.g. a sensor's temperature depends on
its own humidity and on its neighbours' temperature and humidity.  Inference
iterates the regressions until the imputed values stabilise.

This implementation builds, for every tuple, the neighbour-mean vector over
its ``k`` nearest complete tuples and fits a ridge regression from
``[own F values, neighbour means of all attributes]`` to the incomplete
attribute, then applies it to the incomplete tuples with a small number of
refinement rounds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..neighbors import BruteForceNeighbors
from ..regression import RidgeRegression
from .base import BaseImputer

__all__ = ["ERACERImputer"]


class ERACERImputer(BaseImputer):
    """Relational (neighbour-augmented) regression imputation.

    Parameters
    ----------
    k:
        Number of neighbours whose attribute means augment the regression.
    n_iterations:
        Number of refinement rounds after the initial prediction.
    metric:
        Distance metric for the neighbour searches.
    """

    name = "ERACER"

    def __init__(self, k: int = 10, n_iterations: int = 2, metric: str = "paper_euclidean"):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.n_iterations = check_non_negative_int(n_iterations, "n_iterations")
        self.metric = metric

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        complete = self._complete_values
        n_complete = features.shape[0]
        feature_idx = list(feature_indices)
        width = complete.shape[1]

        searcher = BruteForceNeighbors(metric=self.metric).fit(features)

        # Training side: augment every complete tuple with the mean attribute
        # vector of its nearest neighbours (excluding itself when possible).
        if n_complete > 1:
            train_k = min(self.k, n_complete - 1)
            _, train_neighbors = searcher.kneighbors(features, train_k, exclude_self=True)
        else:
            _, train_neighbors = searcher.kneighbors(features, 1)
        train_neighbor_means = complete[train_neighbors].mean(axis=1)
        train_design = np.hstack([features, train_neighbor_means])
        model = RidgeRegression().fit(train_design, target)

        # Query side: initial neighbour means from the complete attributes.
        effective_k = min(self.k, features.shape[0])
        _, query_neighbors = searcher.kneighbors(queries, effective_k)
        query_neighbor_means = complete[query_neighbors].mean(axis=1)
        query_design = np.hstack([queries, query_neighbor_means])
        estimates = model.predict(query_design)

        # Refinement: re-select neighbours in the full attribute space using
        # the current estimates (relational message passing, simplified).
        full_searcher = BruteForceNeighbors(metric=self.metric).fit(complete)
        for _ in range(self.n_iterations):
            augmented = np.empty((queries.shape[0], width))
            augmented[:, feature_idx] = queries
            augmented[:, target_index] = estimates
            _, neighbor_sets = full_searcher.kneighbors(augmented, effective_k)
            neighbor_means = complete[neighbor_sets].mean(axis=1)
            estimates = model.predict(np.hstack([queries, neighbor_means]))
        return estimates
