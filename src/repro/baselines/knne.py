"""kNN ensemble imputation (Domeniconi & Yan) — the paper's kNNE baseline.

kNNE finds *different groups* of ``k`` neighbours by computing distances on
various subsets of the complete attributes, imputes with each group, and
combines the per-group results.  We use the standard leave-one-attribute-out
subsets of ``F`` plus ``F`` itself, averaging the group means.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .._validation import check_positive_int
from ..neighbors import BruteForceNeighbors
from .base import BaseImputer

__all__ = ["KNNEnsembleImputer"]


class KNNEnsembleImputer(BaseImputer):
    """Ensemble of kNN imputations over attribute subsets.

    Parameters
    ----------
    k:
        Number of neighbours per group.
    metric:
        Distance metric used for every group's neighbour search.
    """

    name = "kNNE"

    def __init__(self, k: int = 10, metric: str = "paper_euclidean"):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.metric = metric

    @staticmethod
    def _attribute_subsets(n_features: int) -> List[List[int]]:
        """The full feature set plus each leave-one-out subset (when possible)."""
        subsets: List[List[int]] = [list(range(n_features))]
        if n_features > 1:
            for drop in range(n_features):
                subsets.append([i for i in range(n_features) if i != drop])
        return subsets

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        k = min(self.k, features.shape[0])
        estimates = np.zeros(queries.shape[0])
        subsets = self._attribute_subsets(features.shape[1])
        for subset in subsets:
            searcher = BruteForceNeighbors(metric=self.metric).fit(features[:, subset])
            _, indices = searcher.kneighbors(queries[:, subset], k)
            estimates += target[indices].mean(axis=1)
        return estimates / len(subsets)
