"""Predictive mean matching (Landerman et al.) — the paper's PMM baseline.

PMM does not return the value predicted by the regression.  Instead it
predicts ``t'_x[A_m]`` with a (Bayesian) linear regression, finds the
complete tuples whose *own predictions* under the same regression are
closest to ``t'_x[A_m]`` (the donor pool), and returns the *observed* value
of a randomly chosen donor.  This keeps imputations inside the observed
value domain, at the cost of accuracy on sparse data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_positive_int, check_random_state
from ..regression import BayesianLinearRegression
from .base import BaseImputer

__all__ = ["PMMImputer"]


class PMMImputer(BaseImputer):
    """Predictive-mean-matching imputation.

    Parameters
    ----------
    n_donors:
        Size of the donor pool (MICE's default is 5).
    random_state:
        Seed controlling the regression draw and the donor selection.
    """

    name = "PMM"

    def __init__(self, n_donors: int = 5, random_state=None):
        super().__init__()
        self.n_donors = check_positive_int(n_donors, "n_donors")
        self.random_state = random_state

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        rng = check_random_state(self.random_state)
        model = BayesianLinearRegression(sample=False, random_state=rng).fit(features, target)
        donor_predictions = model.predict(features)
        # MICE draws the query-side predictions from the posterior; we follow
        # the same scheme so the donor matching has the stochastic flavour of
        # mice.pmm while staying reproducible under a fixed seed.
        drawn_coefficients = model.sample_coefficients()
        design = np.hstack([np.ones((queries.shape[0], 1)), queries])
        query_predictions = design @ drawn_coefficients

        n_donors = min(self.n_donors, features.shape[0])
        imputations = np.empty(queries.shape[0])
        for i, prediction in enumerate(query_predictions):
            gaps = np.abs(donor_predictions - prediction)
            donor_pool = np.argsort(gaps, kind="stable")[:n_donors]
            chosen = donor_pool[rng.integers(0, donor_pool.shape[0])]
            imputations[i] = target[chosen]
        return imputations
