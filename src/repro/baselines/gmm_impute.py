"""Gaussian-mixture-model imputation (Yan et al.) — the GMM baseline.

A Gaussian mixture is fitted over the complete tuples (all attributes).  For
an incomplete tuple the responsibilities of each component are computed from
the *marginal* distribution of the observed attributes ``F``, and the missing
value is the responsibility-weighted sum of each component's *conditional
mean* of the incomplete attribute given the observed values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_positive_int
from ..cluster import GaussianMixture
from .base import BaseImputer

__all__ = ["GMMImputer"]


class GMMImputer(BaseImputer):
    """Conditional-mean imputation under a Gaussian mixture.

    Parameters
    ----------
    n_components:
        Number of mixture components.
    random_state:
        Seed for the EM initialisation.
    """

    name = "GMM"

    def __init__(self, n_components: int = 5, random_state=0):
        super().__init__()
        self.n_components = check_positive_int(n_components, "n_components")
        self.random_state = random_state
        self._model: GaussianMixture = None

    def _fit(self, complete) -> None:
        n_components = min(self.n_components, complete.n_tuples)
        self._model = GaussianMixture(
            n_components=n_components,
            random_state=self.random_state,
        ).fit(complete.raw)

    @staticmethod
    def _marginal_log_density(
        queries: np.ndarray, mean: np.ndarray, covariance: np.ndarray
    ) -> np.ndarray:
        d = queries.shape[1]
        diff = queries - mean
        covariance = covariance + 1e-9 * np.eye(d)
        chol = np.linalg.cholesky(covariance)
        z = np.linalg.solve(chol, diff.T)
        mahalanobis = np.sum(z * z, axis=0)
        log_det = 2.0 * np.sum(np.log(np.diag(chol)))
        return -0.5 * (d * np.log(2.0 * np.pi) + log_det + mahalanobis)

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        model = self._model
        feature_idx = list(feature_indices)
        n_components = model.means_.shape[0]
        q = queries.shape[0]

        log_weights = np.log(np.maximum(model.weights_, 1e-12))
        log_resp = np.empty((q, n_components))
        conditional_means = np.empty((q, n_components))
        for c in range(n_components):
            mean = model.means_[c]
            covariance = model.covariances_[c]
            mean_f = mean[feature_idx]
            mean_t = mean[target_index]
            cov_ff = covariance[np.ix_(feature_idx, feature_idx)]
            cov_tf = covariance[target_index, feature_idx]
            log_resp[:, c] = log_weights[c] + self._marginal_log_density(queries, mean_f, cov_ff)
            # Conditional mean of the target given the observed attributes.
            cov_ff_reg = cov_ff + 1e-9 * np.eye(cov_ff.shape[0])
            solved = np.linalg.solve(cov_ff_reg, (queries - mean_f).T)
            conditional_means[:, c] = mean_t + cov_tf @ solved

        # Normalise responsibilities in log space for stability.
        max_log = log_resp.max(axis=1, keepdims=True)
        responsibilities = np.exp(log_resp - max_log)
        responsibilities /= responsibilities.sum(axis=1, keepdims=True)
        return np.sum(responsibilities * conditional_means, axis=1)
