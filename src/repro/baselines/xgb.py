"""Gradient-boosted-tree imputation — the paper's XGB baseline.

The paper trains an xgboost regressor from the complete attributes ``F`` to
the incomplete attribute and predicts the missing value.  This module uses
the from-scratch :class:`~repro.trees.GradientBoostingRegressor` (same model
family: an additive ensemble of shallow regression trees with shrinkage).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_non_negative_int, check_positive_float, check_positive_int
from ..trees import GradientBoostingRegressor
from .base import BaseImputer

__all__ = ["XGBImputer"]


class XGBImputer(BaseImputer):
    """Tree-boosting imputation.

    Parameters
    ----------
    n_estimators, learning_rate, max_depth, subsample:
        Boosting hyper-parameters forwarded to the regressor.
    random_state:
        Seed controlling row subsampling and split tie-breaking.
    """

    name = "XGB"

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 0.9,
        random_state: Optional[int] = 0,
    ):
        super().__init__()
        self.n_estimators = check_positive_int(n_estimators, "n_estimators")
        self.learning_rate = check_positive_float(learning_rate, "learning_rate")
        self.max_depth = check_non_negative_int(max_depth, "max_depth")
        self.subsample = check_positive_float(subsample, "subsample")
        self.random_state = random_state

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        model = GradientBoostingRegressor(
            n_estimators=self.n_estimators,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            subsample=self.subsample,
            random_state=self.random_state,
        ).fit(features, target)
        return model.predict(queries)
