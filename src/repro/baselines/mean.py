"""Mean imputation (Farhangfar et al.) — the "global average" tuple model.

Every missing value on attribute ``A_x`` is replaced by the mean of that
attribute over all complete tuples.  It is the degenerate tuple-model method
where the neighbour set ``T_x`` is the whole relation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import BaseImputer

__all__ = ["MeanImputer"]


class MeanImputer(BaseImputer):
    """Impute each missing cell with the column mean of the complete tuples."""

    name = "Mean"

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        return np.full(queries.shape[0], float(target.mean()))
