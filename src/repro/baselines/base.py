"""Shared interface and orchestration for all imputation methods.

Every imputer in this library (the paper's baselines in Table II and the
proposed IIM) follows the same two-call protocol:

* ``fit(relation)`` — remember the complete tuples ``r`` of the relation
  (incomplete tuples are ignored for fitting) and run any method-specific
  offline learning;
* ``impute(relation)`` — return a copy of the relation with every missing
  cell filled.

The orchestration in :class:`BaseImputer` follows the paper's protocol: each
incomplete tuple has its missing attributes imputed one at a time, using the
remaining attributes as the complete attributes ``F``.  When a tuple has
several missing attributes (the real-world MAM/HEP datasets) the *query*
features are pre-filled with column means so every method always sees a
fully-observed feature vector; the pre-filled values are only used as query
context, never returned as imputations.

Concrete methods implement a single hook,
:meth:`BaseImputer._impute_attribute`, which receives the complete data
split into features/target for one incomplete attribute and the query rows
to impute, and returns the imputed values.  Grouping queries per attribute
lets methods train one model per incomplete attribute instead of one per
cell.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.missing import InjectionResult
from ..data.relation import Relation
from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..obs import observe_imputed_cells

__all__ = ["BaseImputer", "AttributeImputationTask"]


class AttributeImputationTask:
    """All missing cells sharing the same incomplete attribute.

    Attributes
    ----------
    target_index:
        Column index of the incomplete attribute ``A_x``.
    feature_indices:
        Column indices of the complete attributes ``F = R \\ {A_x}``.
    rows:
        Row indices (into the dirty relation) of the tuples to impute.
    queries:
        Query feature matrix of shape ``(len(rows), len(feature_indices))``;
        any originally-missing feature cells are pre-filled with column means.
    """

    def __init__(
        self,
        target_index: int,
        feature_indices: Sequence[int],
        rows: Sequence[int],
        queries: np.ndarray,
    ):
        self.target_index = int(target_index)
        self.feature_indices = list(int(i) for i in feature_indices)
        self.rows = list(int(r) for r in rows)
        self.queries = np.asarray(queries, dtype=float)

    def __len__(self) -> int:
        return len(self.rows)


class BaseImputer(ABC):
    """Abstract base class for all imputation methods.

    Subclasses must set a class-level ``name`` (the short label used in the
    paper's tables) and implement :meth:`_impute_attribute`.  They may also
    override :meth:`_fit` for offline learning over the complete tuples.
    """

    #: Short method label, e.g. ``"kNN"`` or ``"IIM"``.
    name: str = "base"

    def __init__(self) -> None:
        self._fitted_relation: Optional[Relation] = None
        self._complete_values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, relation: Relation) -> "BaseImputer":
        """Learn from the complete tuples of ``relation``.

        The relation may already contain missing cells; only its complete
        part is used as the paper's relation ``r``.
        """
        if not isinstance(relation, Relation):
            raise DataError("fit expects a Relation")
        complete = relation.complete_part()
        if complete.n_tuples == 0:
            raise DataError("cannot fit an imputer: the relation has no complete tuple")
        self._fitted_relation = complete
        self._complete_values = complete.raw.copy()
        self._fit(complete)
        self._observe_counts(fits=1)
        return self

    def _fit(self, complete: Relation) -> None:
        """Optional offline learning hook; default is a no-op."""

    @property
    def fitted_relation(self) -> Relation:
        """The complete relation ``r`` the imputer was fitted on."""
        self._check_fitted()
        return self._fitted_relation

    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted_relation is not None

    def _check_fitted(self) -> None:
        if self._fitted_relation is None:
            raise NotFittedError(f"{type(self).__name__} must be fitted before imputing")

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def _observe_counts(self, **increments) -> None:
        # Lazily initialised so a subclass skipping super().__init__ still
        # counts correctly.
        counters = getattr(self, "_observed_counters", None)
        if counters is None:
            counters = {"fits": 0, "impute_batches": 0, "imputed_cells": 0}
            self._observed_counters = counters
        for name, amount in increments.items():
            counters[name] = counters.get(name, 0) + int(amount)

    def observe(self) -> Dict[str, int]:
        """Lifetime usage counters, uniform across batch and online.

        Same names as :attr:`OnlineImputationEngine.stats` uses for the
        imputation surface (``impute_batches``, ``imputed_cells``), so a
        batch session and an online session report comparable counters.
        """
        counters = getattr(self, "_observed_counters", None)
        if counters is None:
            return {"fits": 0, "impute_batches": 0, "imputed_cells": 0}
        return dict(counters)

    # ------------------------------------------------------------------ #
    # Imputation
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        """Impute one incomplete attribute for a batch of query tuples.

        Parameters
        ----------
        features:
            Complete tuples restricted to ``F`` — shape ``(n, |F|)``.
        target:
            Complete tuples' values on the incomplete attribute — shape ``(n,)``.
        queries:
            Query tuples restricted to ``F`` — shape ``(q, |F|)``.
        feature_indices, target_index:
            Column positions of ``F`` and ``A_x`` in the original schema,
            available to methods that need the full-width complete data.

        Returns
        -------
        numpy.ndarray
            Imputed values of shape ``(q,)``.
        """

    def _build_tasks(self, relation: Relation) -> List[AttributeImputationTask]:
        values = relation.raw
        mask = np.isnan(values)
        if not mask.any():
            return []
        column_means = self._fitted_relation.column_means(skip_missing=False)
        filled = np.where(mask, column_means[None, :], values)

        tasks: List[AttributeImputationTask] = []
        for target_index in range(relation.n_attributes):
            rows = np.flatnonzero(mask[:, target_index])
            if rows.size == 0:
                continue
            feature_indices = [i for i in range(relation.n_attributes) if i != target_index]
            if not feature_indices:
                raise DataError("cannot impute a relation with a single attribute")
            queries = filled[np.ix_(rows, feature_indices)]
            tasks.append(
                AttributeImputationTask(
                    target_index=target_index,
                    feature_indices=feature_indices,
                    rows=rows,
                    queries=queries,
                )
            )
        return tasks

    def impute(self, relation: Relation) -> Relation:
        """Return a copy of ``relation`` with every missing cell filled."""
        self._check_fitted()
        if not isinstance(relation, Relation):
            raise DataError("impute expects a Relation")
        if relation.n_attributes != self._fitted_relation.n_attributes:
            raise DataError(
                "relation width does not match the relation the imputer was fitted on"
            )
        tasks = self._build_tasks(relation)
        if not tasks:
            self._observe_counts(impute_batches=1)
            return relation.copy()

        values = relation.values
        complete = self._complete_values
        for task in tasks:
            features = complete[:, task.feature_indices]
            target = complete[:, task.target_index]
            imputed = np.asarray(
                self._impute_attribute(
                    features, target, task.queries, task.feature_indices, task.target_index
                ),
                dtype=float,
            ).ravel()
            if imputed.shape[0] != len(task):
                raise DataError(
                    f"{type(self).__name__} returned {imputed.shape[0]} imputations "
                    f"for {len(task)} queries"
                )
            values[task.rows, task.target_index] = imputed
        n_imputed = sum(len(task) for task in tasks)
        self._observe_counts(impute_batches=1, imputed_cells=n_imputed)
        observe_imputed_cells(n_imputed, kind="batch")
        return relation.with_values(values)

    # ------------------------------------------------------------------ #
    # Artifact persistence (see repro.online.artifacts)
    # ------------------------------------------------------------------ #
    def get_params(self) -> Dict[str, object]:
        """Constructor parameters, introspected from ``__init__``.

        Relies on the library-wide convention that every constructor stores
        each argument under an attribute of the same name; a subclass that
        deviates must override this method.
        """
        params: Dict[str, object] = {}
        signature = inspect.signature(type(self).__init__)
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if not hasattr(self, name):
                raise ConfigurationError(
                    f"{type(self).__name__} does not store constructor argument "
                    f"{name!r} as an attribute; override get_params()"
                )
            params[name] = getattr(self, name)
        return params

    def _artifact_payload(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Extra fitted state to persist: ``(manifest metadata, arrays)``.

        The default persists nothing beyond the fitted relation; subclasses
        with expensive derived state (e.g. IIM's learned per-tuple models)
        override this together with :meth:`_restore_payload`.
        """
        return {}, {}

    def _restore_payload(
        self, metadata: Dict[str, object], arrays: Dict[str, np.ndarray]
    ) -> None:
        """Rebuild derived state after a load.

        The default re-runs the (deterministic) offline learning hook over
        the restored relation, which reproduces the original fitted state
        exactly for every method in this library.
        """
        del metadata, arrays
        self._fit(self._fitted_relation)

    def save(self, path: Union[str, Path]) -> Path:
        """Serialize the fitted imputer to an artifact directory.

        The artifact is an ``.npz`` array file plus a JSON manifest (see
        :mod:`repro.online.artifacts`); :meth:`load` restores an imputer
        whose subsequent imputations are bit-identical to this one's.
        """
        from ..online.artifacts import save_imputer

        return save_imputer(self, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BaseImputer":
        """Restore an imputer saved with :meth:`save`.

        Called on :class:`BaseImputer` it restores whatever class the
        artifact stores; called on a subclass it additionally checks the
        stored class matches.
        """
        from ..online.artifacts import load_imputer

        return load_imputer(path, None if cls is BaseImputer else cls)

    # ------------------------------------------------------------------ #
    # Convenience entry points used by the experiment harness
    # ------------------------------------------------------------------ #
    def fit_impute(self, relation: Relation) -> Relation:
        """Fit on the complete part of ``relation`` and impute it in one call."""
        return self.fit(relation).impute(relation)

    def impute_cells(self, injection: InjectionResult) -> np.ndarray:
        """Impute a dirty relation and return values aligned with the injected cells."""
        imputed_relation = self.impute(injection.dirty)
        values = imputed_relation.raw
        return values[injection.rows, injection.attributes].astype(float)

    def __repr__(self) -> str:
        status = "fitted" if self.is_fitted() else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {status})"
