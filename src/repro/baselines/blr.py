"""Bayesian linear regression imputation (the MICE ``norm`` method, BLR).

A Bayesian ridge regression from ``F`` to ``A_x`` is learned over the
complete tuples; imputations are draws from the posterior-predictive
distribution (a parameter draw plus observation noise), matching the
stochastic behaviour of ``mice.norm`` used in the paper's experiments.  The
draw can be disabled for deterministic posterior-mean imputation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_positive_float
from ..regression import BayesianLinearRegression
from .base import BaseImputer

__all__ = ["BLRImputer"]


class BLRImputer(BaseImputer):
    """Bayesian linear regression imputation.

    Parameters
    ----------
    prior_precision:
        Gaussian prior precision on the regression coefficients.
    sample:
        Draw from the posterior predictive (True, MICE behaviour) or use the
        posterior mean (False).
    random_state:
        Seed controlling the posterior draws.
    """

    name = "BLR"

    def __init__(self, prior_precision: float = 1e-3, sample: bool = True, random_state=None):
        super().__init__()
        self.prior_precision = check_positive_float(prior_precision, "prior_precision")
        self.sample = bool(sample)
        self.random_state = random_state

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        model = BayesianLinearRegression(
            prior_precision=self.prior_precision,
            sample=self.sample,
            random_state=self.random_state,
        ).fit(features, target)
        return model.predict(queries)
