"""Registry of every imputation method evaluated in the paper (Table II + IIM).

The experiment harness and the :mod:`repro.api` service layer ask this module
for imputers by their short paper name (``"IIM"``, ``"kNN"``, ``"GLR"``, ...).
Each method is described by a :class:`MethodSpec` — its factory plus a
*capability descriptor* (:class:`MethodCapabilities`) that the session layer
surfaces to callers: whether the method can be served mutably through the
online engine, whether its fitted state persists as an artifact, and whether
it performs adaptive per-tuple learning.

:func:`make_imputer` builds a fresh, unfitted imputer; keyword overrides are
forwarded so the parameter sweeps of Section VI can vary ``k``, ``ℓ``,
stepping, etc. without special cases.  Unknown method names fail with
closest-match suggestions, and override kwargs the method's constructor does
not accept are rejected up front with the offending names listed — a typo'd
sweep fails at configuration time, not after minutes of fitting.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..exceptions import ConfigurationError
from .base import BaseImputer
from .blr import BLRImputer
from .eracer import ERACERImputer
from .glr import GLRImputer
from .gmm_impute import GMMImputer
from .ifc import IFCImputer
from .ills import ILLSImputer
from .knn import KNNImputer
from .knne import KNNEnsembleImputer
from .loess_impute import LoessImputer
from .mean import MeanImputer
from .pmm import PMMImputer
from .svd_impute import SVDImputer
from .xgb import XGBImputer

__all__ = [
    "MethodCapabilities",
    "MethodSpec",
    "METHOD_SPECS",
    "IMPUTER_FACTORIES",
    "method_spec",
    "method_capabilities",
    "make_imputer",
    "available_methods",
    "paper_table2_methods",
    "figure_comparison_methods",
]


@dataclass(frozen=True)
class MethodCapabilities:
    """What a registered method supports through the service layer.

    Attributes
    ----------
    supports_mutation:
        The method can be served *mutably* — appends, deletes and in-place
        updates maintained incrementally by the online engine (IIM only;
        the Table-II baselines refit from scratch).
    supports_persistence:
        Fitted state round-trips through ``save``/``load`` artifacts.
    supports_adaptive:
        The method learns per-tuple adaptive models (Algorithm 3).
    """

    supports_mutation: bool = False
    supports_persistence: bool = True
    supports_adaptive: bool = False

    def as_dict(self) -> Dict[str, bool]:
        """Plain-dict form for manifests and wire responses."""
        return {
            "supports_mutation": self.supports_mutation,
            "supports_persistence": self.supports_persistence,
            "supports_adaptive": self.supports_adaptive,
        }


def _iim_class():
    # Imported lazily to avoid a circular import (core depends on baselines.base).
    from ..core import IIMImputer

    return IIMImputer


def _iim_factory(**overrides) -> BaseImputer:
    defaults = dict(
        k=10,
        learning="adaptive",
        stepping=5,
        max_learning_neighbors=200,
        validation_neighbors=30,
    )
    defaults.update(overrides)
    return _iim_class()(**defaults)


@dataclass(frozen=True)
class MethodSpec:
    """One registered imputation method: factory + capabilities.

    ``target`` names the class whose constructor signature governs which
    override kwargs :func:`make_imputer` accepts; it is resolved lazily so
    the IIM entry does not import :mod:`repro.core` at registry import time.
    """

    name: str
    factory: Callable[..., BaseImputer]
    capabilities: MethodCapabilities
    target: Optional[Callable[[], type]] = None

    def target_class(self) -> type:
        """The imputer class this spec constructs."""
        return self.target() if self.target is not None else self.factory

    def parameter_names(self) -> Optional[frozenset]:
        """Constructor parameter names, or ``None`` if it accepts anything."""
        signature = inspect.signature(self.target_class().__init__)
        names = set()
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                return None
            if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
                continue
            names.add(name)
        return frozenset(names)


_BASELINE = MethodCapabilities()

#: Every method of the paper keyed by its table name, with capabilities.
METHOD_SPECS: Dict[str, MethodSpec] = {
    "IIM": MethodSpec(
        "IIM",
        _iim_factory,
        MethodCapabilities(
            supports_mutation=True,
            supports_persistence=True,
            supports_adaptive=True,
        ),
        target=_iim_class,
    ),
    "Mean": MethodSpec("Mean", MeanImputer, _BASELINE),
    "kNN": MethodSpec("kNN", KNNImputer, _BASELINE),
    "kNNE": MethodSpec("kNNE", KNNEnsembleImputer, _BASELINE),
    "IFC": MethodSpec("IFC", IFCImputer, _BASELINE),
    "GMM": MethodSpec("GMM", GMMImputer, _BASELINE),
    "SVD": MethodSpec("SVD", SVDImputer, _BASELINE),
    "ILLS": MethodSpec("ILLS", ILLSImputer, _BASELINE),
    "GLR": MethodSpec("GLR", GLRImputer, _BASELINE),
    "LOESS": MethodSpec("LOESS", LoessImputer, _BASELINE),
    "BLR": MethodSpec("BLR", BLRImputer, _BASELINE),
    "ERACER": MethodSpec("ERACER", ERACERImputer, _BASELINE),
    "PMM": MethodSpec("PMM", PMMImputer, _BASELINE),
    "XGB": MethodSpec("XGB", XGBImputer, _BASELINE),
}

#: Factories keyed by method name (the pre-capability registry surface).
IMPUTER_FACTORIES: Dict[str, Callable[..., BaseImputer]] = {
    name: spec.factory for name, spec in METHOD_SPECS.items()
}

#: Canonical case-insensitive lookup.
_CANONICAL = {name.lower(): name for name in METHOD_SPECS}


def available_methods() -> List[str]:
    """All registered method names (paper spelling)."""
    return list(METHOD_SPECS)


def paper_table2_methods() -> List[str]:
    """The 13 existing methods of Table II (everything except IIM)."""
    return [name for name in METHOD_SPECS if name != "IIM"]


def figure_comparison_methods() -> List[str]:
    """The eight methods plotted in the paper's figures (Figures 4-8)."""
    return ["kNN", "IIM", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"]


def method_spec(name: str) -> MethodSpec:
    """Look up a method spec by (case-insensitive) name.

    Unknown names raise :class:`~repro.exceptions.ConfigurationError`
    carrying the closest registered spellings.
    """
    canonical = _CANONICAL.get(str(name).lower())
    if canonical is None:
        close = difflib.get_close_matches(
            str(name).lower(), _CANONICAL, n=3, cutoff=0.4
        )
        hint = ""
        if close:
            suggestions = ", ".join(repr(_CANONICAL[match]) for match in close)
            hint = f"; did you mean {suggestions}?"
        raise ConfigurationError(
            f"unknown imputation method {name!r}{hint} "
            f"(available: {available_methods()})"
        )
    return METHOD_SPECS[canonical]


def method_capabilities(name: str) -> MethodCapabilities:
    """The capability descriptor of a registered method."""
    return method_spec(name).capabilities


def _validate_overrides(spec: MethodSpec, overrides: Dict[str, object]) -> None:
    """Reject override kwargs the method's constructor does not accept."""
    allowed = spec.parameter_names()
    if allowed is None or not overrides:
        return
    unknown = sorted(set(overrides) - allowed)
    if not unknown:
        return
    # A case-variant of an accepted parameter is a *duplicate* spelling of
    # it, not a new knob; call that out explicitly.
    lowered = {name.lower(): name for name in allowed}
    notes = []
    for name in unknown:
        twin = lowered.get(name.lower())
        if twin is not None:
            notes.append(f"{name!r} (duplicate spelling of {twin!r})")
            continue
        close = difflib.get_close_matches(name, allowed, n=1, cutoff=0.6)
        if close:
            notes.append(f"{name!r} (did you mean {close[0]!r}?)")
        else:
            notes.append(repr(name))
    raise ConfigurationError(
        f"unknown override kwargs for method {spec.name!r}: {', '.join(notes)}; "
        f"accepted parameters: {sorted(allowed)}"
    )


def make_imputer(name: str, **overrides) -> BaseImputer:
    """Build a fresh imputer by (case-insensitive) method name.

    Keyword arguments are forwarded to the method's constructor after being
    validated against its signature; unknown method names and unknown or
    duplicate override kwargs raise
    :class:`~repro.exceptions.ConfigurationError` with the offending names
    (and closest matches) listed.
    """
    spec = method_spec(name)
    _validate_overrides(spec, overrides)
    return spec.factory(**overrides)
