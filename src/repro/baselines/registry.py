"""Registry of every imputation method evaluated in the paper (Table II + IIM).

The experiment harness asks this module for imputers by their short paper
name (``"IIM"``, ``"kNN"``, ``"GLR"``, ...).  Each factory builds a fresh,
unfitted imputer; keyword overrides are forwarded so the parameter sweeps of
Section VI can vary ``k``, ``ℓ``, stepping, etc. without special cases.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from .base import BaseImputer
from .blr import BLRImputer
from .eracer import ERACERImputer
from .glr import GLRImputer
from .gmm_impute import GMMImputer
from .ifc import IFCImputer
from .ills import ILLSImputer
from .knn import KNNImputer
from .knne import KNNEnsembleImputer
from .loess_impute import LoessImputer
from .mean import MeanImputer
from .pmm import PMMImputer
from .svd_impute import SVDImputer
from .xgb import XGBImputer

__all__ = [
    "IMPUTER_FACTORIES",
    "make_imputer",
    "available_methods",
    "paper_table2_methods",
    "figure_comparison_methods",
]


def _iim_factory(**overrides) -> BaseImputer:
    # Imported lazily to avoid a circular import (core depends on baselines.base).
    from ..core import IIMImputer

    defaults = dict(
        k=10,
        learning="adaptive",
        stepping=5,
        max_learning_neighbors=200,
        validation_neighbors=30,
    )
    defaults.update(overrides)
    return IIMImputer(**defaults)


#: Factories keyed by the method names used in the paper's tables.
IMPUTER_FACTORIES: Dict[str, Callable[..., BaseImputer]] = {
    "IIM": _iim_factory,
    "Mean": MeanImputer,
    "kNN": KNNImputer,
    "kNNE": KNNEnsembleImputer,
    "IFC": IFCImputer,
    "GMM": GMMImputer,
    "SVD": SVDImputer,
    "ILLS": ILLSImputer,
    "GLR": GLRImputer,
    "LOESS": LoessImputer,
    "BLR": BLRImputer,
    "ERACER": ERACERImputer,
    "PMM": PMMImputer,
    "XGB": XGBImputer,
}

#: Canonical case-insensitive lookup.
_CANONICAL = {name.lower(): name for name in IMPUTER_FACTORIES}


def available_methods() -> List[str]:
    """All registered method names (paper spelling)."""
    return list(IMPUTER_FACTORIES)


def paper_table2_methods() -> List[str]:
    """The 13 existing methods of Table II (everything except IIM)."""
    return [name for name in IMPUTER_FACTORIES if name != "IIM"]


def figure_comparison_methods() -> List[str]:
    """The eight methods plotted in the paper's figures (Figures 4-8)."""
    return ["kNN", "IIM", "GLR", "LOESS", "IFC", "kNNE", "ERACER", "ILLS"]


def make_imputer(name: str, **overrides) -> BaseImputer:
    """Build a fresh imputer by (case-insensitive) method name.

    Keyword arguments are forwarded to the method's constructor; unknown
    names raise :class:`~repro.exceptions.ConfigurationError`.
    """
    canonical = _CANONICAL.get(str(name).lower())
    if canonical is None:
        raise ConfigurationError(
            f"unknown imputation method {name!r}; available: {available_methods()}"
        )
    factory = IMPUTER_FACTORIES[canonical]
    return factory(**overrides)
