"""Iterated local least squares imputation (Cai et al.) — the ILLS baseline.

For each incomplete tuple ILLS finds its ``k`` nearest complete neighbours,
fits a least-squares regression from the complete attributes to the
incomplete attribute *over those neighbours*, predicts the missing value,
and iterates: the new estimate is used to re-select neighbours (in the full
attribute space) and re-fit, until the estimate stabilises.  It is a tuple
model in the paper's taxonomy because the model ``h`` is learned per
incomplete tuple from its own neighbours.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_positive_int
from ..neighbors import BruteForceNeighbors
from ..regression import OrdinaryLeastSquares
from .base import BaseImputer

__all__ = ["ILLSImputer"]


class ILLSImputer(BaseImputer):
    """Iterated local least-squares imputation.

    Parameters
    ----------
    k:
        Number of neighbours per local regression.
    n_iterations:
        Number of re-selection/re-fit rounds after the initial estimate.
    metric:
        Distance metric for the neighbour searches.
    """

    name = "ILLS"

    def __init__(self, k: int = 10, n_iterations: int = 3, metric: str = "paper_euclidean"):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.metric = metric

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        complete = self._complete_values
        k = min(self.k, features.shape[0])
        feature_idx = list(feature_indices)

        feature_searcher = BruteForceNeighbors(metric=self.metric).fit(features)
        full_searcher = BruteForceNeighbors(metric=self.metric).fit(complete)

        q = queries.shape[0]
        estimates = np.empty(q)

        # Initial pass: neighbours on the complete attributes only.
        _, initial_neighbors = feature_searcher.kneighbors(queries, k)
        for i in range(q):
            neighbors = initial_neighbors[i]
            model = OrdinaryLeastSquares().fit(features[neighbors], target[neighbors])
            estimates[i] = model.predict_one(queries[i])

        # Iterations: re-select neighbours in the full space using the
        # current estimate, then re-fit the local regression.
        width = complete.shape[1]
        for _ in range(self.n_iterations):
            augmented = np.empty((q, width))
            augmented[:, feature_idx] = queries
            augmented[:, target_index] = estimates
            _, neighbor_sets = full_searcher.kneighbors(augmented, k)
            for i in range(q):
                neighbors = neighbor_sets[i]
                model = OrdinaryLeastSquares().fit(features[neighbors], target[neighbors])
                estimates[i] = model.predict_one(queries[i])
        return estimates
