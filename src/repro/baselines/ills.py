"""Iterated local least squares imputation (Cai et al.) — the ILLS baseline.

For each incomplete tuple ILLS finds its ``k`` nearest complete neighbours,
fits a least-squares regression from the complete attributes to the
incomplete attribute *over those neighbours*, predicts the missing value,
and iterates: the new estimate is used to re-select neighbours (in the full
attribute space) and re-fit, until the estimate stabilises.  It is a tuple
model in the paper's taxonomy because the model ``h`` is learned per
incomplete tuple from its own neighbours.

Backends
--------
Like the IIM hot paths, the per-query local regressions exist in two
implementations selected through :mod:`repro.config` (or the ``backend``
constructor argument): ``"vectorized"`` gathers every query's neighbour
design block at once and solves all local least-squares systems through one
batched SVD pseudo-inverse, while ``"loop"`` keeps the original per-query
:class:`~repro.regression.OrdinaryLeastSquares` fits as the executable
reference.  The test suite asserts both agree to ``rtol = 1e-9``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..config import resolve_backend
from ..neighbors import BruteForceNeighbors
from ..regression import OrdinaryLeastSquares, batched_design
from .base import BaseImputer

__all__ = ["ILLSImputer"]


def _batched_ols_predict(
    features: np.ndarray,
    target: np.ndarray,
    neighbor_sets: np.ndarray,
    queries: np.ndarray,
) -> np.ndarray:
    """Fit one OLS model per query over its neighbours and predict in bulk.

    Solves every ``(k, d+1)`` local system through a batched Moore–Penrose
    pseudo-inverse — the same SVD-based minimum-norm solution the scalar
    :class:`OrdinaryLeastSquares` computes via ``lstsq``.  Single-neighbour
    systems use the constant model, exactly like the scalar solver.
    """
    if neighbor_sets.shape[1] == 1:
        return target[neighbor_sets[:, 0]]
    designs = batched_design(features[neighbor_sets])  # (q, k, p)
    targets = target[neighbor_sets]  # (q, k)
    coefficients = (np.linalg.pinv(designs) @ targets[..., None])[..., 0]  # (q, p)
    return np.einsum("qp,qp->q", batched_design(queries), coefficients)


class ILLSImputer(BaseImputer):
    """Iterated local least-squares imputation.

    Parameters
    ----------
    k:
        Number of neighbours per local regression.
    n_iterations:
        Number of re-selection/re-fit rounds after the initial estimate.
    metric:
        Distance metric for the neighbour searches.
    backend:
        ``"vectorized"``, ``"loop"``, or ``None`` (default) to follow the
        global knob of :mod:`repro.config`.
    """

    name = "ILLS"

    def __init__(
        self,
        k: int = 10,
        n_iterations: int = 3,
        metric: str = "paper_euclidean",
        backend: Optional[str] = None,
    ):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.n_iterations = check_positive_int(n_iterations, "n_iterations")
        self.metric = metric
        self.backend = None if backend is None else resolve_backend(backend)

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        complete = self._complete_values
        k = min(self.k, features.shape[0])
        feature_idx = list(feature_indices)
        backend = resolve_backend(self.backend)

        feature_searcher = BruteForceNeighbors(metric=self.metric, backend=backend).fit(
            features
        )
        full_searcher = BruteForceNeighbors(metric=self.metric, backend=backend).fit(
            complete
        )

        q = queries.shape[0]

        def fit_predict(neighbor_sets: np.ndarray) -> np.ndarray:
            if backend == "vectorized":
                return _batched_ols_predict(features, target, neighbor_sets, queries)
            estimates = np.empty(q)
            for i in range(q):
                neighbors = neighbor_sets[i]
                model = OrdinaryLeastSquares().fit(
                    features[neighbors], target[neighbors]
                )
                estimates[i] = model.predict_one(queries[i])
            return estimates

        # Initial pass: neighbours on the complete attributes only.
        _, initial_neighbors = feature_searcher.kneighbors(queries, k)
        estimates = fit_predict(initial_neighbors)

        # Iterations: re-select neighbours in the full space using the
        # current estimate, then re-fit the local regression.
        width = complete.shape[1]
        for _ in range(self.n_iterations):
            augmented = np.empty((q, width))
            augmented[:, feature_idx] = queries
            augmented[:, target_index] = estimates
            _, neighbor_sets = full_searcher.kneighbors(augmented, k)
            estimates = fit_predict(neighbor_sets)
        return estimates
