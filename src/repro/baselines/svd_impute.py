"""SVD imputation (Troyanskaya et al.) — the SVDimpute baseline.

SVDimpute represents the data with its ``k`` most significant eigen-vectors
("eigengenes").  Missing cells are initialised with column means; the method
then alternates between (a) computing a rank-``k`` SVD of the current matrix
and (b) re-estimating each missing cell by regressing its tuple against the
eigen-vectors using only the tuple's observed attributes.  The loop stops on
convergence of the imputed entries.

As in the original work the method is undefined for fewer than two
attributes (the paper likewise omits SVD results on the two-attribute SN
dataset).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_positive_float, check_positive_int
from ..exceptions import DataError
from .base import BaseImputer

__all__ = ["SVDImputer"]


class SVDImputer(BaseImputer):
    """Iterative low-rank SVD imputation.

    Parameters
    ----------
    rank:
        Number of singular vectors retained (capped by the data dimensions).
    max_iter:
        Maximum refinement iterations.
    tol:
        Relative-change convergence threshold on the imputed cells.
    """

    name = "SVD"

    def __init__(self, rank: int = 3, max_iter: int = 30, tol: float = 1e-4):
        super().__init__()
        self.rank = check_positive_int(rank, "rank")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = check_positive_float(tol, "tol", allow_zero=True)

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        if features.shape[1] < 2:
            raise DataError(
                "SVD imputation needs at least two complete attributes "
                "(the paper reports no SVD result on two-attribute data)"
            )
        complete = self._complete_values
        n_complete, width = complete.shape
        q = queries.shape[0]
        feature_idx = list(feature_indices)

        # Stack the complete tuples with the query tuples whose target column
        # starts at the column mean, then iteratively refine the rank-k fit.
        column_mean = float(target.mean())
        stacked = np.empty((n_complete + q, width))
        stacked[:n_complete] = complete
        stacked[n_complete:, feature_idx] = queries
        stacked[n_complete:, target_index] = column_mean

        rank = min(self.rank, width - 1, n_complete)
        estimates = np.full(q, column_mean)
        for _ in range(self.max_iter):
            means = stacked.mean(axis=0)
            stds = stacked.std(axis=0)
            stds = np.where(stds == 0, 1.0, stds)
            normalized = (stacked - means) / stds
            _, _, vt = np.linalg.svd(normalized, full_matrices=False)
            basis = vt[:rank]  # (rank, width) eigen-rows

            # Regress each query tuple on the basis using observed columns only.
            basis_obs = basis[:, feature_idx]  # (rank, |F|)
            basis_target = basis[:, target_index]  # (rank,)
            gram = basis_obs @ basis_obs.T + 1e-8 * np.eye(rank)
            observed = (queries - means[feature_idx]) / stds[feature_idx]
            coefficients = np.linalg.solve(gram, basis_obs @ observed.T)  # (rank, q)
            new_estimates = (basis_target @ coefficients) * stds[target_index] + means[target_index]

            change = np.max(np.abs(new_estimates - estimates))
            scale = max(1.0, float(np.max(np.abs(estimates))))
            estimates = new_estimates
            stacked[n_complete:, target_index] = estimates
            if change / scale <= self.tol:
                break
        return estimates
