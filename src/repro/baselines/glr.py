"""Global linear regression imputation (GLR) — Section II-B1 of the paper.

A single ridge regression from the complete attributes ``F`` to the
incomplete attribute ``A_x`` is learned over *all* complete tuples
(Formula 3/5) and evaluated at the incomplete tuple (Formula 4).  GLR is one
of the two extreme special cases of IIM (Proposition 2, ``ℓ = n``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..regression import DEFAULT_ALPHA, RidgeRegression
from .._validation import check_positive_float
from .base import BaseImputer

__all__ = ["GLRImputer"]


class GLRImputer(BaseImputer):
    """Global ridge-regression imputation.

    Parameters
    ----------
    alpha:
        Ridge regularization strength used when learning the global model.
    """

    name = "GLR"

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        super().__init__()
        self.alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        model = RidgeRegression(alpha=self.alpha).fit(features, target)
        return model.predict(queries)
