"""kNN imputation (Altman; Batista & Monard) — Section II-A1 of the paper.

For an incomplete tuple ``t_x``, find its ``k`` nearest complete neighbours
on the complete attributes ``F`` (Formula 1) and aggregate their values on
the incomplete attribute (Formula 2).  Both the paper's plain arithmetic
mean and the common distance-weighted variant are supported.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_in_choices, check_positive_int
from ..neighbors import BruteForceNeighbors
from .base import BaseImputer

__all__ = ["KNNImputer"]


class KNNImputer(BaseImputer):
    """k-nearest-neighbour imputation.

    Parameters
    ----------
    k:
        Number of imputation neighbours.
    weighting:
        ``"uniform"`` — plain arithmetic mean (Formula 2, the paper's kNN);
        ``"distance"`` — weights proportional to inverse distance.
    metric:
        Distance metric (defaults to the paper's normalized Euclidean).
    """

    name = "kNN"

    def __init__(self, k: int = 10, weighting: str = "uniform", metric: str = "paper_euclidean"):
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.weighting = check_in_choices(weighting, "weighting", ("uniform", "distance"))
        self.metric = metric

    def _impute_attribute(
        self,
        features: np.ndarray,
        target: np.ndarray,
        queries: np.ndarray,
        feature_indices: Sequence[int],
        target_index: int,
    ) -> np.ndarray:
        k = min(self.k, features.shape[0])
        searcher = BruteForceNeighbors(metric=self.metric).fit(features)
        distances, indices = searcher.kneighbors(queries, k)
        neighbor_values = target[indices]
        if self.weighting == "uniform":
            return neighbor_values.mean(axis=1)
        # Inverse-distance weights with a guard for exact matches.
        safe = np.maximum(distances, 1e-12)
        weights = 1.0 / safe
        weights /= weights.sum(axis=1, keepdims=True)
        return np.sum(neighbor_values * weights, axis=1)
