"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single exception type at API boundaries while still being able to
distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An estimator or harness was configured with invalid parameters."""


class NotFittedError(ReproError):
    """A model method requiring a prior ``fit`` call was used before fitting."""


class DataError(ReproError):
    """Input data is malformed (wrong shape, wrong dtype, empty, ...)."""


class SchemaError(DataError):
    """A relation schema is inconsistent with the data or with a request."""


class QueryError(DataError):
    """A query-language statement is invalid or cannot be evaluated.

    Raised by :mod:`repro.query` for semantic problems — unknown
    attributes, aggregate/column mixing, statements addressing pending or
    out-of-range rows.  Subclasses :class:`DataError` so the serve loop
    treats a bad query as a clean rejection (the session state is
    untouched), with its own wire code ``query``.
    """


class QuerySyntaxError(QueryError):
    """A query-language statement failed to tokenize or parse.

    Carries a human-readable position (``at offset 12``) so REPL users can
    find the typo; shares the ``query`` wire code with its parent.
    """


class MissingValueError(DataError):
    """A missing-value pattern is invalid for the requested operation."""


class DatasetError(ReproError):
    """A named dataset could not be generated or loaded."""


class ExperimentError(ReproError):
    """An experiment harness was asked to run an inconsistent configuration."""


class ScenarioError(ExperimentError):
    """A scenario spec, trace, or replay is invalid or failed verification.

    Raised by :mod:`repro.scenarios` when a spec does not validate against
    its generator's parameter schema, a generated trace drifts from its
    checked-in golden digest, or a replay's responses diverge from the
    cold-refit oracle.  Subclasses :class:`ExperimentError` because the
    legacy streaming/churn experiment entry points are thin wrappers over
    scenario specs and keep their historical error contract.
    """


class UnsupportedOperationError(ReproError):
    """A session was asked for an operation its capabilities do not include.

    Raised by the :mod:`repro.api` service layer when, e.g., a batch session
    adapting a Table-II imputer receives a mutation — the capability
    descriptor of every session advertises what it can do ahead of time.
    """


class ProtocolError(ReproError):
    """A wire request violates the :mod:`repro.api` JSONL protocol.

    Covers malformed JSON, missing/unknown fields, unsupported protocol
    versions and commands addressed to sessions that do not exist.
    """


class SessionQuarantinedError(ReproError):
    """A session was quarantined after its engine failed mid-mutation.

    Raised by the :mod:`repro.api` serve loop when a mutating command dies
    somewhere the engine cannot guarantee a consistent in-memory state (for
    example an I/O error halfway through a multi-op ``mutate``).  The
    session is marked ``degraded`` and refuses further commands instead of
    serving half-applied state; recover it from its checkpoint and WAL.
    """


class DeadlineExceededError(ReproError):
    """A request ran past the serve loop's per-request deadline.

    The worker is not preempted (imputation is CPU-bound numpy under the
    GIL); the client gets this typed error while the slow request finishes
    in the background, so its state changes land but are unacknowledged.
    """


class QuotaExceededError(ReproError):
    """A wire request exceeded an admission quota.

    Raised by :mod:`repro.api` validation when a request carries more rows
    than ``max_rows_per_request``, or the server already holds
    ``max_sessions`` live sessions.  Quotas are admission control — the
    request is rejected *before* any state changes, so the session stays
    clean and the client can retry smaller.
    """


class ServerOverloadedError(ReproError):
    """A session's request queue is full; the request was shed, not buffered.

    The serve loop bounds each session's FIFO queue at
    ``max_queued_requests``; when a producer outruns the worker pool the
    excess request is rejected with this error (wire code ``overloaded``)
    instead of growing the queue without bound.  Nothing was applied —
    back off and resubmit.
    """


class AuthenticationError(ReproError):
    """A request failed the serve loop's shared-secret token check.

    When the server is started with an auth token, every request envelope
    must carry a matching ``"token"`` field; mismatches are rejected before
    any command dispatch (wire code ``auth``).
    """
