"""Incremental ridge regression (Proposition 3 of the paper).

Adaptive learning evaluates, for every tuple, the ridge model learned over
its ``ℓ`` nearest neighbours for many values of ``ℓ``.  Because
``NN(t, F, ℓ) ⊂ NN(t, F, ℓ + h)`` (Formula 13), the sufficient statistics

.. math::

    U^{(ℓ+h)} = U^{(ℓ)} + (X^{(ℓ,Δh)})^\\top X^{(ℓ,Δh)}, \\qquad
    V^{(ℓ+h)} = V^{(ℓ)} + (X^{(ℓ,Δh)})^\\top Y^{(ℓ,Δh)}

can be maintained incrementally, turning the per-ℓ learning cost from
``O(m²ℓ + m³)`` into ``O(m²h + m³)`` (Table III).

:class:`IncrementalRidge` holds ``U`` and ``V`` and supports appending rows
one batch at a time; ``solve()`` returns the ridge parameter for the data
seen so far.  The test suite asserts that its output is *exactly* equal to
refitting :class:`~repro.regression.linear.RidgeRegression` from scratch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import (
    as_float_matrix,
    as_float_vector,
    check_consistent_length,
    check_positive_float,
    check_positive_int,
)
from ..exceptions import DataError, NotFittedError
from .linear import DEFAULT_ALPHA, constant_model

__all__ = ["IncrementalRidge"]


class IncrementalRidge:
    """Ridge regression over a growing set of rows, via U/V sufficient statistics.

    Parameters
    ----------
    n_features:
        Number of covariates ``d`` (excluding the constant column); the
        internal matrices have size ``(d + 1) × (d + 1)``.
    alpha:
        Regularization strength ``α``.
    """

    def __init__(self, n_features: int, alpha: float = DEFAULT_ALPHA):
        self.n_features = check_positive_int(n_features, "n_features")
        self.alpha = check_positive_float(alpha, "alpha", allow_zero=True)
        d = self.n_features + 1
        self._U = np.zeros((d, d))
        self._V = np.zeros(d)
        self._n_rows = 0
        self._first_target: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of rows accumulated so far (the current ℓ)."""
        return self._n_rows

    @property
    def U(self) -> np.ndarray:
        """Current ``U = XᵀX`` including the constant column (copy)."""
        return self._U.copy()

    @property
    def V(self) -> np.ndarray:
        """Current ``V = XᵀY`` including the constant column (copy)."""
        return self._V.copy()

    # ------------------------------------------------------------------ #
    def partial_fit(self, X_delta, y_delta) -> "IncrementalRidge":
        """Fold a batch of additional rows ``(X^{(ℓ,Δh)}, Y^{(ℓ,Δh)})`` into U and V."""
        X_delta = as_float_matrix(X_delta, name="X_delta")
        y_delta = as_float_vector(y_delta, name="y_delta")
        check_consistent_length(X_delta, y_delta, names=("X_delta", "y_delta"))
        if X_delta.shape[1] != self.n_features:
            raise DataError(
                f"X_delta has {X_delta.shape[1]} features, expected {self.n_features}"
            )
        design = np.hstack([np.ones((X_delta.shape[0], 1)), X_delta])
        self._U += design.T @ design
        self._V += design.T @ y_delta
        if self._n_rows == 0:
            self._first_target = float(y_delta[0])
        self._n_rows += X_delta.shape[0]
        return self

    def add_row(self, x_row, y_value: float) -> "IncrementalRidge":
        """Fold a single additional row into U and V (``h = 1``)."""
        x_row = as_float_vector(x_row, name="x_row")
        return self.partial_fit(x_row.reshape(1, -1), [float(y_value)])

    # ------------------------------------------------------------------ #
    def solve(self) -> np.ndarray:
        """Return ``φ = (U + αE)⁻¹ V`` for the rows accumulated so far.

        With a single accumulated row the constant model of Section III-A2
        is returned instead, matching :class:`RidgeRegression`.
        """
        if self._n_rows == 0:
            raise NotFittedError("IncrementalRidge has no accumulated rows")
        if self._n_rows == 1:
            return constant_model(self._first_target, self.n_features)
        if self.alpha > 0:
            gram = self._U + self.alpha * np.eye(self._U.shape[0])
            return np.linalg.solve(gram, self._V)
        return np.linalg.pinv(self._U) @ self._V

    def predict(self, X) -> np.ndarray:
        """Predict targets with the current solution."""
        coefficients = self.solve()
        X = as_float_matrix(X, name="X")
        if X.shape[1] != self.n_features:
            raise DataError(f"X has {X.shape[1]} features, expected {self.n_features}")
        design = np.hstack([np.ones((X.shape[0], 1)), X])
        return design @ coefficients

    def copy(self) -> "IncrementalRidge":
        """An independent copy of the accumulator (used by stepping schedules)."""
        clone = IncrementalRidge(self.n_features, alpha=self.alpha)
        clone._U = self._U.copy()
        clone._V = self._V.copy()
        clone._n_rows = self._n_rows
        clone._first_target = self._first_target
        return clone
