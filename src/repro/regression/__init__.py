"""Regression substrate: ridge, OLS, incremental ridge, batched solves, Bayesian LR, LOESS."""

from .base import Regressor, design_matrix
from .batched import batched_design, batched_ridge_solve
from .bayesian import BayesianLinearRegression
from .incremental_ridge import IncrementalRidge
from .linear import DEFAULT_ALPHA, OrdinaryLeastSquares, RidgeRegression, constant_model
from .loess import LoessRegression, tricube_weights

__all__ = [
    "Regressor",
    "design_matrix",
    "batched_design",
    "batched_ridge_solve",
    "RidgeRegression",
    "OrdinaryLeastSquares",
    "IncrementalRidge",
    "BayesianLinearRegression",
    "LoessRegression",
    "tricube_weights",
    "constant_model",
    "DEFAULT_ALPHA",
]
