"""Ordinary least squares and ridge regression (Formula 5 of the paper).

The paper learns every individual model with ridge regression

.. math::

    φ_i = (X^\\top X + α E)^{-1} X^\\top Y

where ``X`` carries a leading column of ones (the constant term), ``α`` is
the regularization strength and ``E`` the identity matrix.  OLS is the
``α = 0`` special case solved through a pseudo-inverse for numerical
robustness when the neighbour set is small or collinear.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_float
from .base import Regressor, design_matrix

__all__ = ["RidgeRegression", "OrdinaryLeastSquares", "constant_model"]

#: Default regularization strength used across the library (and by the
#: paper's reference implementation).
DEFAULT_ALPHA = 1e-3


def constant_model(value: float, n_weights: int) -> np.ndarray:
    """The single-neighbour model of Section III-A2.

    When only one learning neighbour is available the regression cannot be
    estimated, so the paper fixes ``φ[C] = t_i[A_m]`` and zeroes every weight.
    """
    coefficients = np.zeros(n_weights + 1)
    coefficients[0] = float(value)
    return coefficients


class RidgeRegression(Regressor):
    """Ridge regression with an unpenalised handling identical to Formula 5.

    Parameters
    ----------
    alpha:
        Regularization strength ``α`` (>= 0).  ``α = 0`` falls back to a
        pseudo-inverse solution.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        super().__init__()
        self.alpha = check_positive_float(alpha, "alpha", allow_zero=True)

    def fit(self, X, y) -> "RidgeRegression":
        """Fit ``φ = (XᵀX + αE)⁻¹ XᵀY`` on the design matrix with intercept."""
        X, y = self._validate_xy(X, y)
        design = design_matrix(X)
        if design.shape[0] == 1:
            # Single neighbour: fall back to the constant model (Section III-A2).
            self._coefficients = constant_model(y[0], X.shape[1])
            return self
        gram = design.T @ design
        moment = design.T @ y
        if self.alpha > 0:
            gram = gram + self.alpha * np.eye(gram.shape[0])
            self._coefficients = np.linalg.solve(gram, moment)
        else:
            self._coefficients = np.linalg.pinv(gram) @ moment
        return self


class OrdinaryLeastSquares(Regressor):
    """Unregularised least squares, solved via the Moore–Penrose pseudo-inverse."""

    def fit(self, X, y) -> "OrdinaryLeastSquares":
        """Fit the least-squares solution of ``(1, X) φ ≈ y``."""
        X, y = self._validate_xy(X, y)
        design = design_matrix(X)
        if design.shape[0] == 1:
            self._coefficients = constant_model(y[0], X.shape[1])
            return self
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self._coefficients = solution
        return self
