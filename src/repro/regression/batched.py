"""Batched ridge solves over stacks of U/V sufficient statistics.

The vectorized learning kernels (see :mod:`repro.core.learning`) build the
Gram/moment statistics of *every* per-tuple, per-candidate ridge system in
one shot — ``U`` of shape ``(..., d+1, d+1)`` and ``V`` of shape
``(..., d+1)`` — and hand the whole stack to :func:`batched_ridge_solve`,
which resolves them with a single LAPACK call instead of one
:class:`~repro.regression.incremental_ridge.IncrementalRidge` solve per
system.  Systems built from a single row fall back to the constant model of
Section III-A2, exactly like the scalar solvers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_positive_float
from ..exceptions import DataError
from .linear import DEFAULT_ALPHA

__all__ = ["batched_design", "batched_ridge_solve"]


def batched_design(X: np.ndarray) -> np.ndarray:
    """Prepend the constant column to a stack of feature blocks.

    Accepts any shape ``(..., d)`` and returns ``(..., d + 1)``.
    """
    X = np.asarray(X, dtype=float)
    return np.concatenate([np.ones(X.shape[:-1] + (1,)), X], axis=-1)


def batched_ridge_solve(
    U: np.ndarray,
    V: np.ndarray,
    alpha: float = DEFAULT_ALPHA,
    counts: Optional[np.ndarray] = None,
    first_targets: Optional[np.ndarray] = None,
    overwrite_u: bool = False,
) -> np.ndarray:
    """Solve ``φ = (U + αE)⁻¹ V`` for a stack of ridge systems.

    Parameters
    ----------
    U:
        Gram matrices ``XᵀX`` (constant column included), shape
        ``(..., p, p)``.
    V:
        Moment vectors ``XᵀY``, shape ``(..., p)``.
    alpha:
        Regularization strength; ``α = 0`` solves through the batched
        pseudo-inverse (matching :class:`RidgeRegression`).
    overwrite_u:
        Allow clobbering ``U`` with the regularised Gram matrices (skips one
        stack-sized allocation on the hot path).
    counts:
        Optional number of rows accumulated into each system, broadcastable
        to ``U.shape[:-2]``.  Systems with ``count == 1`` return the
        constant model (Section III-A2) instead of the ridge solution and
        then require ``first_targets``.
    first_targets:
        The target value of each system's first accumulated row,
        broadcastable to ``U.shape[:-2]``; only consulted where
        ``counts == 1``.
    """
    U = np.asarray(U, dtype=float)
    V = np.asarray(V, dtype=float)
    alpha = check_positive_float(alpha, "alpha", allow_zero=True)
    if U.shape[:-1] != V.shape:
        raise DataError(f"U {U.shape} and V {V.shape} describe different systems")
    p = U.shape[-1]

    single = None
    if counts is not None:
        single = np.broadcast_to(np.asarray(counts), U.shape[:-2]) == 1
        if not single.any():
            single = None
        elif first_targets is None:
            raise DataError("systems with a single row require first_targets")

    if single is not None and single.all():
        solutions = np.zeros_like(V)
    elif alpha > 0:
        if overwrite_u:
            gram = U
            gram += alpha * np.eye(p)
        else:
            gram = U + alpha * np.eye(p)
        if single is not None:
            # Keep the one-row systems trivially solvable; their ridge
            # solutions are overwritten below by the constant model.
            gram[single] = np.eye(p)
        solutions = np.linalg.solve(gram, V[..., None])[..., 0]
    else:
        solutions = np.einsum("...ij,...j->...i", np.linalg.pinv(U), V)

    if single is not None:
        firsts = np.broadcast_to(np.asarray(first_targets, dtype=float), U.shape[:-2])
        solutions[single] = 0.0
        solutions[single, 0] = firsts[single]
    return solutions
