"""LOESS — locally weighted linear regression (the paper's LOESS baseline).

For each query point the model finds the ``k`` nearest training points on
the covariates, weights them with the classic tri-cube kernel of their
scaled distance, and fits a weighted least-squares line that is evaluated
only at the query.  Unlike the individual models of IIM, a *fresh* local
regression is fitted online per query, which is why the paper reports high
imputation-time cost for LOESS.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import as_float_matrix, check_positive_float, check_positive_int
from ..exceptions import NotFittedError
from ..neighbors import BruteForceNeighbors
from .base import design_matrix

__all__ = ["LoessRegression", "tricube_weights"]


def tricube_weights(distances: np.ndarray) -> np.ndarray:
    """Tri-cube kernel ``(1 - (d / d_max)³)³`` with a safe all-equal fallback."""
    distances = np.asarray(distances, dtype=float)
    max_distance = distances.max()
    if max_distance <= 0:
        return np.ones_like(distances)
    scaled = np.clip(distances / max_distance, 0.0, 1.0)
    weights = (1.0 - scaled ** 3) ** 3
    # The farthest neighbour gets weight zero; keep a tiny floor so the
    # weighted system stays well-posed when few neighbours are available.
    return np.maximum(weights, 1e-8)


class LoessRegression:
    """Local regression smoother.

    Parameters
    ----------
    n_neighbors:
        Number of nearest training points used per query (the span).
    ridge:
        Small ridge term stabilising the weighted normal equations.
    metric:
        Distance metric used for the neighbour search.
    """

    def __init__(self, n_neighbors: int = 20, ridge: float = 1e-6, metric: str = "paper_euclidean"):
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self.ridge = check_positive_float(ridge, "ridge", allow_zero=True)
        self.metric = metric
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._searcher: Optional[BruteForceNeighbors] = None

    def fit(self, X, y) -> "LoessRegression":
        """Store the training data and index it for neighbour search."""
        self._X = as_float_matrix(X, name="X")
        y = np.asarray(y, dtype=float).ravel()
        if y.shape[0] != self._X.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        self._y = y
        self._searcher = BruteForceNeighbors(metric=self.metric).fit(self._X)
        return self

    def _check_fitted(self) -> None:
        if self._X is None:
            raise NotFittedError("LoessRegression must be fitted before predicting")

    def predict(self, X) -> np.ndarray:
        """Fit-and-evaluate one weighted local line per query row."""
        self._check_fitted()
        X = as_float_matrix(X, name="X")
        k = min(self.n_neighbors, self._X.shape[0])
        predictions = np.empty(X.shape[0])
        for row in range(X.shape[0]):
            distances, indices = self._searcher.kneighbors(X[row], k)
            local_X = self._X[indices]
            local_y = self._y[indices]
            weights = tricube_weights(distances)
            design = design_matrix(local_X)
            weighted = design * weights[:, None]
            gram = weighted.T @ design + self.ridge * np.eye(design.shape[1])
            moment = weighted.T @ local_y
            try:
                coefficients = np.linalg.solve(gram, moment)
            except np.linalg.LinAlgError:
                coefficients = np.linalg.pinv(gram) @ moment
            predictions[row] = (design_matrix(X[row : row + 1]) @ coefficients)[0]
        return predictions

    def predict_one(self, x) -> float:
        """Predict a single query point."""
        x = np.asarray(x, dtype=float).reshape(1, -1)
        return float(self.predict(x)[0])
