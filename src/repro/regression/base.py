"""Common interface for the regression models used throughout the library.

Every regressor exposes ``fit(X, y)`` and ``predict(X)`` plus a
``coefficients`` property following the paper's parameterisation
``φ = (φ[C], φ[A1], ..., φ[A_{m-1}])``: the first entry is the intercept
(constant term) and the remaining entries are the attribute weights.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from .._validation import as_float_matrix, as_float_vector, check_consistent_length
from ..exceptions import DataError, NotFittedError

__all__ = ["Regressor", "design_matrix"]


def design_matrix(X: np.ndarray) -> np.ndarray:
    """Prepend the constant column of ones: ``(1, t[F])`` from Formula 3."""
    X = as_float_matrix(X, name="X")
    return np.hstack([np.ones((X.shape[0], 1)), X])


class Regressor(ABC):
    """Abstract base class for linear-style regressors."""

    def __init__(self) -> None:
        self._coefficients: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def coefficients(self) -> np.ndarray:
        """The fitted parameter vector ``φ`` (intercept first)."""
        self._check_fitted()
        return self._coefficients.copy()

    @property
    def intercept(self) -> float:
        """The constant term ``φ[C]``."""
        self._check_fitted()
        return float(self._coefficients[0])

    @property
    def weights(self) -> np.ndarray:
        """The attribute weights ``φ[A1..A_{m-1}]``."""
        self._check_fitted()
        return self._coefficients[1:].copy()

    def is_fitted(self) -> bool:
        """Whether ``fit`` has been called successfully."""
        return self._coefficients is not None

    def _check_fitted(self) -> None:
        if self._coefficients is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before it can be used"
            )

    # ------------------------------------------------------------------ #
    @abstractmethod
    def fit(self, X, y) -> "Regressor":
        """Fit the model on covariates ``X`` (n, d) and targets ``y`` (n,)."""

    def predict(self, X) -> np.ndarray:
        """Predict targets for covariates ``X`` using ``(1, X) @ φ``."""
        self._check_fitted()
        X = as_float_matrix(X, name="X")
        if X.shape[1] != self._coefficients.shape[0] - 1:
            raise DataError(
                f"X has {X.shape[1]} attributes but the model was fitted on "
                f"{self._coefficients.shape[0] - 1}"
            )
        return design_matrix(X) @ self._coefficients

    def predict_one(self, x) -> float:
        """Predict the target for a single covariate vector."""
        x = as_float_vector(x, name="x")
        return float(self.predict(x.reshape(1, -1))[0])

    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_xy(X, y):
        X = as_float_matrix(X, name="X")
        y = as_float_vector(y, name="y")
        check_consistent_length(X, y, names=("X", "y"))
        return X, y
