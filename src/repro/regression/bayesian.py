"""Bayesian linear regression (the paper's BLR baseline, MICE ``norm``).

The MICE ``norm`` method imputes by drawing regression parameters from their
posterior distribution and predicting with the drawn parameters, adding
Gaussian observation noise.  This module implements the standard conjugate
normal–inverse-gamma treatment:

* posterior mean of the coefficients is the ridge solution with prior
  precision ``λ``;
* the coefficient posterior covariance is ``σ² (XᵀX + λE)⁻¹`` with ``σ²``
  estimated from the residuals;
* prediction either uses the posterior mean (``sample=False``) or a
  parameter draw plus observation noise (``sample=True``), matching the
  stochastic flavour of ``mice.norm``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_positive_float, check_random_state
from .base import Regressor, design_matrix

__all__ = ["BayesianLinearRegression"]


class BayesianLinearRegression(Regressor):
    """Conjugate Bayesian linear regression with an isotropic Gaussian prior.

    Parameters
    ----------
    prior_precision:
        Prior precision ``λ`` of the coefficients (acts like a ridge penalty).
    sample:
        If True, :meth:`predict` draws the coefficients from their posterior
        and adds observation noise — the behaviour of MICE's ``norm`` method.
        If False, the posterior mean is used deterministically.
    random_state:
        Seed or generator used when ``sample`` is True.
    """

    def __init__(self, prior_precision: float = 1e-3, sample: bool = True, random_state=None):
        super().__init__()
        self.prior_precision = check_positive_float(prior_precision, "prior_precision")
        self.sample = bool(sample)
        self._rng = check_random_state(random_state)
        self._covariance: Optional[np.ndarray] = None
        self._noise_variance: float = 0.0

    def fit(self, X, y) -> "BayesianLinearRegression":
        """Compute the coefficient posterior from the training data."""
        X, y = self._validate_xy(X, y)
        design = design_matrix(X)
        n, d = design.shape
        gram = design.T @ design + self.prior_precision * np.eye(d)
        gram_inv = np.linalg.inv(gram)
        mean = gram_inv @ design.T @ y
        residuals = y - design @ mean
        dof = max(n - d, 1)
        self._noise_variance = float(residuals @ residuals) / dof
        self._coefficients = mean
        self._covariance = self._noise_variance * gram_inv
        return self

    @property
    def noise_variance(self) -> float:
        """Estimated observation-noise variance ``σ²``."""
        self._check_fitted()
        return self._noise_variance

    @property
    def coefficient_covariance(self) -> np.ndarray:
        """Posterior covariance of the coefficients."""
        self._check_fitted()
        return self._covariance.copy()

    def sample_coefficients(self) -> np.ndarray:
        """Draw one coefficient vector from the posterior."""
        self._check_fitted()
        return self._rng.multivariate_normal(self._coefficients, self._covariance)

    def predict(self, X) -> np.ndarray:
        """Posterior-mean prediction, or a stochastic draw when ``sample`` is set."""
        self._check_fitted()
        design = design_matrix(X)
        if not self.sample:
            return design @ self._coefficients
        drawn = self.sample_coefficients()
        noise = self._rng.normal(scale=np.sqrt(max(self._noise_variance, 0.0)), size=design.shape[0])
        return design @ drawn + noise
