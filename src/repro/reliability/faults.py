"""Deterministic fault injection for the durability stack.

A :class:`FaultPlan` is an explicit, seeded-by-the-caller list of
:class:`Fault` descriptors, each naming an *injection site* (a stable
string like ``"wal.frame"``), the 1-based occurrence of that site at which
it triggers, and what happens then:

* ``io_error`` — raise :class:`OSError` before any byte is written;
* ``crash`` — raise :class:`SimulatedCrash` (the stand-in for ``kill -9``);
* ``torn_write`` — write only the first ``byte_offset`` bytes of the
  payload, then crash (the half-written frame stays on disk);
* ``corrupt_frame`` — flip one payload byte and keep going (silent disk
  corruption the CRC framing must catch on read);
* ``slow`` — sleep ``delay`` seconds (drives the serve loop's deadline).

Plans are threaded *explicitly* through the components under test (the
WAL, the artifact writer, the serve dispatch) — no globals, no
monkeypatching — so a chaos test that replays the same plan observes the
same failure at the same byte.  Sites a component fires:

========================  =====================================================
``wal.frame``             one op record about to be framed into the WAL
``wal.control``           a WAL open/rotation control record
``artifact.arrays``       the staged ``.npz`` blob of an artifact write
``artifact.manifest``     the staged manifest of an artifact write
``artifact.commit``       just before the manifest rename that commits
``serve.dispatch``        a serve-loop command handler about to run
========================  =====================================================
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..obs import count_fault_activation

__all__ = ["FAULT_KINDS", "SimulatedCrash", "Fault", "FaultPlan"]

#: Recognised fault kinds, in the order documented above.
FAULT_KINDS = ("io_error", "crash", "torn_write", "corrupt_frame", "slow")


class SimulatedCrash(Exception):
    """An injected crash: the process is considered dead at this point.

    Deliberately *not* a :class:`~repro.exceptions.ReproError` — a real
    crash is not a typed wire error, and tests must be able to catch it
    without catching the library's own failure modes.
    """


@dataclass(frozen=True)
class Fault:
    """One planned fault: at occurrence ``hit`` of ``site``, do ``kind``.

    ``session`` scopes the hit count: ``None`` (the default) counts every
    firing of the site process-wide — racy under the concurrent scheduler
    when several sessions dispatch in parallel — while a session name
    counts only firings attributed to that session, which the scheduler
    serialises (one worker drains a session at a time), so "the 3rd
    dispatch *of tenant-b*" lands on the same request in every run no
    matter how the worker pool interleaves the other tenants.  Session
    scoping only applies at sites whose component attributes firings to a
    session (currently ``serve.dispatch``); elsewhere a scoped fault
    never matches.
    """

    site: str
    kind: str
    hit: int = 1
    byte_offset: int = 0  # torn_write: payload bytes written before the tear
    delay: float = 0.0  # slow: seconds to sleep
    session: Optional[str] = None  # None = process-wide hit counting

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not isinstance(self.hit, int) or isinstance(self.hit, bool) or self.hit < 1:
            raise ConfigurationError(
                f"a fault triggers at a 1-based site occurrence, got hit={self.hit!r}"
            )
        if self.byte_offset < 0:
            raise ConfigurationError(
                f"byte_offset must be non-negative, got {self.byte_offset}"
            )


class FaultPlan:
    """A deterministic schedule of faults over named injection sites.

    The plan counts how often each site fires (thread-safe — the serve
    loop dispatches from transport threads) and triggers each fault at
    exactly its planned occurrence.  ``fired`` records the faults that
    actually triggered, in order, for test assertions.
    """

    def __init__(self, faults: Optional[List[Fault]] = None):
        self.faults: List[Fault] = list(faults or [])
        self.fired: List[Fault] = []
        # (site, scope) -> count; scope None is the process-wide tally, a
        # session name its per-session tally (both advance on every firing
        # that carries the session, so global and scoped faults compose).
        self._counts: Dict[Tuple[str, Optional[str]], int] = {}
        self._lock = threading.Lock()

    @classmethod
    def crash_after_ops(cls, n_ops: int) -> "FaultPlan":
        """Crash on the WAL frame of op ``n_ops + 1``: exactly ``n_ops``
        accepted mutations are durable, the next one dies before logging."""
        return cls([Fault("wal.frame", "crash", hit=n_ops + 1)])

    def hits(self, site: str, session: Optional[str] = None) -> int:
        """How many times ``site`` has fired so far.

        With ``session``, the count of firings attributed to that session
        only (sites that pass no session attribution never advance it).
        """
        with self._lock:
            return self._counts.get((site, session), 0)

    def _take(self, site: str,
              session: Optional[str] = None) -> Optional[Fault]:
        with self._lock:
            count = self._counts.get((site, None), 0) + 1
            self._counts[(site, None)] = count
            session_count = 0
            if session is not None:
                session_count = self._counts.get((site, session), 0) + 1
                self._counts[(site, session)] = session_count
            for fault in self.faults:
                if fault.site != site:
                    continue
                matched = (
                    fault.hit == count
                    if fault.session is None
                    else (fault.session == session
                          and fault.hit == session_count)
                )
                if matched:
                    self.fired.append(fault)
                    count_fault_activation(site, fault.kind)
                    return fault
        return None

    def fire(self, site: str, session: Optional[str] = None) -> None:
        """Injection point for sites that carry no payload bytes.

        ``session`` attributes this firing to a session, advancing its
        scoped hit count alongside the process-wide one.
        """
        fault = self._take(site, session)
        if fault is None:
            return
        if fault.kind == "slow":
            time.sleep(fault.delay)
        elif fault.kind == "io_error":
            raise OSError(f"injected I/O error at {site} (hit {fault.hit})")
        elif fault.kind in ("crash", "torn_write"):
            raise SimulatedCrash(f"injected crash at {site} (hit {fault.hit})")
        # corrupt_frame needs bytes to corrupt; at a byte-less site it is
        # a no-op by design.

    def intercept_write(
        self, site: str, data: bytes, session: Optional[str] = None
    ) -> Tuple[bytes, Optional[BaseException]]:
        """Injection point for byte-level writes.

        Returns ``(bytes_to_write, exception_to_raise_after_writing)``.
        ``io_error``/``crash`` raise before any byte lands; ``torn_write``
        hands back a prefix plus a :class:`SimulatedCrash` the writer must
        raise *after* flushing the prefix; ``corrupt_frame`` hands back
        silently-corrupted bytes.
        """
        fault = self._take(site, session)
        if fault is None:
            return data, None
        if fault.kind == "slow":
            time.sleep(fault.delay)
            return data, None
        if fault.kind == "io_error":
            raise OSError(f"injected I/O error at {site} (hit {fault.hit})")
        if fault.kind == "crash":
            raise SimulatedCrash(f"injected crash at {site} (hit {fault.hit})")
        if fault.kind == "torn_write":
            cut = min(fault.byte_offset, len(data))
            return data[:cut], SimulatedCrash(
                f"injected torn write at {site}: wrote {cut} of {len(data)} bytes"
            )
        # corrupt_frame: flip one byte in place, keep running.
        if not data:
            return data, None
        corrupted = bytearray(data)
        position = min(fault.byte_offset, len(data) - 1)
        corrupted[position] ^= 0x5A
        return bytes(corrupted), None

    def __repr__(self) -> str:
        return f"FaultPlan(faults={self.faults!r}, fired={len(self.fired)})"
