"""``repro.reliability`` — crash-safe durability for the online stack.

Two pieces:

* :mod:`repro.reliability.wal` — a length+CRC-framed write-ahead log of
  accepted mutation ops with fsync policy knobs, segment rotation and
  torn-tail tolerance; :class:`~repro.api.OnlineSession` logs every
  accepted mutation through it and recovery
  (:func:`repro.api.recover_session`, ``python -m repro recover``) replays
  the tail onto the last checkpoint;
* :mod:`repro.reliability.faults` — deterministic fault injection
  (``io_error`` / ``crash`` / ``torn_write`` / ``corrupt_frame`` /
  ``slow``) threaded through the WAL, the artifact writer and the serve
  dispatch, driving the chaos property tests.
"""

from .faults import FAULT_KINDS, Fault, FaultPlan, SimulatedCrash
from .wal import (
    FRAME_HEADER_BYTES,
    WAL_VERSION,
    WalState,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "SimulatedCrash",
    "FRAME_HEADER_BYTES",
    "WAL_VERSION",
    "WalState",
    "WriteAheadLog",
    "read_wal",
]
