"""Reliability benchmarks: WAL overhead on the serve path + recovery speed.

Durability is only adoptable if it is close to free on the hot path, so the
benchmark drives the *same* mixed request stream — mostly single-row
imputes with a periodic single-row append, the pattern that actually
touches the WAL — through four servers: no WAL at all, and one per sync
policy (``off`` / ``batch`` / ``always``).  The headline number is the
wall-clock ratio of each durable mode over the WAL-less baseline; the
acceptance bar of the reliability PR is **batch ≤ 1.15×** (asserted in
``benchmarks/test_perf_reliability.py``, written to
``BENCH_reliability.json``).

The report also times recovery itself: replaying the ``batch`` run's WAL
from scratch into a fresh session, ops/s included, so the cost of a crash
is a number rather than folklore.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..data import load_dataset

__all__ = ["run_reliability_benchmark"]


def _wire_rows(values: np.ndarray) -> List[List[float]]:
    return [[float(cell) for cell in row] for row in values]


def _build_stream(
    values: np.ndarray,
    store_rows: int,
    n_requests: int,
    append_every: int,
    seed: int,
) -> List[str]:
    """Pre-encoded JSONL request lines: imputes with periodic appends."""
    rng = np.random.default_rng(seed)
    width = values.shape[1]
    lines = []
    for i in range(n_requests):
        if append_every and i % append_every == append_every - 1:
            row = values[store_rows + i % (len(values) - store_rows)]
            lines.append(json.dumps({
                "v": 1, "id": i, "cmd": "append", "session": "bench",
                "rows": [[float(cell) for cell in row]],
            }))
        else:
            row = [float(cell) for cell in values[int(rng.integers(store_rows))]]
            row[int(rng.integers(width))] = None
            lines.append(json.dumps({
                "v": 1, "id": i, "cmd": "impute", "session": "bench",
                "rows": [row],
            }))
    return lines


def _drive(server, lines: List[str]) -> float:
    start = time.perf_counter()
    for line in lines:
        response = server.handle_line(line)
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
    return time.perf_counter() - start


def run_reliability_benchmark(
    profile=None,
    *,
    dataset: str = "sn",
    store_rows: Optional[int] = None,
    n_requests: int = 240,
    append_every: int = 4,
    repeats: int = 3,
    engine_params: Optional[Dict[str, object]] = None,
    work_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Measure WAL overhead per sync policy and recovery speed."""
    from ..api.serve import SessionServer
    from ..api.sessions import recover_session
    from ..experiments.settings import get_profile

    profile = profile or get_profile()
    store_rows = store_rows or profile.dataset_sizes[dataset]
    engine_params = engine_params or dict(
        k=profile.default_k,
        learning="adaptive",
        stepping=profile.iim_stepping,
        max_learning_neighbors=min(25, profile.iim_max_learning_neighbors),
    )
    values = load_dataset(dataset, size=2 * store_rows).raw
    lines = _build_stream(values, store_rows, n_requests, append_every, seed=2)
    config = {"method": "IIM", "mode": "online", "params": dict(engine_params)}

    owns_work_dir = work_dir is None
    root = Path(work_dir) if work_dir else Path(tempfile.mkdtemp(prefix="repro-wal-bench-"))
    root.mkdir(parents=True, exist_ok=True)

    def ask(server, request):
        response = server.handle_line(json.dumps(request))
        if not response["ok"]:
            raise AssertionError(f"serve request failed: {response['error']}")
        return response["result"]

    modes = ("none", "off", "batch", "always")
    overhead: Dict[str, Dict[str, object]] = {}
    batch_wal_dir: Optional[Path] = None
    try:
        # Interleave the repeats round-robin over the modes: a transient
        # machine stall then lands on every mode about equally instead of
        # poisoning one mode's whole block, and the per-mode minimum gives
        # a stable overhead ratio.
        seconds: Dict[str, List[float]] = {mode: [] for mode in modes}
        for repeat in range(repeats):
            for mode in modes:
                wal_root = None
                if mode != "none":
                    wal_root = root / f"{mode}-{repeat}"
                server = SessionServer(
                    wal_root=wal_root,
                    wal_sync=mode if mode != "none" else "default",
                )
                ask(server, {"v": 1, "cmd": "create", "session": "bench",
                             "config": config})
                ask(server, {"v": 1, "cmd": "append", "session": "bench",
                             "rows": _wire_rows(values[:store_rows])})
                # Warm every attribute state: production serving runs warm.
                for attribute in range(values.shape[1]):
                    query = [float(cell) for cell in values[store_rows]]
                    query[attribute] = None
                    ask(server, {"v": 1, "cmd": "impute", "session": "bench",
                                 "rows": [query]})
                seconds[mode].append(_drive(server, lines))
                ask(server, {"v": 1, "cmd": "shutdown"})
                if mode == "batch":
                    batch_wal_dir = wal_root / "bench"
        for mode in modes:
            best = min(seconds[mode])
            overhead[mode] = {
                "seconds": best,
                "requests_per_second": n_requests / best,
            }
        baseline = overhead["none"]["seconds"]
        for mode in modes[1:]:
            overhead[mode]["overhead_vs_none"] = (
                overhead[mode]["seconds"] / baseline
            )

        # Recovery: rebuild a fresh session from the batch run's WAL alone.
        start = time.perf_counter()
        session, report = recover_session(batch_wal_dir, reattach=False)
        recovery_seconds = time.perf_counter() - start
        recovery = {
            "seconds": recovery_seconds,
            "replayed_ops": report["replayed_ops"],
            "ops_per_second": (
                report["replayed_ops"] / recovery_seconds
                if recovery_seconds > 0 else float("inf")
            ),
            "n_tuples": report["n_tuples"],
        }
    finally:
        if owns_work_dir:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "profile": profile.name,
        "dataset": dataset,
        "store_rows": store_rows,
        "n_requests": n_requests,
        "append_every": append_every,
        "wal_overhead": overhead,
        "recovery": recovery,
    }
