"""Write-ahead log for the online engine's accepted mutations.

Every mutation an :class:`~repro.api.OnlineSession` *accepts* (applies
successfully) is logged as one framed record, so a crash loses at most the
op that was in flight — never an acknowledged one — and recovery replays
the tail onto the last checkpoint to rebuild exactly the pre-crash store.

Frame format — one record per line in segment files ``00000001.wal``, …::

    <length:08d><crc32:08x><payload-json>\\n

``length`` is the byte length of the ASCII JSON payload and ``crc32`` its
checksum, so a reader can detect a truncated or corrupted tail without
trusting line discipline: the first frame that fails length, terminator,
CRC or JSON validation ends the *valid prefix*; everything after it is the
*torn tail*, reported (and repaired away on open) rather than replayed.

Records:

* ``{"kind": "open", "base_seq": n, "config": {...}}`` — starts every
  fresh log (and every post-checkpoint truncation): ops with ``seq <= n``
  are covered by the checkpoint, and ``config`` is the
  :class:`~repro.api.SessionConfig` wire form recovery uses to rebuild a
  session when no checkpoint exists;
* ``{"kind": "op", "seq": n, "op": {...}}`` — one accepted
  :class:`~repro.api.MutationOp` in wire form, with a strictly-increasing
  sequence number.

Sync policies (``repro.config.WAL_SYNC_POLICIES``): ``always`` fsyncs per
record, ``batch`` flushes to the OS per accepted mutation batch, ``off``
leaves the Python buffer in charge.  Open/rotation control records are
always fsynced — they are rare and recovery anchors on them.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..config import resolve_wal_sync
from ..exceptions import ConfigurationError
from ..obs import count_wal_bytes, count_wal_rotation, observe_wal_sync

__all__ = [
    "WAL_VERSION",
    "FRAME_HEADER_BYTES",
    "SEGMENT_SUFFIX",
    "WalState",
    "read_wal",
    "WriteAheadLog",
]

#: Version of the record schema; bumped on incompatible changes.
WAL_VERSION = 1

#: Bytes of the ASCII frame header (8-digit length + 8-hex-digit CRC32).
FRAME_HEADER_BYTES = 16

SEGMENT_SUFFIX = ".wal"

#: Op records per segment before the log rotates to a fresh file.
DEFAULT_SEGMENT_MAX_RECORDS = 4096


def _frame(payload: bytes) -> bytes:
    header = f"{len(payload):08d}{zlib.crc32(payload) & 0xFFFFFFFF:08x}"
    return header.encode("ascii") + payload + b"\n"


def _encode_record(record: Dict[str, object]) -> bytes:
    return json.dumps(record, separators=(",", ":")).encode("ascii")


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    # Directory fsync makes renames/creates durable on POSIX; platforms
    # that refuse to open directories simply skip it.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _segments(directory: Path) -> List[Path]:
    return sorted(directory.glob(f"*{SEGMENT_SUFFIX}"))


def _parse_segment(data: bytes):
    """Parse one segment: ``(records, valid_prefix_bytes, torn_reason)``."""
    records: List[Dict[str, object]] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < FRAME_HEADER_BYTES + 1:
            return records, offset, "truncated frame header"
        header = data[offset:offset + FRAME_HEADER_BYTES]
        try:
            length = int(header[:8])
            crc = int(header[8:], 16)
        except ValueError:
            return records, offset, "unparseable frame header"
        end = offset + FRAME_HEADER_BYTES + length
        if end >= len(data):
            return records, offset, "truncated frame payload"
        payload = data[offset + FRAME_HEADER_BYTES:end]
        if data[end:end + 1] != b"\n":
            return records, offset, "missing frame terminator"
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return records, offset, "frame CRC mismatch"
        try:
            record = json.loads(payload.decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            return records, offset, "frame payload is not valid JSON"
        if not isinstance(record, dict):
            return records, offset, "frame payload is not an object"
        records.append(record)
        offset = end + 1
    return records, offset, None


@dataclass
class WalState:
    """What a scan of a WAL directory found: the recoverable truth."""

    #: Session config wire form from the open record (``None`` if torn away).
    config: Optional[Dict[str, object]] = None
    #: Ops with ``seq <= base_seq`` are covered by the last checkpoint.
    base_seq: int = 0
    #: The valid-prefix op records, ``(seq, op_wire)`` in log order.
    ops: List[Tuple[int, Dict[str, object]]] = field(default_factory=list)
    #: Highest sequence number seen (``base_seq`` when no ops).
    last_seq: int = 0
    #: ``None`` for a clean log, else where and why the valid prefix ended.
    torn: Optional[Dict[str, object]] = None
    #: Segment file names, in order.
    segments: List[str] = field(default_factory=list)
    #: Whether any open record survived (False only for empty/fully-torn logs).
    has_open: bool = False


def _scan(directory: Path) -> WalState:
    state = WalState()
    segments = _segments(directory)
    state.segments = [segment.name for segment in segments]
    for position, segment in enumerate(segments):
        data = segment.read_bytes()
        records, valid_bytes, reason = _parse_segment(data)
        for record in records:
            kind = record.get("kind")
            if kind == "open" and not state.has_open:
                state.base_seq = int(record.get("base_seq", 0))
                state.last_seq = max(state.last_seq, state.base_seq)
                config = record.get("config")
                state.config = config if isinstance(config, dict) else None
                state.has_open = True
            elif kind == "op":
                seq = int(record.get("seq", 0))
                op = record.get("op")
                if isinstance(op, dict):
                    state.ops.append((seq, op))
                    state.last_seq = max(state.last_seq, seq)
            # Unknown record kinds are skipped for forward compatibility.
        if reason is not None:
            state.torn = {
                "segment": segment.name,
                "offset": valid_bytes,
                "reason": reason,
                "dropped_bytes": len(data) - valid_bytes,
                "dropped_segments": [s.name for s in segments[position + 1:]],
            }
            break
    return state


def read_wal(directory: Union[str, Path]) -> WalState:
    """Read-only scan of a WAL directory (valid prefix + torn-tail report)."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"no WAL directory at {directory}")
    return _scan(directory)


class WriteAheadLog:
    """Append-only durable log of accepted mutation ops.

    Opening an existing directory adopts its state: the valid prefix is
    kept, a torn tail (from a crash mid-frame) is truncated away and
    reported through :attr:`repaired`, and appends continue from the last
    good sequence number.  ``injector`` threads a
    :class:`~repro.reliability.FaultPlan` through every byte written.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        sync: Optional[str] = "default",
        segment_max_records: int = DEFAULT_SEGMENT_MAX_RECORDS,
        config: Optional[Dict[str, object]] = None,
        injector=None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync = resolve_wal_sync(sync)
        if segment_max_records < 1:
            raise ConfigurationError(
                f"segment_max_records must be positive, got {segment_max_records}"
            )
        self.segment_max_records = int(segment_max_records)
        self._injector = injector
        self._handle = None
        #: Torn-tail info repaired away on open (``None`` for a clean log).
        self.repaired: Optional[Dict[str, object]] = None

        state = _scan(self.directory)
        if state.torn is not None:
            self._repair(state.torn)
            self.repaired = state.torn
        self._config = state.config if state.config is not None else config
        self._base_seq = state.base_seq
        self._last_seq = state.last_seq

        segments = _segments(self.directory)
        if not segments or not state.has_open:
            # Fresh log (or one whose open record was torn away before any
            # op survived): drop empty leftovers and start at segment 1.
            for segment in segments:
                segment.unlink()
            self._segment_index = 0
            self._segment_records = 0
            self._open_segment(write_open=True)
        else:
            self._segment_index = int(segments[-1].stem)
            last_records, _, _ = _parse_segment(segments[-1].read_bytes())
            self._segment_records = sum(
                1 for record in last_records if record.get("kind") == "op"
            )
            self._handle = open(segments[-1], "ab")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def last_seq(self) -> int:
        """Sequence number of the last logged op."""
        return self._last_seq

    @property
    def base_seq(self) -> int:
        """Ops at or below this sequence are covered by the checkpoint."""
        return self._base_seq

    @property
    def config(self) -> Optional[Dict[str, object]]:
        """The session-config wire form recovery rebuilds a session from."""
        return self._config

    def stats(self) -> Dict[str, object]:
        """Observability document: lag, sizes, sync policy, repairs."""
        segments = _segments(self.directory)
        return {
            "sync": self.sync,
            "base_seq": self._base_seq,
            "last_seq": self._last_seq,
            # Ops logged since the last checkpoint = what replay would redo.
            "lag_records": self._last_seq - self._base_seq,
            "segments": len(segments),
            "bytes": sum(segment.stat().st_size for segment in segments),
            "repaired_tail": self.repaired,
        }

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def log_op(self, op_wire: Dict[str, object]) -> int:
        """Append one accepted op; returns its sequence number.

        Under ``sync="always"`` the record is fsynced before returning;
        under ``"batch"`` call :meth:`commit` at the batch boundary.
        """
        if self._handle is None:
            raise ConfigurationError("this write-ahead log is closed")
        seq = self._last_seq + 1
        payload = _encode_record({"kind": "op", "seq": seq, "op": op_wire})
        # On a failed write nothing (or a torn frame the reader drops)
        # landed, and the sequence number is not consumed.
        frame = _frame(payload)
        self._write(frame, site="wal.frame")
        count_wal_bytes(len(frame))
        self._last_seq = seq
        self._segment_records += 1
        if self.sync == "always":
            sync_started = time.perf_counter()
            _fsync_file(self._handle)
            observe_wal_sync(
                time.perf_counter() - sync_started, policy="always"
            )
        if self._segment_records >= self.segment_max_records:
            self._rotate()
        return seq

    def log_ops(self, op_wires) -> int:
        """Append a batch of accepted ops and commit once; returns last seq."""
        try:
            for op_wire in op_wires:
                self.log_op(op_wire)
        finally:
            self.commit()
        return self._last_seq

    def commit(self) -> None:
        """Batch boundary: under ``"batch"`` push buffered records to the OS."""
        if self._handle is not None and self.sync == "batch":
            flush_started = time.perf_counter()
            self._handle.flush()
            observe_wal_sync(
                time.perf_counter() - flush_started, policy="batch"
            )

    def truncate(self, config: Optional[Dict[str, object]] = None) -> None:
        """Reset the log after a committed checkpoint.

        Every logged op is now covered by the artifact, so all segments
        are deleted and a fresh one opens with ``base_seq = last_seq``.
        """
        if config is not None:
            self._config = config
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        for segment in _segments(self.directory):
            segment.unlink()
        _fsync_dir(self.directory)
        self._base_seq = self._last_seq
        self._segment_index = 0
        self._segment_records = 0
        self._open_segment(write_open=True)

    def close(self) -> None:
        """Flush, fsync and close the current segment."""
        if self._handle is None:
            return
        _fsync_file(self._handle)
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _write(self, data: bytes, site: str) -> None:
        raise_after = None
        if self._injector is not None:
            data, raise_after = self._injector.intercept_write(site, data)
        self._handle.write(data)
        if raise_after is not None:
            # A torn write leaves its prefix visible on disk, like a real
            # crash mid-write would.
            self._handle.flush()
            raise raise_after

    def _open_segment(self, write_open: bool) -> None:
        self._segment_index += 1
        path = self.directory / f"{self._segment_index:08d}{SEGMENT_SUFFIX}"
        self._handle = open(path, "ab")
        self._segment_records = 0
        if write_open:
            payload = _encode_record({
                "kind": "open",
                "wal_version": WAL_VERSION,
                "base_seq": self._base_seq,
                "config": self._config,
            })
            self._write(_frame(payload), site="wal.control")
        # Control records and fresh files are rare: anchor them durably
        # regardless of the sync policy.
        _fsync_file(self._handle)
        _fsync_dir(self.directory)

    def _rotate(self) -> None:
        _fsync_file(self._handle)
        self._handle.close()
        self._open_segment(write_open=False)
        count_wal_rotation()

    def _repair(self, torn: Dict[str, object]) -> None:
        """Truncate the torn tail so appends continue after the valid prefix."""
        segment = self.directory / str(torn["segment"])
        with open(segment, "r+b") as handle:
            handle.truncate(int(torn["offset"]))
            _fsync_file(handle)
        for name in torn["dropped_segments"]:
            (self.directory / str(name)).unlink(missing_ok=True)
        _fsync_dir(self.directory)

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.directory)!r}, sync={self.sync!r}, "
            f"base_seq={self._base_seq}, last_seq={self._last_seq})"
        )
