"""Parametric workloads: generators, a scenario registry, and a replayer.

The subsystem follows the generator-dataset model: a
:class:`~repro.scenarios.spec.ScenarioSpec` is a named, versioned,
JSON-serializable ``(generator, params, seed)`` triple; generation is
deterministic (byte-identical traces, pinned by golden digests); and any
spec replays against the online engine or the full JSONL serve loop with
cold-refit verification (:func:`~repro.scenarios.replayer.replay`).

Quick tour::

    from repro.scenarios import registry, replay

    registry.list()                      # the built-in coverage surface
    spec = registry.get("gentle_churn")
    report = replay(spec)                # engine transport, oracle-verified
    report = replay("multi_tenant_mix")  # auto → full serve loop
    report.as_dict()["phases"]           # per-phase p50/p95/p99

or from the shell: ``python -m repro scenario list | describe | replay |
trace``.
"""

from .generators import (
    TRACE_FORMAT_VERSION,
    ScenarioTrace,
    SessionPlan,
    TraceStep,
    generate_trace,
)
from .registry import (
    builtin_names,
    get,
    golden_digest,
    golden_digests,
    register,
    registry,
)
from .replayer import ReplayReport, StepReport, replay
from .spec import (
    GENERATOR_SCHEMAS,
    GENERATORS,
    Param,
    ScenarioSpec,
    describe_schema,
)

__all__ = [
    "GENERATORS",
    "GENERATOR_SCHEMAS",
    "Param",
    "ScenarioSpec",
    "describe_schema",
    "TRACE_FORMAT_VERSION",
    "TraceStep",
    "SessionPlan",
    "ScenarioTrace",
    "generate_trace",
    "register",
    "get",
    "builtin_names",
    "golden_digest",
    "golden_digests",
    "registry",
    "StepReport",
    "ReplayReport",
    "replay",
]
