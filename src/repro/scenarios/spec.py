"""Declarative scenario specs: ``(generator, params, seed) → trace``.

A :class:`ScenarioSpec` is the unit of the scenario subsystem: a named,
versioned, JSON-serializable description of a workload.  It carries

* ``generator`` — which trace generator to run (one of :data:`GENERATORS`);
* ``params`` — the generator's parameters, validated eagerly against the
  generator's :data:`parameter schema <GENERATOR_SCHEMAS>` (unknown keys,
  wrong types and out-of-range values are rejected; omitted keys are
  filled with their schema defaults so the canonical form is complete);
* ``model`` — :class:`~repro.core.iim.IIMImputer` constructor parameters,
  used for both the online engine under test and the cold-refit oracle;
* ``engine`` — online-session knobs (a subset of
  :data:`~repro.api.messages.ENGINE_KNOBS`), exactly the ``engine`` field
  of a serve-loop ``create`` request;
* ``seed`` — the single integer that, together with the generator and
  params, fully determines the trace byte for byte.

Specs round-trip losslessly through JSON (:meth:`to_json` /
:meth:`from_json`), and :meth:`canonical_json` (sorted keys, no
whitespace) is the stable prefix of the trace serialization that golden
digests are computed over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..exceptions import ScenarioError

__all__ = [
    "GENERATORS",
    "GENERATOR_SCHEMAS",
    "Param",
    "ScenarioSpec",
    "describe_schema",
]

#: Recognised trace generators (implemented in
#: :mod:`repro.scenarios.generators`).
GENERATORS = ("streaming", "churn", "analytic", "multi_tenant")

#: Arrival processes of the single-tenant generators.  ``adversarial`` is
#: churn-only: steady appends with periodic update/delete storms.
ARRIVALS = ("steady", "bursty", "diurnal", "adversarial")

#: Missingness regimes governing which query cell goes missing.
MISSINGNESS_REGIMES = ("mcar", "mar", "mnar")

#: Query sampling modes (mirrors ``repro.experiments.streaming``).
QUERY_MODES = ("store", "ood")

_REQUIRED = object()


@dataclass(frozen=True)
class Param:
    """One schema entry: type, default, and range/choice constraints."""

    types: tuple
    default: object = _REQUIRED
    choices: Optional[tuple] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    allow_none: bool = False
    help: str = ""

    @property
    def required(self) -> bool:
        return self.default is _REQUIRED


def _int(default=_REQUIRED, *, minimum=None, maximum=None, allow_none=False,
         help=""):
    return Param((int,), default, None, minimum, maximum, allow_none, help)


def _float(default=_REQUIRED, *, minimum=None, maximum=None, help=""):
    return Param((int, float), default, None, minimum, maximum, False, help)


def _choice(choices, default=_REQUIRED, *, help=""):
    return Param((str,), default, tuple(choices), None, None, False, help)


_SINGLE_TENANT_SCHEMA: Dict[str, Param] = {
    "dataset": Param(
        (str,), "sn", help="registered dataset name (see repro.data.datasets)"
    ),
    "size": _int(
        None, minimum=4, allow_none=True,
        help="tuples to generate (None = the dataset's published size)",
    ),
    "n_rounds": _int(4, minimum=1, help="mutation+query rounds after the fit"),
    "initial_fraction": _float(
        0.4, minimum=0.01, maximum=0.99,
        help="fraction of the relation forming the initial store",
    ),
    "queries_per_round": _int(8, minimum=1, help="incomplete tuples per round"),
    "query_mode": _choice(
        QUERY_MODES, "store",
        help="'store' samples seen tuples, 'ood' shifts them off-support",
    ),
    "ood_shift": _float(
        2.0, minimum=0.0,
        help="shift size in per-attribute std deviations (query_mode='ood')",
    ),
    "arrival": _choice(
        ARRIVALS, "steady", help="arrival process shaping per-round batches"
    ),
    "burst_every": _int(
        2, minimum=2, help="bursty: every k-th round is a burst"
    ),
    "burst_factor": _float(
        3.0, minimum=1.0, help="bursty: burst rounds carry this weight"
    ),
    "period": _int(4, minimum=2, help="diurnal: rounds per sine period"),
    "amplitude": _float(
        0.8, minimum=0.0, maximum=0.99, help="diurnal: modulation depth"
    ),
    "missingness": _choice(
        MISSINGNESS_REGIMES, "mcar",
        help="which query cell goes missing: MCAR/MAR/MNAR",
    ),
    "drift": _float(
        0.0, minimum=0.0,
        help="per-round drift of the missingness regime (0 = stationary)",
    ),
}

_CHURN_EXTRAS: Dict[str, Param] = {
    "updates_per_round": _int(
        3, minimum=0, help="in-place corrections per round"
    ),
    "deletes_per_round": _int(4, minimum=0, help="retractions per round"),
    "update_noise": _float(
        0.05, minimum=0.0,
        help="update jitter in per-attribute std deviations",
    ),
    "storm_every": _int(
        3, minimum=2, help="adversarial: every k-th round is a churn storm"
    ),
    "storm_factor": _float(
        4.0, minimum=1.0,
        help="adversarial: storm rounds multiply updates/deletes by this",
    ),
}

_ANALYTIC_EXTRAS: Dict[str, Param] = {
    "selects_per_round": _int(
        3, minimum=1,
        help="SELECT statements per query step (WHERE/ORDER BY/LIMIT over "
             "the live relation, missing cells imputed on demand)",
    ),
    "incomplete_per_round": _int(
        2, minimum=0,
        help="incomplete tuples APPENDed (as '?' literals) per query step; "
             "they park in the pending side-store",
    ),
    "select_limit": _int(
        5, minimum=1, help="LIMIT of the generated SELECT statements"
    ),
}

#: Parameter schema per generator.  ``multi_tenant`` carries a ``tenants``
#: list whose entries are validated structurally here and resolved against
#: the registry at generation time.
GENERATOR_SCHEMAS: Dict[str, Dict[str, Param]] = {
    "streaming": dict(_SINGLE_TENANT_SCHEMA),
    "churn": {**_SINGLE_TENANT_SCHEMA, **_CHURN_EXTRAS},
    "analytic": {**_SINGLE_TENANT_SCHEMA, **_ANALYTIC_EXTRAS},
    "multi_tenant": {
        "tenants": Param(
            (list,),
            help="tenant sessions: [{'name', 'scenario', 'overrides'?, "
                 "'model'?, 'engine'?, 'seed'?}, ...]",
        ),
    },
}

#: Keys a ``tenants`` entry may carry.
_TENANT_KEYS = frozenset(
    {"name", "scenario", "overrides", "model", "engine", "seed"}
)

_JSON_SCALARS = (str, int, float, bool, type(None))


def _check_scalar_dict(mapping, what: str) -> Dict[str, object]:
    if not isinstance(mapping, dict):
        raise ScenarioError(f"{what} must be a dict, got {mapping!r}")
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise ScenarioError(f"{what} keys must be strings, got {key!r}")
        if not isinstance(value, _JSON_SCALARS):
            raise ScenarioError(
                f"{what}[{key!r}] must be a JSON scalar, got {value!r}"
            )
    return dict(mapping)


def _validate_tenants(entries) -> list:
    if not isinstance(entries, list) or not entries:
        raise ScenarioError(
            "a multi_tenant scenario needs a non-empty 'tenants' list"
        )
    from ..api.messages import SESSION_NAME_PATTERN

    seen = set()
    validated = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ScenarioError(
                f"tenants[{position}] must be an object, got {entry!r}"
            )
        unknown = sorted(set(entry) - _TENANT_KEYS)
        if unknown:
            raise ScenarioError(
                f"tenants[{position}] has unknown fields {unknown}; "
                f"accepted: {sorted(_TENANT_KEYS)}"
            )
        name = entry.get("name")
        if not isinstance(name, str) or not SESSION_NAME_PATTERN.match(name):
            raise ScenarioError(
                f"tenants[{position}] needs a session-safe 'name' "
                f"(matching {SESSION_NAME_PATTERN.pattern}), got {name!r}"
            )
        if name in seen:
            raise ScenarioError(f"duplicate tenant name {name!r}")
        seen.add(name)
        scenario = entry.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise ScenarioError(
                f"tenants[{position}] needs a 'scenario' name to compose"
            )
        tenant = {"name": name, "scenario": scenario}
        if "overrides" in entry:
            tenant["overrides"] = _check_scalar_dict(
                entry["overrides"], f"tenants[{position}].overrides"
            )
        if "model" in entry:
            tenant["model"] = _check_scalar_dict(
                entry["model"], f"tenants[{position}].model"
            )
        if "engine" in entry:
            tenant["engine"] = _check_scalar_dict(
                entry["engine"], f"tenants[{position}].engine"
            )
        if "seed" in entry:
            seed = entry["seed"]
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ScenarioError(
                    f"tenants[{position}].seed must be an integer, got {seed!r}"
                )
            tenant["seed"] = seed
        validated.append(tenant)
    return validated


def _validate_params(generator: str, params: Dict[str, object]
                     ) -> Dict[str, object]:
    """Validate ``params`` against the generator schema; fill defaults.

    Returns the canonical (complete, schema-ordered) parameter dict the
    trace serialization embeds, so a future change to a schema default
    changes every affected golden digest — loudly.
    """
    schema = GENERATOR_SCHEMAS[generator]
    if not isinstance(params, dict):
        raise ScenarioError(
            f"scenario params must be a dict, got {params!r}"
        )
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise ScenarioError(
            f"unknown parameter(s) {unknown} for generator {generator!r}; "
            f"accepted: {sorted(schema)}"
        )
    canonical: Dict[str, object] = {}
    for name, param in schema.items():
        if name in params:
            value = params[name]
        elif param.required:
            raise ScenarioError(
                f"generator {generator!r} requires parameter {name!r}"
            )
        else:
            value = param.default
        if name == "tenants":
            canonical[name] = _validate_tenants(value)
            continue
        if value is None:
            if not param.allow_none:
                raise ScenarioError(
                    f"parameter {name!r} of generator {generator!r} must "
                    f"not be null"
                )
            canonical[name] = None
            continue
        if isinstance(value, bool) or not isinstance(value, param.types):
            expected = "/".join(t.__name__ for t in param.types)
            raise ScenarioError(
                f"parameter {name!r} of generator {generator!r} must be "
                f"{expected}, got {value!r}"
            )
        if param.choices is not None and value not in param.choices:
            raise ScenarioError(
                f"parameter {name!r} must be one of {list(param.choices)}, "
                f"got {value!r}"
            )
        if param.minimum is not None and value < param.minimum:
            raise ScenarioError(
                f"parameter {name!r} must be >= {param.minimum}, got {value!r}"
            )
        if param.maximum is not None and value > param.maximum:
            raise ScenarioError(
                f"parameter {name!r} must be <= {param.maximum}, got {value!r}"
            )
        canonical[name] = value
    return canonical


def _validate_model(model: Dict[str, object]) -> Dict[str, object]:
    """Model params must name real ``IIMImputer`` constructor arguments."""
    model = _check_scalar_dict(model, "scenario model params")
    import inspect

    from ..core.iim import IIMImputer

    accepted = {
        name
        for name in inspect.signature(IIMImputer.__init__).parameters
        if name != "self"
    }
    unknown = sorted(set(model) - accepted)
    if unknown:
        raise ScenarioError(
            f"unknown model parameter(s) {unknown}; IIMImputer accepts "
            f"{sorted(accepted)}"
        )
    return model


def _validate_engine(engine: Dict[str, object]) -> Dict[str, object]:
    engine = _check_scalar_dict(engine, "scenario engine knobs")
    from ..api.messages import ENGINE_KNOBS

    unknown = sorted(set(engine) - set(ENGINE_KNOBS))
    if unknown:
        raise ScenarioError(
            f"unknown engine knob(s) {unknown}; accepted: {list(ENGINE_KNOBS)}"
        )
    return engine


@dataclass
class ScenarioSpec:
    """One named, versioned, JSON-serializable workload description."""

    name: str
    generator: str
    params: Dict[str, object] = field(default_factory=dict)
    model: Dict[str, object] = field(default_factory=dict)
    engine: Dict[str, object] = field(default_factory=dict)
    seed: int = 0
    version: int = 1
    description: str = ""

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ScenarioError("a scenario needs a non-empty string name")
        if self.generator not in GENERATORS:
            raise ScenarioError(
                f"unknown generator {self.generator!r}; available "
                f"generators: {list(GENERATORS)}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ScenarioError(
                f"scenario seed must be an integer, got {self.seed!r}"
            )
        if (
            isinstance(self.version, bool)
            or not isinstance(self.version, int)
            or self.version < 1
        ):
            raise ScenarioError(
                f"scenario version must be a positive integer, got "
                f"{self.version!r}"
            )
        if not isinstance(self.description, str):
            raise ScenarioError(
                f"scenario description must be a string, got "
                f"{self.description!r}"
            )
        self.params = _validate_params(self.generator, self.params)
        self.model = _validate_model(self.model)
        self.engine = _validate_engine(self.engine)

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "version": self.version,
            "description": self.description,
            "generator": self.generator,
            "params": json.loads(json.dumps(self.params)),
            "model": dict(self.model),
            "engine": dict(self.engine),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        if not isinstance(payload, dict):
            raise ScenarioError(
                f"a scenario spec must be an object, got {payload!r}"
            )
        unknown = sorted(
            set(payload)
            - {"name", "version", "description", "generator", "params",
               "model", "engine", "seed"}
        )
        if unknown:
            raise ScenarioError(f"unknown scenario spec fields: {unknown}")
        if "generator" not in payload:
            raise ScenarioError("a scenario spec needs a 'generator' field")
        return cls(
            name=payload.get("name", ""),
            generator=payload["generator"],
            params=dict(payload.get("params") or {}),
            model=dict(payload.get("model") or {}),
            engine=dict(payload.get("engine") or {}),
            seed=payload.get("seed", 0),
            version=payload.get("version", 1),
            description=payload.get("description", ""),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"malformed scenario JSON: {exc}") from exc
        return cls.from_dict(payload)

    def canonical_json(self) -> str:
        """Stable serialization (sorted keys, no whitespace) for digests."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy with top-level field overrides (re-validated)."""
        payload = self.to_dict()
        payload.update(overrides)
        return ScenarioSpec.from_dict(payload)


def describe_schema(generator: str) -> Tuple[Dict[str, Dict[str, object]], ...]:
    """Human/JSON-friendly rendering of one generator's parameter schema."""
    if generator not in GENERATOR_SCHEMAS:
        raise ScenarioError(
            f"unknown generator {generator!r}; available generators: "
            f"{list(GENERATORS)}"
        )
    rows = []
    for name, param in GENERATOR_SCHEMAS[generator].items():
        row: Dict[str, object] = {
            "param": name,
            "type": "/".join(t.__name__ for t in param.types),
            "help": param.help,
        }
        if param.required:
            row["required"] = True
        else:
            row["default"] = param.default
        if param.choices is not None:
            row["choices"] = list(param.choices)
        if param.minimum is not None:
            row["min"] = param.minimum
        if param.maximum is not None:
            row["max"] = param.maximum
        rows.append(row)
    return tuple(rows)
