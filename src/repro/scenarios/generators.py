"""Deterministic trace generators: ``(generator, params, seed) → trace``.

Every generator maps a validated :class:`~repro.scenarios.spec.ScenarioSpec`
to a :class:`ScenarioTrace` — a fully materialised event sequence (initial
fit, then rounds of appends/updates/deletes followed by imputation queries
with known ground truth).  Generation is pure: the only randomness source
is ``numpy.random.default_rng(seed)``, every array is materialised eagerly,
and :meth:`ScenarioTrace.to_bytes` is a canonical serialization, so the
same spec yields byte-identical traces on every machine (golden digests in
``golden_digests.json`` pin this down per built-in scenario).

The ``steady`` arrival + ``mcar`` missingness paths consume the rng in
*exactly* the order of the legacy ``repro.experiments.streaming`` harness
(query-row choice, then blanked-cell draw; churn adds update-target choice,
update-noise normals and delete-target choice in between).  That is what
lets :func:`repro.experiments.run_streaming` / ``run_churn`` become thin
wrappers over scenario specs without changing a single historical number.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data import load_dataset
from ..exceptions import ScenarioError
from .spec import ScenarioSpec

__all__ = [
    "TRACE_FORMAT_VERSION",
    "resolve_model_params",
    "TraceStep",
    "SessionPlan",
    "ScenarioTrace",
    "generate_trace",
]

#: Bump when the canonical trace serialization changes (invalidates all
#: golden digests, which is the point).
TRACE_FORMAT_VERSION = 1


@dataclass
class TraceStep:
    """One event in a trace: the initial fit, or one mutation+query round.

    For ``kind == "fit"`` only ``append_rows`` (the initial store) and
    ``n_store`` are set.  For ``kind == "round"`` the arrays describe, in
    application order: append ``append_rows``, overwrite ``update_targets``
    with ``update_rows`` (indices into the post-append store), delete
    ``delete_targets`` (sorted indices into the post-append store), then
    impute ``queries`` (one NaN per row at ``blanked``; ``truth`` holds the
    ground-truth values).  ``n_store`` is the surviving store size after
    all three mutations.

    ``kind == "query"`` steps (the ``analytic`` generator) carry only
    ``statements`` — query-language text executed in order through the
    transport's ``query`` verb.  Their ``APPEND`` rows are all incomplete
    (every row has a ``?``), so they land in the pending side-store and
    never perturb the complete store the cold-refit oracle mirrors;
    ``SELECT`` statements impute referenced missing cells on demand
    without mutating anything.
    """

    index: int
    session: str
    kind: str  # "fit" | "round" | "query"
    round_index: int
    n_store: int
    append_rows: Optional[np.ndarray] = None
    update_targets: Optional[np.ndarray] = None
    update_rows: Optional[np.ndarray] = None
    delete_targets: Optional[np.ndarray] = None
    queries: Optional[np.ndarray] = None
    blanked: Optional[np.ndarray] = None
    truth: Optional[np.ndarray] = None
    statements: Optional[List[str]] = None


@dataclass
class SessionPlan:
    """Per-session setup: name, schema width and engine/model parameters."""

    name: str
    width: int
    model: Dict[str, object] = field(default_factory=dict)
    engine: Dict[str, object] = field(default_factory=dict)


_STEP_ARRAYS = (
    ("append_rows", "<f8"),
    ("update_targets", "<i8"),
    ("update_rows", "<f8"),
    ("delete_targets", "<i8"),
    ("queries", "<f8"),
    ("blanked", "<i8"),
    ("truth", "<f8"),
)


@dataclass
class ScenarioTrace:
    """A fully materialised scenario: spec + session plans + event steps."""

    spec: ScenarioSpec
    sessions: List[SessionPlan]
    steps: List[TraceStep]

    def to_bytes(self) -> bytes:
        """Canonical serialization: header JSON, then per-step meta+arrays.

        Arrays are emitted as contiguous little-endian ``f8``/``i8`` bytes
        with shapes recorded in the step meta, so equality of ``to_bytes``
        is exact equality of every number in the trace (NaNs included).
        """
        header = {
            "format": TRACE_FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "sessions": [
                {
                    "name": plan.name,
                    "width": plan.width,
                    "model": plan.model,
                    "engine": plan.engine,
                }
                for plan in self.sessions
            ],
            "n_steps": len(self.steps),
        }
        chunks = [
            json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        ]
        for step in self.steps:
            meta = {
                "index": step.index,
                "session": step.session,
                "kind": step.kind,
                "round_index": step.round_index,
                "n_store": step.n_store,
                "shapes": {
                    name: (
                        None
                        if getattr(step, name) is None
                        else list(np.asarray(getattr(step, name)).shape)
                    )
                    for name, _ in _STEP_ARRAYS
                },
            }
            # Additive: absent for array-only steps, so every pre-existing
            # golden digest is untouched by the statement extension.
            if step.statements is not None:
                meta["statements"] = list(step.statements)
            chunks.append(
                b"\n"
                + json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
            )
            for name, dtype in _STEP_ARRAYS:
                array = getattr(step, name)
                if array is not None:
                    chunks.append(
                        np.ascontiguousarray(array, dtype=dtype).tobytes()
                    )
        return b"".join(chunks)

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_bytes` (the golden-trace pin)."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    @property
    def n_rounds(self) -> int:
        return sum(1 for step in self.steps if step.kind == "round")


# --------------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------------- #
def _legacy_batches(remaining: int, n_rounds: int, n_total: int) -> List[int]:
    """The legacy steady split: equal batches, remainder on the last round."""
    batch = remaining // n_rounds
    if batch < 1:
        raise ScenarioError(
            f"{n_rounds} rounds do not fit into {remaining} remaining tuples"
        )
    counts = [batch] * n_rounds
    counts[-1] = remaining - batch * (n_rounds - 1)
    return counts


def _allocate(total: int, weights: List[float]) -> List[int]:
    """Largest-remainder allocation of ``total`` items over ``weights``.

    Deterministic (stable argsort tie-break) and floored at one item per
    slot, so every round appends at least one tuple.
    """
    weights_arr = np.asarray(weights, dtype=float)
    shares = weights_arr / weights_arr.sum() * total
    counts = np.floor(shares).astype(np.int64)
    fractional = shares - counts
    leftover = total - int(counts.sum())
    order = np.argsort(-fractional, kind="stable")
    for position in range(leftover):
        counts[order[position % len(counts)]] += 1
    # Min-1 fixup: move items from the fullest rounds into empty ones.
    while (counts == 0).any():
        counts[int(np.argmax(counts == 0))] += 1
        counts[int(np.argmax(counts))] -= 1
    return [int(c) for c in counts]


def _arrival_batches(params: Dict[str, object], remaining: int,
                     n_total: int) -> List[int]:
    arrival = params["arrival"]
    n_rounds = params["n_rounds"]
    if remaining < n_rounds:
        raise ScenarioError(
            f"{n_rounds} rounds do not fit into {remaining} remaining tuples"
        )
    if arrival in ("steady", "adversarial"):
        # Adversarial churn keeps steady appends; the storms hit the
        # update/delete schedule instead.
        return _legacy_batches(remaining, n_rounds, n_total)
    if arrival == "bursty":
        weights = [
            params["burst_factor"]
            if t % params["burst_every"] == params["burst_every"] - 1
            else 1.0
            for t in range(n_rounds)
        ]
    else:  # diurnal
        weights = [
            1.0
            + params["amplitude"]
            * math.sin(2.0 * math.pi * t / params["period"])
            for t in range(n_rounds)
        ]
    return _allocate(remaining, weights)


# --------------------------------------------------------------------------- #
# Missingness regimes
# --------------------------------------------------------------------------- #
def _choose_blanked(rng, store: np.ndarray, queries: np.ndarray,
                    params: Dict[str, object], round_index: int) -> np.ndarray:
    """Pick the cell that goes missing in each query row.

    * ``mcar`` — uniform random attribute (the legacy draw), optionally
      rotated by ``drift`` per round;
    * ``mar`` — depends on the *observed* driver attribute (column 0):
      rows whose driver exceeds the store median blank one non-driver
      column, the rest another, with the column pair rotating under drift;
    * ``mnar`` — depends on the value that goes missing itself: the cell
      with the largest drift-weighted |z|-score is blanked.
    """
    regime = params["missingness"]
    drift = params["drift"]
    n_queries, width = queries.shape
    if regime == "mcar":
        raw = rng.integers(0, width, size=n_queries)
        if drift:
            raw = (raw + int(round(drift * round_index))) % width
        return raw
    if width < 2:
        raise ScenarioError(
            f"missingness regime {regime!r} needs at least 2 attributes, "
            f"got width {width}"
        )
    if regime == "mar":
        driver = 0
        median = float(np.median(store[:, driver]))
        non_driver = [c for c in range(width) if c != driver]
        rotation = int(drift * round_index)
        hi_col = non_driver[rotation % len(non_driver)]
        lo_col = non_driver[(rotation + 1) % len(non_driver)]
        return np.where(
            queries[:, driver] > median, hi_col, lo_col
        ).astype(np.int64)
    # mnar: the magnitude of the missing value decides that it is missing.
    means = store.mean(axis=0)
    stds = store.std(axis=0)
    stds[stds == 0] = 1.0
    z_scores = np.abs(queries - means[None, :]) / stds[None, :]
    column_weights = np.ones(width)
    column_weights[int(drift * round_index) % width] += drift
    return np.argmax(z_scores * column_weights[None, :], axis=1).astype(np.int64)


def _draw_queries(store, rng, params, round_index):
    """Legacy-ordered query sampling: row choice, OOD shift, cell blanking."""
    n_queries = params["queries_per_round"]
    n_store, _ = store.shape
    if n_queries > n_store:
        raise ScenarioError(
            f"queries_per_round={n_queries} exceeds the store size "
            f"{n_store} in round {round_index}"
        )
    query_rows = rng.choice(n_store, size=n_queries, replace=False)
    queries = store[query_rows].copy()
    if params["query_mode"] == "ood":
        stds = store.std(axis=0)
        stds[stds == 0] = 1.0
        queries = queries + params["ood_shift"] * stds[None, :]
    blanked = _choose_blanked(rng, store, queries, params, round_index)
    truth = queries[np.arange(n_queries), blanked].copy()
    queries[np.arange(n_queries), blanked] = np.nan
    return queries, blanked, truth


# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #
def _session_name(spec: ScenarioSpec) -> str:
    from ..api.messages import SESSION_NAME_PATTERN

    return spec.name if SESSION_NAME_PATTERN.match(spec.name) else "scenario"


def resolve_model_params(model: Dict[str, object]) -> Dict[str, object]:
    """Expand ``model`` to the complete, explicit IIM parameter set.

    The serve loop's ``create`` fills omitted model parameters with the
    *curated paper defaults* of the method registry, while a direct
    :class:`~repro.api.sessions.OnlineSession` (and the cold-refit oracle)
    uses the :class:`~repro.core.iim.IIMImputer` constructor defaults —
    two different answers for the same spec.  Session plans therefore pin
    every constructor parameter explicitly (constructor defaults unless
    the spec overrides them), so every transport and the oracle build the
    exact same model.
    """
    import inspect

    from ..core.iim import IIMImputer

    resolved = {
        name: parameter.default
        for name, parameter in
        inspect.signature(IIMImputer.__init__).parameters.items()
        if name != "self"
    }
    resolved.update(model)
    return resolved


def _load_values(params: Dict[str, object]) -> np.ndarray:
    relation = load_dataset(params["dataset"], size=params["size"])
    return relation.raw


def _initial_split(values: np.ndarray, params: Dict[str, object]) -> int:
    n_total = values.shape[0]
    initial = int(n_total * params["initial_fraction"])
    if initial < 2 or initial >= n_total:
        raise ScenarioError(
            f"initial_fraction={params['initial_fraction']} leaves no room "
            f"for appends on {n_total} tuples"
        )
    return initial


def _generate_streaming(spec: ScenarioSpec) -> ScenarioTrace:
    params = spec.params
    if params["arrival"] == "adversarial":
        raise ScenarioError(
            "arrival='adversarial' shapes update/delete storms and is "
            "churn-only; use generator='churn'"
        )
    values = _load_values(params)
    n_total, width = values.shape
    initial = _initial_split(values, params)
    batches = _arrival_batches(params, n_total - initial, n_total)

    rng = np.random.default_rng(spec.seed)
    session = _session_name(spec)
    steps = [
        TraceStep(
            index=0,
            session=session,
            kind="fit",
            round_index=-1,
            n_store=initial,
            append_rows=values[:initial].copy(),
        )
    ]
    offset = initial
    for round_index, batch in enumerate(batches):
        stop = offset + batch
        # Queries sample the store as it stands *before* this round's
        # append — the legacy ordering, preserved for wrapper equivalence.
        queries, blanked, truth = _draw_queries(
            values[:offset], rng, params, round_index
        )
        steps.append(
            TraceStep(
                index=len(steps),
                session=session,
                kind="round",
                round_index=round_index,
                n_store=stop,
                append_rows=values[offset:stop].copy(),
                queries=queries,
                blanked=blanked,
                truth=truth,
            )
        )
        offset = stop
    return ScenarioTrace(
        spec=spec,
        sessions=[
            SessionPlan(
                name=session, width=width,
                model=resolve_model_params(spec.model),
                engine=dict(spec.engine),
            )
        ],
        steps=steps,
    )


def _storm_scale(params: Dict[str, object], round_index: int) -> float:
    if params["arrival"] != "adversarial":
        return 1.0
    if round_index % params["storm_every"] == params["storm_every"] - 1:
        return params["storm_factor"]
    return 1.0


def _generate_churn(spec: ScenarioSpec) -> ScenarioTrace:
    params = spec.params
    values = _load_values(params)
    n_total, width = values.shape
    initial = _initial_split(values, params)
    batches = _arrival_batches(params, n_total - initial, n_total)

    rng = np.random.default_rng(spec.seed)
    session = _session_name(spec)
    store = values[:initial].copy()
    column_stds = values.std(axis=0)
    column_stds[column_stds == 0] = 1.0

    steps = [
        TraceStep(
            index=0,
            session=session,
            kind="fit",
            round_index=-1,
            n_store=initial,
            append_rows=store.copy(),
        )
    ]
    offset = initial
    for round_index, batch in enumerate(batches):
        stop = offset + batch
        append_block = values[offset:stop]
        scale = _storm_scale(params, round_index)

        n_updates = min(
            int(round(params["updates_per_round"] * scale)), store.shape[0]
        )
        update_targets = rng.choice(
            store.shape[0], size=n_updates, replace=False
        )
        update_rows = store[update_targets] + params[
            "update_noise"
        ] * column_stds[None, :] * rng.standard_normal(
            (n_updates, store.shape[1])
        )

        store = np.vstack([store, append_block])
        store[update_targets] = update_rows

        n_deletes = min(
            int(round(params["deletes_per_round"] * scale)),
            store.shape[0] - 2,
        )
        delete_targets = np.sort(
            rng.choice(store.shape[0], size=n_deletes, replace=False)
        )
        keep = np.ones(store.shape[0], dtype=bool)
        keep[delete_targets] = False
        surviving = store[keep]

        queries, blanked, truth = _draw_queries(
            surviving, rng, params, round_index
        )
        steps.append(
            TraceStep(
                index=len(steps),
                session=session,
                kind="round",
                round_index=round_index,
                n_store=surviving.shape[0],
                append_rows=append_block.copy(),
                update_targets=update_targets.astype(np.int64),
                update_rows=update_rows,
                delete_targets=delete_targets.astype(np.int64),
                queries=queries,
                blanked=blanked,
                truth=truth,
            )
        )
        store = surviving
        offset = stop
    return ScenarioTrace(
        spec=spec,
        sessions=[
            SessionPlan(
                name=session, width=width,
                model=resolve_model_params(spec.model),
                engine=dict(spec.engine),
            )
        ],
        steps=steps,
    )


def _append_statement(rows: np.ndarray) -> str:
    """Render rows as an ``APPEND VALUES`` statement (NaN cells as ``?``)."""
    rendered = []
    for row in rows:
        cells = ["?" if np.isnan(v) else repr(float(v)) for v in row]
        rendered.append("(" + ", ".join(cells) + ")")
    return "APPEND VALUES " + ", ".join(rendered) + ";"


def _generate_analytic(spec: ScenarioSpec) -> ScenarioTrace:
    """Streaming rounds interleaved with relational query steps.

    The base trace is exactly :func:`_generate_streaming` (same rng
    consumption, so the impute rounds verify against the cold oracle like
    any streaming scenario).  After every round a ``kind == "query"`` step
    runs statement text through the transport's ``query`` verb: an
    ``APPEND`` of incomplete tuples (``?`` literals — they park in the
    pending side-store), a few ``SELECT``\\ s with ``WHERE``/``ORDER
    BY``/``LIMIT`` whose referenced missing cells are imputed on demand,
    one aggregate, and periodically an ``EXPLAIN``.  Statement randomness
    comes from a *separate* seeded stream so the base rounds stay
    byte-compatible with plain streaming parameters.
    """
    base = _generate_streaming(spec)
    params = spec.params
    values = _load_values(params)
    width = values.shape[1]
    names = [f"A{i + 1}" for i in range(width)]
    rng = np.random.default_rng([spec.seed, TRACE_FORMAT_VERSION])

    steps: List[TraceStep] = []
    session = base.sessions[0].name
    for step in base.steps:
        step.index = len(steps)
        steps.append(step)
        if step.kind != "round":
            continue
        statements: List[str] = []
        n_incomplete = params["incomplete_per_round"]
        if n_incomplete:
            rows = values[
                rng.choice(step.n_store, size=n_incomplete, replace=False)
            ].copy()
            holes = rng.integers(0, width, size=n_incomplete)
            rows[np.arange(n_incomplete), holes] = np.nan
            statements.append(_append_statement(rows))
        for _ in range(params["selects_per_round"]):
            first, second = (
                names[int(i)] for i in rng.integers(0, width, size=2)
            )
            threshold = float(
                values[: step.n_store, names.index(first)].mean()
            )
            statements.append(
                f"SELECT {first}, {second} WHERE {first} >= {threshold!r} "
                f"ORDER BY {second} DESC LIMIT {params['select_limit']};"
            )
        statements.append(
            f"SELECT count(*), avg({names[int(rng.integers(width))]});"
        )
        if step.round_index % 2 == 1:
            statements.append(
                f"EXPLAIN SELECT {names[0]} ORDER BY {names[-1]} "
                f"LIMIT {params['select_limit']};"
            )
        steps.append(
            TraceStep(
                index=len(steps),
                session=session,
                kind="query",
                round_index=step.round_index,
                n_store=step.n_store,
                statements=statements,
            )
        )
    return ScenarioTrace(spec=spec, sessions=base.sessions, steps=steps)


def _generate_multi_tenant(spec: ScenarioSpec) -> ScenarioTrace:
    from .registry import get as registry_get

    sessions: List[SessionPlan] = []
    tenant_traces: List[ScenarioTrace] = []
    for position, tenant in enumerate(spec.params["tenants"]):
        base = registry_get(tenant["scenario"])
        if base.generator == "multi_tenant":
            raise ScenarioError(
                f"tenants[{position}] composes {tenant['scenario']!r}, "
                f"which is itself multi_tenant; nesting is not supported"
            )
        child = ScenarioSpec(
            name=tenant["name"],
            generator=base.generator,
            params={**base.params, **tenant.get("overrides", {})},
            model={**base.model, **spec.model, **tenant.get("model", {})},
            engine={**base.engine, **spec.engine, **tenant.get("engine", {})},
            seed=tenant.get("seed", spec.seed + position),
            description=base.description,
        )
        trace = generate_trace(child)
        tenant_traces.append(trace)
        plan = trace.sessions[0]
        sessions.append(
            SessionPlan(
                name=tenant["name"], width=plan.width,
                model=plan.model, engine=plan.engine,
            )
        )

    # Interleave: every tenant fits first (spec order), then rounds are
    # replayed round-robin — the arrival order a concurrent serve loop
    # would actually see.
    steps: List[TraceStep] = []
    for trace, plan in zip(tenant_traces, sessions):
        for step in trace.steps:
            if step.kind == "fit":
                step.session = plan.name
                step.index = len(steps)
                steps.append(step)
    max_rounds = max(trace.n_rounds for trace in tenant_traces)
    for round_index in range(max_rounds):
        for trace, plan in zip(tenant_traces, sessions):
            for step in trace.steps:
                # "query" steps (analytic tenants) ride with their round.
                if (
                    step.kind in ("round", "query")
                    and step.round_index == round_index
                ):
                    step.session = plan.name
                    step.index = len(steps)
                    steps.append(step)
    return ScenarioTrace(spec=spec, sessions=sessions, steps=steps)


_GENERATOR_FUNCS = {
    "streaming": _generate_streaming,
    "churn": _generate_churn,
    "analytic": _generate_analytic,
    "multi_tenant": _generate_multi_tenant,
}


def generate_trace(spec: ScenarioSpec) -> ScenarioTrace:
    """Materialise ``spec`` into its deterministic event trace."""
    if spec.generator not in _GENERATOR_FUNCS:
        raise ScenarioError(
            f"unknown generator {spec.generator!r}; available generators: "
            f"{sorted(_GENERATOR_FUNCS)}"
        )
    return _GENERATOR_FUNCS[spec.generator](spec)
