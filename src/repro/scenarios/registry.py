"""The scenario registry: named, versioned, enumerable workload specs.

The registry is the coverage surface CI iterates over: ``list()`` the
names, ``get()`` a spec, ``replay()`` it (see
:mod:`repro.scenarios.replayer`).  Built-ins span the generator parameter
space — arrival processes (steady/bursty/diurnal/adversarial), missingness
regimes (MCAR/MAR/MNAR with drift), OOD query shift, fixed vs. adaptive
learning, gentle vs. storm churn, and a multi-tenant mix composing three
single-tenant specs — each small enough to smoke-replay in seconds.

Every built-in has a checked-in golden trace digest
(``golden_digests.json``); :func:`golden_digest` exposes them so tests and
the replayer can catch accidental generator drift.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ..exceptions import ScenarioError
from .spec import ScenarioSpec

__all__ = [
    "register",
    "get",
    "list",
    "builtin_names",
    "golden_digest",
    "golden_digests",
    "registry",
]

_GOLDEN_PATH = Path(__file__).with_name("golden_digests.json")

#: Shared model parameters of the built-ins: small enough that every
#: scenario replays (online + cold oracle per round) in seconds, large
#: enough that the adaptive learning phase and the model cache do real work.
_SMOKE_MODEL = {"k": 5, "stepping": 10, "max_learning_neighbors": 15}

_REGISTRY: Dict[str, ScenarioSpec] = {}
_BUILTIN_NAMES: List[str] = []


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry; ``replace=True`` overwrites."""
    if not isinstance(spec, ScenarioSpec):
        raise ScenarioError(
            f"only ScenarioSpec instances can be registered, got {spec!r}"
        )
    if spec.name in _REGISTRY and not replace:
        raise ScenarioError(
            f"scenario {spec.name!r} is already registered; pass "
            f"replace=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered scenarios: {list()}"
        ) from None


def list() -> List[str]:  # noqa: A001 - mirrors the registry.list() surface
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def builtin_names() -> List[str]:
    """Names of the built-in scenarios, in registration order."""
    return _BUILTIN_NAMES.copy()


def golden_digests() -> Dict[str, str]:
    """The checked-in ``name → sha256`` golden trace digests."""
    if not _GOLDEN_PATH.exists():
        return {}
    with open(_GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def golden_digest(name: str) -> Optional[str]:
    """The checked-in digest for ``name`` (None when not pinned)."""
    return golden_digests().get(name)


class _Registry:
    """Object facade (``registry.list()/get()/register()``) over the module."""

    list = staticmethod(list)
    get = staticmethod(get)
    register = staticmethod(register)
    builtin_names = staticmethod(builtin_names)
    golden_digest = staticmethod(golden_digest)
    golden_digests = staticmethod(golden_digests)


registry = _Registry()


def _builtin(spec: ScenarioSpec) -> ScenarioSpec:
    register(spec)
    _BUILTIN_NAMES.append(spec.name)
    return spec


# --------------------------------------------------------------------------- #
# Built-in scenarios
# --------------------------------------------------------------------------- #
_builtin(ScenarioSpec(
    name="steady_stream",
    description="Append-only baseline: steady arrivals, MCAR queries over "
                "the paper's SN curve (the legacy run_streaming shape).",
    generator="streaming",
    params={"dataset": "sn", "size": 220, "n_rounds": 4,
            "queries_per_round": 8},
    model=dict(_SMOKE_MODEL),
    seed=0,
))

_builtin(ScenarioSpec(
    name="bursty_stream",
    description="Bursty arrivals: every second round carries a 3x append "
                "burst, stressing journal absorption and cache refresh.",
    generator="streaming",
    params={"dataset": "sn", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "arrival": "bursty",
            "burst_every": 2, "burst_factor": 3.0},
    model=dict(_SMOKE_MODEL),
    seed=1,
))

_builtin(ScenarioSpec(
    name="diurnal_stream",
    description="Diurnal arrivals on the heterogeneous ASF table: batch "
                "sizes follow a sine with 80% modulation depth.",
    generator="streaming",
    params={"dataset": "asf", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "arrival": "diurnal",
            "period": 4, "amplitude": 0.8},
    model=dict(_SMOKE_MODEL),
    seed=2,
))

_builtin(ScenarioSpec(
    name="ood_probe",
    description="Out-of-distribution probe: queries shifted 2.5 column "
                "stds off the training support before a cell is blanked.",
    generator="streaming",
    params={"dataset": "sn", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "query_mode": "ood", "ood_shift": 2.5},
    model=dict(_SMOKE_MODEL),
    seed=3,
))

_builtin(ScenarioSpec(
    name="mar_missingness_drift",
    description="MAR with drift: which column is missing depends on the "
                "observed driver attribute, and the column pair rotates "
                "one step per round.",
    generator="streaming",
    params={"dataset": "asf", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "missingness": "mar", "drift": 1.0},
    model=dict(_SMOKE_MODEL),
    seed=4,
))

_builtin(ScenarioSpec(
    name="mnar_missingness_drift",
    description="MNAR with drift on the sparse CA table: the most extreme "
                "drift-weighted cell of each query goes missing.",
    generator="streaming",
    params={"dataset": "ca", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "missingness": "mnar", "drift": 0.5},
    model=dict(_SMOKE_MODEL),
    seed=5,
))

_builtin(ScenarioSpec(
    name="fixed_learning_stream",
    description="Fixed learning phase (learning_neighbors pinned to k) on "
                "steady arrivals — the paper's non-adaptive ablation.",
    generator="streaming",
    params={"dataset": "sn", "size": 220, "n_rounds": 4,
            "queries_per_round": 8},
    model={**_SMOKE_MODEL, "learning": "fixed", "learning_neighbors": 5},
    seed=6,
))

_builtin(ScenarioSpec(
    name="gentle_churn",
    description="Full-lifecycle baseline: every round appends, corrects 3 "
                "tuples in place and retracts 4 before the queries.",
    generator="churn",
    params={"dataset": "sn", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "updates_per_round": 3,
            "deletes_per_round": 4},
    model=dict(_SMOKE_MODEL),
    engine={"refresh_policy": "lazy"},
    seed=7,
))

_builtin(ScenarioSpec(
    name="adversarial_churn",
    description="Adversarial churn: steady appends with 4x update/delete "
                "storms every third round, the hybrid relearn policy's "
                "worst case.",
    generator="churn",
    params={"dataset": "sn", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "arrival": "adversarial",
            "updates_per_round": 3, "deletes_per_round": 4,
            "storm_every": 3, "storm_factor": 4.0},
    model=dict(_SMOKE_MODEL),
    seed=8,
))

_builtin(ScenarioSpec(
    name="analytic_probe",
    description="Relational probe: streaming rounds interleaved with "
                "query-language steps — APPENDs of incomplete tuples ('?' "
                "literals parking in the pending side-store) followed by "
                "SELECT/aggregate/EXPLAIN statements whose referenced "
                "missing cells are imputed on demand.",
    generator="analytic",
    params={"dataset": "sn", "size": 220, "n_rounds": 4,
            "queries_per_round": 8, "selects_per_round": 3,
            "incomplete_per_round": 2},
    model=dict(_SMOKE_MODEL),
    seed=10,
))

_builtin(ScenarioSpec(
    name="multi_tenant_mix",
    description="Three concurrent tenants — a steady streamer, an OOD "
                "prober and a gentle churner — interleaved round-robin "
                "through one serve loop.",
    generator="multi_tenant",
    params={"tenants": [
        {"name": "tenant-steady", "scenario": "steady_stream"},
        {"name": "tenant-ood", "scenario": "ood_probe",
         "overrides": {"queries_per_round": 6}},
        {"name": "tenant-churn", "scenario": "gentle_churn",
         "overrides": {"deletes_per_round": 3}, "seed": 99},
    ]},
    seed=9,
))
