"""The scenario replayer: drive a spec against the engine or serve loop.

:func:`replay` materialises a spec's trace and pushes every event through
one of three transports:

* ``engine`` — direct :class:`~repro.api.OnlineSession` calls (no wire);
* ``serve`` — in-process :class:`~repro.api.serve.SessionServer`, every
  event encoded as a JSONL request line and the response decoded back —
  the full protocol path without a socket;
* ``tcp`` — a real ``serve_tcp`` loop on an ephemeral port, driven over a
  socket (the transport the CI scenario matrix uses for multi-tenant
  mixes).

``transport="auto"`` (the :mod:`repro.config` default) picks ``serve`` for
multi-tenant scenarios and ``engine`` otherwise.

Every imputation response is verified against a **cold-refit oracle**: a
fresh :class:`~repro.core.iim.IIMImputer` fitted on the replayer's shadow
copy of the surviving store must reproduce the online answers at
``rtol=1e-9`` (``verify=True`` raises :class:`ScenarioError` on
divergence).  Per-phase latencies (``scenario.fit`` / ``scenario.mutate``
/ ``scenario.impute`` / ``scenario.cold_refit``, plus whatever engine
phases fire underneath) land in the :mod:`repro.obs` registry and are
summarised as p50/p95/p99 in the report.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..config import resolve_scenario_digest_check, resolve_scenario_transport
from ..data.relation import Relation
from ..exceptions import ScenarioError
from ..metrics import rms_error
from ..obs import ENGINE_PHASE_SECONDS, engine_phase, reset_observability
from .generators import ScenarioTrace, SessionPlan, TraceStep, generate_trace
from .spec import ScenarioSpec

__all__ = ["StepReport", "ReplayReport", "replay"]

#: Cold-refit equivalence tolerances (the repo-wide online-vs-cold contract).
RTOL = 1e-9
ATOL = 1e-12


@dataclass
class StepReport:
    """Timing and verification outcome of one trace round."""

    index: int
    session: str
    round_index: int
    n_store: int
    n_appended: int
    n_updated: int
    n_deleted: int
    n_queries: int
    online_seconds: float
    cold_seconds: float
    rms_online: float
    rms_cold: float
    max_abs_diff: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "session": self.session,
            "round": self.round_index,
            "n_store": self.n_store,
            "n_appended": self.n_appended,
            "n_updated": self.n_updated,
            "n_deleted": self.n_deleted,
            "n_queries": self.n_queries,
            "online_seconds": self.online_seconds,
            "cold_seconds": self.cold_seconds,
            "rms_online": self.rms_online,
            "rms_cold": self.rms_cold,
            "max_abs_diff": self.max_abs_diff,
        }


@dataclass
class ReplayReport:
    """Outcome of replaying one scenario end to end."""

    scenario: str
    generator: str
    transport: str
    trace_digest: str
    digest_checked: bool
    verified: Optional[bool]
    steps: List[StepReport] = field(default_factory=list)
    session_stats: Dict[str, object] = field(default_factory=dict)
    phase_summaries: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Aggregate counters of the trace's query-language steps (empty when
    #: the scenario has none): statements, result_rows, rows_scanned,
    #: rows_imputed.
    query_totals: Dict[str, int] = field(default_factory=dict)

    @property
    def n_rounds(self) -> int:
        return len(self.steps)

    @property
    def online_seconds(self) -> float:
        return sum(step.online_seconds for step in self.steps)

    @property
    def cold_seconds(self) -> float:
        return sum(step.cold_seconds for step in self.steps)

    @property
    def speedup(self) -> float:
        online = self.online_seconds
        return self.cold_seconds / online if online else float("nan")

    @property
    def max_abs_diff(self) -> float:
        return max(
            (step.max_abs_diff for step in self.steps), default=float("nan")
        )

    @property
    def max_rms_gap(self) -> float:
        return max(
            (
                abs(step.rms_online - step.rms_cold)
                for step in self.steps
            ),
            default=float("nan"),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "generator": self.generator,
            "transport": self.transport,
            "trace_digest": self.trace_digest,
            "digest_checked": self.digest_checked,
            "verified": self.verified,
            "n_rounds": self.n_rounds,
            "online_seconds": self.online_seconds,
            "cold_seconds": self.cold_seconds,
            "speedup": self.speedup,
            "max_abs_diff": self.max_abs_diff,
            "max_rms_gap": self.max_rms_gap,
            "phases": dict(self.phase_summaries),
            "query_totals": dict(self.query_totals),
            "session_stats": dict(self.session_stats),
            "steps": [step.as_dict() for step in self.steps],
        }


# --------------------------------------------------------------------------- #
# Transport drivers
# --------------------------------------------------------------------------- #
class _EngineDriver:
    """Direct OnlineSession calls — the no-wire baseline."""

    name = "engine"

    def __init__(self):
        from ..api.sessions import OnlineSession

        self._session_cls = OnlineSession
        self._sessions: Dict[str, object] = {}

    def create(self, plan: SessionPlan) -> None:
        self._sessions[plan.name] = self._session_cls(
            **plan.engine, **plan.model
        )

    def fit(self, session: str, rows: np.ndarray) -> None:
        self._sessions[session].fit(rows)

    def mutate(self, session: str, ops) -> None:
        self._sessions[session].mutate(ops)

    def impute(self, session: str, queries: np.ndarray) -> np.ndarray:
        return np.asarray(self._sessions[session].impute(queries), dtype=float)

    def query(self, session: str, statement: str) -> Dict[str, int]:
        from ..query import QueryResult, execute_query

        result = execute_query(self._sessions[session], statement)
        if isinstance(result, QueryResult):
            return {
                "result_rows": int(result.rows.shape[0]),
                "rows_scanned": result.rows_scanned,
                "rows_imputed": result.rows_imputed,
            }
        return {"result_rows": 0, "rows_scanned": 0, "rows_imputed": 0}

    def stats(self, session: str) -> Dict[str, object]:
        return self._sessions[session].stats()

    def close(self) -> None:
        self._sessions.clear()


class _ServeDriver:
    """In-process SessionServer, every event a JSONL request line."""

    name = "serve"

    def __init__(self):
        from ..api.serve import SessionServer

        self._server = SessionServer()
        self._next_id = 0

    def _call(self, request: Dict[str, object]) -> Dict[str, object]:
        self._next_id += 1
        request = {"v": 1, "id": self._next_id, **request}
        response = self._send(json.dumps(request))
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ScenarioError(
                f"serve-loop replay failed on cmd {request['cmd']!r}: "
                f"[{error.get('code')}] {error.get('message')}"
            )
        return response["result"]

    def _send(self, line: str) -> Dict[str, object]:
        response = self._server.handle_line(line)
        if response is None:
            raise ScenarioError("serve loop returned no response line")
        return response

    def create(self, plan: SessionPlan) -> None:
        from ..api.messages import encode_rows  # noqa: F401 - driver symmetry

        self._call({
            "cmd": "create",
            "session": plan.name,
            "config": {
                "method": "IIM",
                "mode": "online",
                "params": dict(plan.model),
                "engine": dict(plan.engine),
            },
        })

    def fit(self, session: str, rows: np.ndarray) -> None:
        from ..api.messages import encode_rows

        self._call({
            "cmd": "fit", "session": session, "rows": encode_rows(rows),
        })

    def mutate(self, session: str, ops) -> None:
        self._call({
            "cmd": "mutate",
            "session": session,
            "ops": [op.to_wire() for op in ops],
        })

    def impute(self, session: str, queries: np.ndarray) -> np.ndarray:
        from ..api.messages import encode_rows

        result = self._call({
            "cmd": "impute", "session": session, "rows": encode_rows(queries),
        })
        return np.asarray(result["rows"], dtype=float)

    def query(self, session: str, statement: str) -> Dict[str, int]:
        result = self._call({
            "cmd": "query", "session": session, "q": statement,
        })
        if result.get("kind") in ("select", "explain"):
            return {
                "result_rows": len(result.get("rows") or []),
                "rows_scanned": int(result.get("rows_scanned", 0)),
                "rows_imputed": int(result.get("rows_imputed", 0)),
            }
        return {"result_rows": 0, "rows_scanned": 0, "rows_imputed": 0}

    def stats(self, session: str) -> Dict[str, object]:
        return self._call({"cmd": "stats", "session": session})

    def close(self) -> None:
        self._server.scheduler.stop()


class _TcpDriver(_ServeDriver):
    """A real serve_tcp loop on an ephemeral port, driven over a socket."""

    name = "tcp"

    def __init__(self):
        from ..api.serve import SessionServer, serve_tcp

        self._server = SessionServer()
        self._next_id = 0
        ready = threading.Event()
        self._thread = threading.Thread(
            target=serve_tcp,
            args=("127.0.0.1", 0, self._server, ready),
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise ScenarioError("TCP serve loop failed to start within 10s")
        self._conn = socket.create_connection(
            ("127.0.0.1", self._server.tcp_port), timeout=60.0
        )
        self._stream = self._conn.makefile("rw", encoding="utf-8", newline="\n")

    def _send(self, line: str) -> Dict[str, object]:
        self._stream.write(line + "\n")
        self._stream.flush()
        answer = self._stream.readline()
        if not answer:
            raise ScenarioError("TCP serve loop closed the connection")
        return json.loads(answer)

    def close(self) -> None:
        try:
            self._next_id += 1
            self._stream.write(
                json.dumps({"v": 1, "id": self._next_id, "cmd": "shutdown"})
                + "\n"
            )
            self._stream.flush()
            self._stream.readline()
        except OSError:
            pass
        finally:
            self._stream.close()
            self._conn.close()
            self._thread.join(timeout=10.0)


_DRIVERS = {
    "engine": _EngineDriver,
    "serve": _ServeDriver,
    "tcp": _TcpDriver,
}


# --------------------------------------------------------------------------- #
# The replay loop
# --------------------------------------------------------------------------- #
def _step_ops(step: TraceStep):
    from ..api.messages import MutationOp

    ops = []
    if step.append_rows is not None and step.append_rows.shape[0]:
        ops.append(MutationOp.append(step.append_rows))
    if step.update_targets is not None and len(step.update_targets):
        ops.extend(
            MutationOp.update(int(target), row)
            for target, row in zip(step.update_targets, step.update_rows)
        )
    if step.delete_targets is not None and len(step.delete_targets):
        ops.append(MutationOp.delete(step.delete_targets))
    return ops


def _apply_shadow(shadow: np.ndarray, step: TraceStep) -> np.ndarray:
    """Mirror the step's mutations on the replayer's shadow store."""
    if step.append_rows is not None and step.append_rows.shape[0]:
        shadow = np.vstack([shadow, step.append_rows])
    if step.update_targets is not None and len(step.update_targets):
        shadow[step.update_targets] = step.update_rows
    if step.delete_targets is not None and len(step.delete_targets):
        keep = np.ones(shadow.shape[0], dtype=bool)
        keep[step.delete_targets] = False
        shadow = shadow[keep]
    if shadow.shape[0] != step.n_store:
        raise ScenarioError(
            f"shadow store drifted from the trace at step {step.index}: "
            f"{shadow.shape[0]} rows vs recorded n_store={step.n_store}"
        )
    return shadow


def _resolve_spec(spec_or_name: Union[str, ScenarioSpec]) -> ScenarioSpec:
    if isinstance(spec_or_name, ScenarioSpec):
        return spec_or_name
    from . import registry

    return registry.get(spec_or_name)


def _maybe_check_digest(spec: ScenarioSpec, trace: ScenarioTrace,
                        check_digest) -> bool:
    """Verify the trace digest against the checked-in golden pin.

    Only enforced when the spec *is* the registered spec of that name
    (a caller's custom spec reusing a built-in name must not be held to
    the built-in's digest) and the ``scenario_digest_check`` knob is on.
    """
    if not resolve_scenario_digest_check(check_digest):
        return False
    from . import registry

    golden = registry.golden_digest(spec.name)
    if golden is None:
        return False
    try:
        registered = registry.get(spec.name)
    except ScenarioError:
        return False
    if registered.canonical_json() != spec.canonical_json():
        return False
    actual = trace.digest()
    if actual != golden:
        raise ScenarioError(
            f"scenario {spec.name!r} drifted from its golden trace: "
            f"digest {actual} != checked-in {golden}; if the generator "
            f"change is intentional, regenerate golden_digests.json"
        )
    return True


def replay(
    spec_or_name: Union[str, ScenarioSpec],
    *,
    transport: Optional[str] = None,
    verify: bool = True,
    run_cold: bool = True,
    check_digest: Optional[bool] = None,
    isolate_obs: bool = False,
) -> ReplayReport:
    """Replay a scenario and verify it against the cold-refit oracle.

    Parameters
    ----------
    spec_or_name:
        A :class:`ScenarioSpec`, or the name of a registered scenario.
    transport:
        ``"engine"``, ``"serve"``, ``"tcp"``, or ``"auto"``/``None`` (the
        :mod:`repro.config` ``scenario_transport`` knob; ``auto`` picks
        ``serve`` for multi-tenant scenarios, ``engine`` otherwise).
    verify:
        Raise :class:`ScenarioError` when any online answer diverges from
        the cold oracle beyond ``rtol=1e-9`` (requires ``run_cold``).
    run_cold:
        Also run the per-round cold refits (disable for pure latency runs;
        disables verification and leaves cold columns NaN).
    check_digest:
        Pre-check the generated trace against the checked-in golden digest
        (``None`` = the config knob; only applies to registered specs).
    isolate_obs:
        Reset the process-wide :mod:`repro.obs` registry before replaying,
        so the report's phase percentiles cover exactly this replay.
    """
    spec = _resolve_spec(spec_or_name)
    resolved = resolve_scenario_transport(transport)
    if resolved == "auto":
        resolved = "serve" if spec.generator == "multi_tenant" else "engine"

    trace = generate_trace(spec)
    digest = trace.digest()
    digest_checked = _maybe_check_digest(spec, trace, check_digest)

    if isolate_obs:
        reset_observability()

    driver = _DRIVERS[resolved]()
    report = ReplayReport(
        scenario=spec.name,
        generator=spec.generator,
        transport=resolved,
        trace_digest=digest,
        digest_checked=digest_checked,
        verified=None,
    )
    shadows: Dict[str, np.ndarray] = {}
    models = {plan.name: plan.model for plan in trace.sessions}
    all_close = True
    try:
        for plan in trace.sessions:
            driver.create(plan)
        for step in trace.steps:
            if step.kind == "fit":
                with engine_phase("scenario.fit"):
                    driver.fit(step.session, step.append_rows)
                shadows[step.session] = step.append_rows.copy()
                continue

            if step.kind == "query":
                # Statement steps never touch the complete store (their
                # APPENDs are all-incomplete → pending side-store), so the
                # shadow and the cold oracle are unaffected.
                with engine_phase("scenario.query"):
                    for statement in step.statements or []:
                        counts = driver.query(step.session, statement)
                        totals = report.query_totals
                        totals["statements"] = totals.get("statements", 0) + 1
                        for key, value in counts.items():
                            totals[key] = totals.get(key, 0) + value
                continue

            ops = _step_ops(step)
            started = time.perf_counter()
            if ops:
                with engine_phase("scenario.mutate"):
                    driver.mutate(step.session, ops)
            with engine_phase("scenario.impute"):
                online = driver.impute(step.session, step.queries)
            online_seconds = time.perf_counter() - started

            shadows[step.session] = _apply_shadow(shadows[step.session], step)
            arange = np.arange(step.queries.shape[0])
            rms_online = rms_error(step.truth, online[arange, step.blanked])

            if run_cold:
                from ..core.iim import IIMImputer

                with engine_phase("scenario.cold_refit"):
                    started = time.perf_counter()
                    oracle = IIMImputer(**models[step.session])
                    oracle.fit(Relation(shadows[step.session].copy()))
                    cold = oracle.impute(
                        Relation(step.queries.copy())
                    ).raw
                    cold_seconds = time.perf_counter() - started
                rms_cold = rms_error(step.truth, cold[arange, step.blanked])
                max_abs_diff = float(np.max(np.abs(online - cold)))
                step_close = bool(
                    np.allclose(online, cold, rtol=RTOL, atol=ATOL)
                )
                all_close = all_close and step_close
                if verify and not step_close:
                    raise ScenarioError(
                        f"scenario {spec.name!r} session {step.session!r} "
                        f"round {step.round_index}: online imputation "
                        f"diverged from the cold-refit oracle "
                        f"(max |diff| = {max_abs_diff:.3e}, rtol={RTOL})"
                    )
            else:
                cold_seconds = float("nan")
                rms_cold = float("nan")
                max_abs_diff = float("nan")

            report.steps.append(
                StepReport(
                    index=step.index,
                    session=step.session,
                    round_index=step.round_index,
                    n_store=step.n_store,
                    n_appended=(
                        0 if step.append_rows is None
                        else int(step.append_rows.shape[0])
                    ),
                    n_updated=(
                        0 if step.update_targets is None
                        else int(len(step.update_targets))
                    ),
                    n_deleted=(
                        0 if step.delete_targets is None
                        else int(len(step.delete_targets))
                    ),
                    n_queries=step.queries.shape[0],
                    online_seconds=online_seconds,
                    cold_seconds=cold_seconds,
                    rms_online=rms_online,
                    rms_cold=rms_cold,
                    max_abs_diff=max_abs_diff,
                )
            )
        for plan in trace.sessions:
            report.session_stats[plan.name] = driver.stats(plan.name)
    finally:
        driver.close()

    if run_cold:
        report.verified = all_close
    for labels in ENGINE_PHASE_SECONDS.series_labels():
        report.phase_summaries[labels["phase"]] = (
            ENGINE_PHASE_SECONDS.summary(**labels)
        )
    return report
