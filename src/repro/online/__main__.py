"""Deprecated entry point: ``python -m repro.online``.

The CSV-trace replay moved into the consolidated CLI —
``python -m repro replay`` (see :mod:`repro.__main__`); the implementation
lives in :mod:`repro.online.cli`.  This shim keeps the old invocation
working, emitting one :class:`DeprecationWarning` per run.
"""

from __future__ import annotations

import sys
import warnings

from .cli import main as _main

DEPRECATION_MESSAGE = (
    "'python -m repro.online' is deprecated; use 'python -m repro replay' "
    "(same arguments) instead"
)


def main(argv=None) -> int:
    """Warn once, then forward to :func:`repro.online.cli.main`."""
    warnings.warn(DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
    return _main(argv, prog="python -m repro.online")


if __name__ == "__main__":
    sys.exit(main())
