"""CSV-trace replay for the online imputation engine (``python -m repro replay``).

Replays a relation as an append/impute trace: rows are consumed in order,
complete rows are appended to the engine's store, incomplete rows (missing
cells encoded as empty fields, ``?`` or ``NA``) are imputed against the
store built so far.  Per-batch latency and a final summary (engine
counters, store size) are printed.

Trace files written in the :mod:`repro.query` statement language are
detected automatically (the first meaningful token is a statement
keyword) and replayed through the query executor — the preferred
lifecycle-trace format::

    -- churn.sql
    APPEND VALUES (1.0, 2.0, 3.0), (1.5, ?, 2.9);
    SELECT a, b WHERE c > 2 ORDER BY a LIMIT 5;
    UPDATE 0 SET a = 1.1;
    DELETE 0, 2;
    IMPUTE;

(``?`` marks a missing cell; incomplete appends park in the pending
side-store until ``IMPUTE`` promotes them; ``SELECT`` imputes referenced
missing cells on demand without mutating the store.)

With ``--ops`` the CSV is the **deprecated** lifecycle format instead:
each row names an operation plus its operands::

    op,index,a,b,c
    append,,1.0,2.0,3.0
    impute,,1.5,,2.9
    update,0,1.1,2.0,3.0
    delete,0;2,,,

(``index`` is empty for append/impute, a store index for update, and one or
more ``;``-separated store indices for delete; ``delete`` rows may leave
the value fields empty.)  Replaying one emits a single
:class:`DeprecationWarning` pointing at the statement-trace format.

Examples
--------
Replay a CSV file in batches of 64 and snapshot the fitted engine::

    python -m repro replay trace.csv --batch-size 64 --snapshot artifacts/engine

Restore the snapshot and keep streaming::

    python -m repro replay more_rows.csv --restore artifacts/engine

Replay a lifecycle trace with delete/update operations::

    python -m repro replay churn.csv --ops --learning adaptive

No file at hand? Generate a synthetic trace from a paper dataset::

    python -m repro replay --demo 600 --dataset sn --missing-fraction 0.1

(The old ``python -m repro.online`` entry point still works as a
deprecation shim forwarding here.)
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
import warnings
from pathlib import Path

import numpy as np

from ..data import load_dataset
from ..data.io import _parse_cell, read_csv, write_csv
from ..data.missing import inject_missing
from ..data.relation import Relation
from ..exceptions import DataError, ReproError
from .engine import OnlineImputationEngine


def _build_parser(prog: str = "python -m repro replay") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Replay a CSV relation as a streaming append/impute trace.",
    )
    parser.add_argument("csv", nargs="?", help="CSV trace to replay (see --demo)")
    parser.add_argument(
        "--no-header", action="store_true", help="the CSV file has no header row"
    )
    parser.add_argument(
        "--ops", action="store_true",
        help="(deprecated) the CSV is a lifecycle trace: op,index,values… "
        "rows replayed as append/impute/update/delete operations; write "
        "statement traces (APPEND/SELECT/UPDATE/DELETE/IMPUTE) instead",
    )
    parser.add_argument(
        "--demo", type=int, metavar="N",
        help="skip the CSV and replay N rows of a synthetic dataset instead",
    )
    parser.add_argument(
        "--dataset", default="sn", help="synthetic dataset for --demo (default: sn)"
    )
    parser.add_argument(
        "--missing-fraction", type=float, default=0.1,
        help="fraction of --demo rows made incomplete (default: 0.1)",
    )
    parser.add_argument("--batch-size", type=int, default=64, help="trace batch size")
    parser.add_argument("--k", type=int, default=10, help="imputation neighbours")
    parser.add_argument(
        "--learning", choices=("adaptive", "fixed"), default="adaptive",
        help="IIM learning phase (default: adaptive)",
    )
    parser.add_argument(
        "--learning-neighbors", type=int, default=None,
        help="the fixed ℓ (required with --learning fixed)",
    )
    parser.add_argument("--stepping", type=int, default=5, help="adaptive stepping h")
    parser.add_argument(
        "--max-learning-neighbors", type=int, default=100,
        help="cap on the adaptive candidate ℓ grid (default: 100; this is what "
        "keeps streaming refreshes incremental once the store outgrows it)",
    )
    parser.add_argument(
        "--combination", choices=("voting", "uniform", "distance"), default="voting",
    )
    parser.add_argument(
        "--cache-size", default="default",
        help="per-attribute model cache size ('none' = unbounded)",
    )
    parser.add_argument(
        "--refresh", choices=("lazy", "eager"), default=None,
        help="refresh policy (default: the repro.config knob)",
    )
    parser.add_argument(
        "--fallback-fraction", default="default",
        help="hybrid relearn threshold in [0, 1], or 'none' to stay "
        "always-incremental (default: the repro.config knob)",
    )
    parser.add_argument(
        "--shard-capacity", default="default",
        help="rows per shard of the columnar tuple store (default: the "
        "repro.config knob)",
    )
    parser.add_argument(
        "--journal-capacity", default="default",
        help="mutation-journal ring capacity in entries (default: the "
        "repro.config knob)",
    )
    parser.add_argument(
        "--delete-cost", choices=("rebuild", "decrement"), default=None,
        help="delete-path validation-cost maintenance (default: the "
        "repro.config knob)",
    )
    parser.add_argument("--snapshot", metavar="DIR", help="save the engine at the end")
    parser.add_argument("--restore", metavar="DIR", help="start from a saved engine")
    parser.add_argument(
        "--output", metavar="CSV", help="write the imputed trace rows to a CSV file"
    )
    return parser


def _load_trace(args) -> Relation:
    if args.demo is not None:
        relation = load_dataset(args.dataset, size=args.demo)
        injection = inject_missing(
            relation, fraction=args.missing_fraction, random_state=0
        )
        return injection.dirty
    if not args.csv:
        raise ReproError("either a CSV path or --demo N is required")
    return read_csv(args.csv, has_header=not args.no_header)


def _build_engine(args) -> OnlineImputationEngine:
    if args.restore:
        engine = OnlineImputationEngine.load(args.restore)
        print(f"restored engine: {engine}")
        return engine
    iim_params = dict(
        k=args.k,
        learning=args.learning,
        stepping=args.stepping,
        max_learning_neighbors=args.max_learning_neighbors,
        combination=args.combination,
    )
    if args.learning == "fixed":
        iim_params["learning_neighbors"] = args.learning_neighbors
    return OnlineImputationEngine(
        model_cache_size=args.cache_size,
        refresh_policy=args.refresh,
        incremental_fallback_fraction=args.fallback_fraction,
        shard_capacity=args.shard_capacity,
        journal_capacity=args.journal_capacity,
        delete_cost_mode=args.delete_cost if args.delete_cost else "default",
        **iim_params,
    )


OPS_DEPRECATION_MESSAGE = (
    "the CSV --ops lifecycle format is deprecated; write the trace in the "
    "query statement language instead (APPEND VALUES …; UPDATE i SET …; "
    "DELETE …; IMPUTE; — 'python -m repro replay trace.sql' detects it "
    "automatically)"
)


def _is_statement_trace(path: str) -> bool:
    """True when the file's first meaningful token is a statement keyword.

    Statement traces are plain text (``--`` comments allowed), so sniffing
    the first token cleanly separates them from CSV traces — a CSV header
    or ``op,index,…`` row never starts with a bare statement keyword.
    """
    from ..query import STATEMENT_KEYWORDS

    try:
        text = Path(path).read_text()
    except (OSError, UnicodeDecodeError):
        return False
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("--"):
            continue
        token = stripped.split(None, 1)[0].rstrip(";(,")
        return token.upper() in STATEMENT_KEYWORDS
    return False


def _main_statements(args) -> int:
    """Replay a statement-language trace through the query executor."""
    from ..query import QueryResult, execute_script

    try:
        if args.ops:
            raise ReproError(
                "--ops expects the deprecated CSV lifecycle format; this "
                "file is a statement trace — drop --ops"
            )
        text = Path(args.csv).read_text()
        engine = _build_engine(args)
        begin = time.perf_counter()
        results = execute_script(engine, text)
        total_seconds = time.perf_counter() - begin
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    counts: dict = {}
    for position, result in enumerate(results, start=1):
        counts[result.kind] = counts.get(result.kind, 0) + 1
        if isinstance(result, QueryResult):
            print(
                f"  statement {position:3d}: {result.kind:<8} "
                f"{result.rows.shape[0]:4d} row(s) "
                f"({result.rows_scanned} scanned, "
                f"{result.rows_imputed} imputed on demand)"
            )
        else:
            detail = ", ".join(
                f"{key}={value}" for key, value in result.detail.items()
            )
            print(f"  statement {position:3d}: {result.kind:<8} {detail}")

    summary = ", ".join(f"{counts[kind]} {kind}" for kind in sorted(counts))
    print(
        f"replayed {len(results)} statements ({summary}) "
        f"in {total_seconds:.3f}s"
    )
    stats = engine.stats
    print(
        f"store holds {engine.n_tuples} tuples ({engine.n_pending} pending); "
        f"{stats['imputed_cells']} cells imputed; "
        f"refreshes: {stats['incremental_refreshes']} incremental / "
        f"{stats['full_refreshes']} full"
    )
    if args.output:
        print(
            "note: --output applies to CSV traces only; statement traces "
            "print per-statement results instead",
            file=sys.stderr,
        )
    if args.snapshot:
        path = engine.snapshot(args.snapshot)
        print(f"engine snapshot written to {path}")
    return 0


_OPS = ("append", "impute", "update", "delete")


def _parse_indices(field: str, lineno: int):
    try:
        return [int(token) for token in field.split(";") if token.strip()]
    except ValueError:
        raise DataError(
            f"line {lineno}: store indices must be ;-separated integers, "
            f"got {field!r}"
        ) from None


def _read_ops_trace(path: str, has_header: bool):
    """Parse a lifecycle trace CSV into ``(op, indices, values)`` triples."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"CSV file not found: {path}")
    with path.open("r", newline="") as handle:
        rows = [
            (lineno, row)
            for lineno, row in enumerate(csv.reader(handle), start=1)
            if row and any(cell.strip() for cell in row)
        ]
    if has_header:
        rows = rows[1:]
    if not rows:
        raise DataError(f"lifecycle trace {path} has no operation rows")
    operations = []
    for lineno, row in rows:
        op = row[0].strip().lower()
        if op not in _OPS:
            raise DataError(
                f"line {lineno}: unknown operation {row[0]!r} "
                f"(expected one of {_OPS})"
            )
        index_field = row[1].strip() if len(row) > 1 else ""
        if op == "delete":
            indices = _parse_indices(index_field, lineno) if index_field else []
            if not indices:
                raise DataError(f"line {lineno}: delete needs ;-separated indices")
            operations.append((op, indices, None))
            continue
        try:
            values = np.array([_parse_cell(cell) for cell in row[2:]], dtype=float)
        except DataError as exc:
            raise DataError(f"line {lineno}: {exc}") from None
        if op == "update":
            indices = _parse_indices(index_field, lineno) if index_field else []
            if len(indices) != 1:
                raise DataError(f"line {lineno}: update needs exactly one store index")
            operations.append((op, indices, values))
        else:
            operations.append((op, None, values))
    return operations


def _replay_ops(engine: OnlineImputationEngine, operations, batch_size: int):
    """Drive the engine through a lifecycle trace; returns imputed rows.

    Adjacent appends (and adjacent imputes) are batched up to
    ``batch_size`` so the replay exercises the same batched entry points a
    deployment would.
    """
    counts = {op: 0 for op in _OPS}
    imputed = []
    total_seconds = 0.0
    pending_op = None
    pending_rows = []

    def flush():
        nonlocal pending_op, total_seconds
        if not pending_rows:
            return
        block = np.vstack(pending_rows)
        begin = time.perf_counter()
        if pending_op == "append":
            engine.append(block)
        else:
            imputed.extend(engine.impute_batch(block))
        total_seconds += time.perf_counter() - begin
        pending_rows.clear()
        pending_op = None

    for op, indices, values in operations:
        counts[op] += 1
        if op in ("append", "impute"):
            if pending_op != op or len(pending_rows) >= batch_size:
                flush()
            pending_op = op
            pending_rows.append(values)
            continue
        flush()
        begin = time.perf_counter()
        if op == "delete":
            engine.delete(indices)
        else:
            engine.update(indices[0], values)
        total_seconds += time.perf_counter() - begin
    flush()
    return counts, imputed, total_seconds


def _main_ops(args) -> int:
    try:
        if not args.csv:
            raise ReproError("--ops requires a CSV trace path")
        operations = _read_ops_trace(args.csv, has_header=not args.no_header)
        engine = _build_engine(args)
        counts, imputed, total_seconds = _replay_ops(
            engine, operations, args.batch_size
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stats = engine.stats
    print(
        f"replayed {sum(counts.values())} operations "
        f"({counts['append']} append, {counts['update']} update, "
        f"{counts['delete']} delete, {counts['impute']} impute) "
        f"in {total_seconds:.3f}s"
    )
    print(
        f"store holds {engine.n_tuples} tuples; {stats['imputed_cells']} cells "
        f"imputed; refreshes: {stats['incremental_refreshes']} incremental / "
        f"{stats['full_refreshes']} full / {stats['hybrid_full_rebuilds']} hybrid "
        f"rebuilds ({stats['rows_refreshed']} tuple models relearned)"
    )
    memory = engine.memory_stats()
    print(
        f"columnar store: {memory['n_shards']} shards × "
        f"{memory['shard_capacity']} rows, {memory['store_bytes']} payload "
        f"bytes; journal {memory['journal_entries']}/"
        f"{memory['journal_capacity']} entries ({memory['journal_bytes']} "
        f"bytes); {memory['recycled_slots']} slots recycled"
    )
    if args.output and imputed:
        write_csv(
            Relation(np.vstack(imputed), engine.schema), args.output
        )
        print(f"imputed rows written to {args.output}")
    if args.snapshot:
        path = engine.snapshot(args.snapshot)
        print(f"engine snapshot written to {path}")
    return 0


def main(argv=None, prog: str = "python -m repro replay") -> int:
    args = _build_parser(prog).parse_args(argv)
    if args.csv and args.demo is None and _is_statement_trace(args.csv):
        return _main_statements(args)
    if args.ops:
        warnings.warn(OPS_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
        return _main_ops(args)
    try:
        trace = _load_trace(args)
        engine = _build_engine(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    values = trace.raw
    n_rows = values.shape[0]
    imputed_rows = np.array(values, dtype=float)
    print(
        f"replaying {n_rows} rows × {values.shape[1]} attributes "
        f"in batches of {args.batch_size}"
    )

    total_seconds = 0.0
    for start in range(0, n_rows, args.batch_size):
        stop = min(start + args.batch_size, n_rows)
        block = values[start:stop]
        incomplete = np.isnan(block).any(axis=1)
        begin = time.perf_counter()
        if (~incomplete).any():
            engine.append(block[~incomplete])
        n_cells = 0
        if incomplete.any() and engine.n_tuples:
            queries = block[incomplete]
            n_cells = int(np.isnan(queries).sum())
            imputed_rows[np.arange(start, stop)[incomplete]] = engine.impute_batch(
                queries
            )
        elapsed = time.perf_counter() - begin
        total_seconds += elapsed
        print(
            f"  batch {start // args.batch_size:4d}: "
            f"+{int((~incomplete).sum()):4d} appended, "
            f"{n_cells:4d} cells imputed, {elapsed * 1000:8.2f} ms"
        )

    stats = engine.stats
    print(
        f"done: store holds {engine.n_tuples} tuples; "
        f"{stats['imputed_cells']} cells imputed in {total_seconds:.3f}s"
    )
    print(
        f"refreshes: {stats['incremental_refreshes']} incremental / "
        f"{stats['full_refreshes']} full ({stats['rows_refreshed']} tuple models "
        f"relearned); model cache: {stats['cache_hits']} hits, "
        f"{stats['cache_misses']} misses, {stats['cache_evictions']} evictions"
    )
    if args.output:
        write_csv(Relation(imputed_rows, trace.schema, name=trace.name), args.output)
        print(f"imputed trace written to {args.output}")
    if args.snapshot:
        path = engine.snapshot(args.snapshot)
        print(f"engine snapshot written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
