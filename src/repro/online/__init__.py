"""Online imputation: streaming appends, incremental maintenance, artifacts.

This package turns the batch reproduction into a long-lived service:

* :class:`OnlineImputationEngine` — wraps :class:`~repro.core.iim.IIMImputer`
  behind the full tuple lifecycle ``append(rows)`` / ``update(index, row)``
  / ``delete(indices)`` plus ``impute_batch(queries)`` / ``snapshot(path)``.
  Mutations update the complete-tuple store and the per-attribute neighbour
  index incrementally and invalidate only the affected cached per-tuple
  models (Proposition 3's incremental statistics through the batched
  kernels), falling back to one vectorized full rebuild when a mutation
  batch dirties more than the hybrid-relearn threshold; imputation
  requests are served in batches from an LRU cache of per-attribute model
  states.
* :mod:`repro.online.artifacts` — fitted state as ``.npz`` arrays plus a
  JSON manifest.  Every :class:`~repro.baselines.base.BaseImputer` gains
  ``save`` / ``load`` through this layer; restoration is bit-for-bit.

Run ``python -m repro replay --help`` for a CSV-trace replay demo (the old
``python -m repro.online`` entry point forwards there behind a
``DeprecationWarning``); :mod:`repro.api` fronts the engine behind the
unified session protocol and the JSONL serve loop.

Engine knobs (cache size, refresh policy) default to the process-wide
values in :mod:`repro.config`.
"""

from .artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    load_imputer,
    read_artifact,
    save_imputer,
    write_artifact,
)
from .engine import OnlineImputationEngine
from .store import (
    ColumnarTupleStore,
    MutationJournal,
    ShardedNeighbors,
    StoreFeatureView,
    sharded_topk,
)

__all__ = [
    "OnlineImputationEngine",
    "ColumnarTupleStore",
    "StoreFeatureView",
    "ShardedNeighbors",
    "MutationJournal",
    "sharded_topk",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "write_artifact",
    "read_artifact",
    "save_imputer",
    "load_imputer",
]
