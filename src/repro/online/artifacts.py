"""Artifact persistence: fitted state as ``.npz`` arrays + a JSON manifest.

An *artifact* is a directory holding exactly two files:

* ``manifest.json`` — the artifact format/version, the kind of object stored
  (``"imputer"`` or ``"engine"``), the constructor parameters needed to
  rebuild it, and the list of array keys it expects;
* ``arrays.npz`` — every numpy array of the fitted state, saved without
  pickling so artifacts are portable across Python versions.

:func:`write_artifact` / :func:`read_artifact` are the generic primitives;
:func:`save_imputer` / :func:`load_imputer` build the imputer-level layer on
top of them (every :class:`~repro.baselines.base.BaseImputer` participates
through its ``save`` / ``load`` hooks, and subclasses persist extra fitted
state through the ``_artifact_payload`` / ``_restore_payload`` hooks).  The
online engine's :meth:`~repro.online.OnlineImputationEngine.snapshot` uses
the same primitives with ``kind="engine"``.

Restoration is bit-for-bit: arrays round-trip through the ``.npz`` binary
format exactly, so a restored imputer or engine produces imputations
identical to the original.  A corrupted or version-mismatched manifest
raises :class:`~repro.exceptions.ConfigurationError` with a clear message.

Writes are *atomic*: both files are staged into a sibling temp directory,
fsynced, and renamed into place with the manifest rename last — the
commit point.  The arrays land under a unique name recorded in the
manifest's ``arrays_file`` field (legacy artifacts without the field fall
back to ``arrays.npz``), so a crash at any byte leaves either the old
artifact or the new one, never a torn mix of the two.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import time
import zipfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..obs import observe_artifact_io

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "SUPPORTED_ARTIFACT_VERSIONS",
    "write_artifact",
    "read_artifact",
    "save_imputer",
    "load_imputer",
]

#: Identifier written into (and required of) every manifest.
ARTIFACT_FORMAT = "repro-artifact"

#: Current artifact schema version; bumped on incompatible layout changes.
#: Version 2 added the engine's tuple-lifecycle state (per-state target
#: columns, lifecycle counters, the engine mutation version).  Version 3
#: added the sharded columnar store metadata (shard capacity, journal
#: ring knobs, delete cost mode); version-2 artifacts remain readable and
#: are migrated on load.
ARTIFACT_VERSION = 3

#: Versions :func:`read_artifact` accepts; older versions in this set are
#: migrated by the object-level loaders.
SUPPORTED_ARTIFACT_VERSIONS = (2, 3)

MANIFEST_FILENAME = "manifest.json"
#: Legacy array-file name, still read when a manifest lacks ``arrays_file``.
ARRAYS_FILENAME = "arrays.npz"

_PAYLOAD_PREFIX = "payload_"


def _fsync_dir(path: Path) -> None:
    # Directory fsync makes renames durable on POSIX; platforms that
    # refuse to open directories simply skip it.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_staged(target: Path, data: bytes, injector, site: str) -> None:
    raise_after = None
    if injector is not None:
        data, raise_after = injector.intercept_write(site, data)
    with open(target, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if raise_after is not None:
        raise raise_after


def _jsonify(value):
    """Convert numpy scalars/arrays nested in manifest values to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return _jsonify(value.tolist())
    return value


def write_artifact(
    path: Union[str, Path],
    kind: str,
    manifest: Dict[str, object],
    arrays: Dict[str, np.ndarray],
    *,
    injector=None,
) -> Path:
    """Atomically write one artifact directory and return its path.

    Both files are staged into a sibling temp directory (same filesystem,
    so renames are atomic), fsynced, and renamed in: first the uniquely
    named arrays file, then — the commit point — the manifest that
    references it.  A crash before the manifest rename leaves any previous
    artifact untouched; stale arrays files from overwritten or crashed
    writes are garbage-collected after a successful commit.  ``injector``
    threads a :class:`~repro.reliability.FaultPlan` through the byte
    writes (sites ``artifact.arrays`` / ``artifact.manifest``) and the
    commit rename (``artifact.commit``).
    """
    write_started = time.perf_counter()
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    token = os.urandom(4).hex()
    arrays_name = f"arrays-{token}.npz"
    document = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "kind": str(kind),
        "arrays": sorted(arrays),
        "arrays_file": arrays_name,
    }
    document.update(_jsonify(manifest))

    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    manifest_bytes = (json.dumps(document, indent=2) + "\n").encode("utf-8")

    staging = path.parent / f".{path.name}.stage-{token}"
    staging.mkdir(parents=True, exist_ok=True)
    try:
        staged_arrays = staging / arrays_name
        staged_manifest = staging / MANIFEST_FILENAME
        _write_staged(staged_arrays, buffer.getvalue(), injector, "artifact.arrays")
        _write_staged(staged_manifest, manifest_bytes, injector, "artifact.manifest")
        os.replace(staged_arrays, path / arrays_name)
        _fsync_dir(path)
        if injector is not None:
            injector.fire("artifact.commit")
        os.replace(staged_manifest, path / MANIFEST_FILENAME)
        _fsync_dir(path)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    # Committed: drop arrays files of overwritten versions or torn writes
    # (including the legacy fixed-name file).
    for stale in path.glob("arrays*.npz"):
        if stale.name != arrays_name:
            try:
                stale.unlink()
            except OSError:
                pass
    observe_artifact_io(
        "write",
        time.perf_counter() - write_started,
        len(buffer.getvalue()) + len(manifest_bytes),
    )
    return path


def read_artifact(
    path: Union[str, Path],
    expected_kind: Optional[str] = None,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Read one artifact directory back into ``(manifest, arrays)``.

    Raises :class:`ConfigurationError` when the directory, manifest or array
    file is missing, the manifest is corrupted, the format/version does not
    match, the stored kind differs from ``expected_kind``, or the array file
    does not contain exactly the arrays the manifest promises.
    """
    read_started = time.perf_counter()
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise ConfigurationError(f"artifact manifest not found: {manifest_path}")

    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(
            f"corrupted artifact manifest {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise ConfigurationError(
            f"corrupted artifact manifest {manifest_path}: expected a JSON object"
        )
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ConfigurationError(
            f"{manifest_path} is not a {ARTIFACT_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") not in SUPPORTED_ARTIFACT_VERSIONS:
        hint = ""
        if manifest.get("version") == 1:
            hint = (
                "; version-1 snapshots predate tuple-lifecycle support "
                "(delete/update) — re-create the snapshot with this version"
            )
        raise ConfigurationError(
            f"artifact version mismatch in {manifest_path}: found "
            f"{manifest.get('version')!r}, this library reads versions "
            f"{SUPPORTED_ARTIFACT_VERSIONS}{hint}"
        )
    if expected_kind is not None and manifest.get("kind") != expected_kind:
        raise ConfigurationError(
            f"artifact at {path} holds a {manifest.get('kind')!r}, "
            f"expected a {expected_kind!r}"
        )

    arrays_name = manifest.get("arrays_file", ARRAYS_FILENAME)
    if not isinstance(arrays_name, str) or Path(arrays_name).name != arrays_name:
        raise ConfigurationError(
            f"corrupted artifact manifest {manifest_path}: invalid "
            f"arrays_file {arrays_name!r}"
        )
    arrays_path = path / arrays_name
    if not arrays_path.exists():
        raise ConfigurationError(f"artifact array file not found: {arrays_path}")
    try:
        with np.load(arrays_path, allow_pickle=False) as stored:
            arrays = {key: stored[key] for key in stored.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise ConfigurationError(
            f"corrupted artifact array file {arrays_path}: {exc}; the "
            f"artifact is torn — re-create the snapshot"
        ) from exc
    promised = manifest.get("arrays")
    if not isinstance(promised, list) or sorted(arrays) != sorted(promised):
        raise ConfigurationError(
            f"artifact arrays in {arrays_path} do not match the manifest: "
            f"stored {sorted(arrays)}, promised {promised}"
        )
    observe_artifact_io(
        "read",
        time.perf_counter() - read_started,
        arrays_path.stat().st_size + manifest_path.stat().st_size,
    )
    return manifest, arrays


# --------------------------------------------------------------------------- #
# Imputer-level layer
# --------------------------------------------------------------------------- #
def save_imputer(imputer, path: Union[str, Path]) -> Path:
    """Serialize a fitted imputer (behind :meth:`BaseImputer.save`)."""
    from ..baselines.base import BaseImputer

    if not isinstance(imputer, BaseImputer):
        raise ConfigurationError("save_imputer expects a BaseImputer instance")
    if not imputer.is_fitted():
        raise ConfigurationError(
            f"{type(imputer).__name__} must be fitted before saving"
        )

    relation = imputer.fitted_relation
    manifest: Dict[str, object] = {
        "class": type(imputer).__name__,
        "method": imputer.name,
        "params": imputer.get_params(),
        "schema": list(relation.schema.attributes),
        "relation_name": relation.name,
    }
    arrays: Dict[str, np.ndarray] = {"relation_values": relation.raw.copy()}
    labels = relation.labels
    if labels is not None:
        arrays["relation_labels"] = labels

    payload_meta, payload_arrays = imputer._artifact_payload()
    manifest["payload"] = payload_meta
    for key, value in payload_arrays.items():
        arrays[_PAYLOAD_PREFIX + key] = np.asarray(value)
    return write_artifact(path, "imputer", manifest, arrays)


def _resolve_imputer_class(class_name: str):
    """Map a stored class name back to the imputer class."""
    from .. import baselines
    from ..baselines.base import BaseImputer
    from ..core import IIMImputer

    candidates = {IIMImputer.__name__: IIMImputer}
    for attribute in dir(baselines):
        obj = getattr(baselines, attribute)
        if isinstance(obj, type) and issubclass(obj, BaseImputer):
            candidates[obj.__name__] = obj
    if class_name not in candidates:
        raise ConfigurationError(
            f"artifact stores unknown imputer class {class_name!r}; "
            f"known classes: {sorted(candidates)}"
        )
    return candidates[class_name]


def load_imputer(path: Union[str, Path], cls=None):
    """Restore an imputer saved by :func:`save_imputer`.

    Parameters
    ----------
    path:
        The artifact directory.
    cls:
        Optional expected class; a stored artifact of a different class
        raises :class:`ConfigurationError` instead of silently returning the
        wrong method.
    """
    from ..data.relation import Relation, Schema

    manifest, arrays = read_artifact(path, expected_kind="imputer")
    class_name = manifest.get("class")
    resolved = _resolve_imputer_class(str(class_name))
    if cls is not None and resolved is not cls:
        raise ConfigurationError(
            f"artifact at {path} stores a {class_name}, expected {cls.__name__}"
        )

    params = manifest.get("params") or {}
    if not isinstance(params, dict):
        raise ConfigurationError(f"corrupted artifact params in {path}: {params!r}")
    imputer = resolved(**params)

    values = arrays.get("relation_values")
    if values is None:
        raise ConfigurationError(f"artifact at {path} is missing relation_values")
    relation = Relation(
        values,
        Schema([str(a) for a in manifest.get("schema", [])]),
        labels=arrays.get("relation_labels"),
        name=str(manifest.get("relation_name", "")),
    )
    imputer._fitted_relation = relation
    imputer._complete_values = relation.raw.copy()

    payload_meta = manifest.get("payload") or {}
    payload_arrays = {
        key[len(_PAYLOAD_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_PAYLOAD_PREFIX)
    }
    imputer._restore_payload(payload_meta, payload_arrays)
    return imputer
