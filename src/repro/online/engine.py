"""The online imputation engine: streaming tuple lifecycle from warm models.

The batch :class:`~repro.core.iim.IIMImputer` relearns everything from
scratch on every ``fit``; this module keeps a *long-lived* engine instead:

* :meth:`OnlineImputationEngine.append` adds complete tuples,
  :meth:`OnlineImputationEngine.delete` removes tuples by store index and
  :meth:`OnlineImputationEngine.update` revises one tuple in place — the
  full lifecycle a production store sees (inserts, retractions, late
  corrections).  Every cached per-attribute model state is maintained
  **incrementally**: the neighbour index absorbs the mutation exactly
  (:meth:`~repro.neighbors.NeighborOrderCache.append` /
  :meth:`~repro.neighbors.NeighborOrderCache.remove` /
  :meth:`~repro.neighbors.NeighborOrderCache.replace`), only the tuples
  whose neighbour prefix — or whose prefix *values* — actually changed have
  their candidate models relearned (through the batched Proposition 3
  kernel :func:`~repro.core.learning.learn_candidate_models_for_rows`), and
  only the validation-cost rows touched by the mutation are rebuilt.
* :meth:`OnlineImputationEngine.impute_batch` serves imputation requests in
  batches from an LRU cache of per-attribute model states — after any
  interleaving of appends, deletes and updates the answers match a cold
  ``IIMImputer`` refit over the surviving tuples to ``rtol = 1e-9``
  (asserted across fixed/adaptive learning and all three combiners in the
  test suite).
* :meth:`OnlineImputationEngine.snapshot` persists the full engine state
  (store, neighbour orderings, candidate models, validation costs) as an
  ``.npz`` + JSON-manifest artifact; :meth:`OnlineImputationEngine.load`
  restores an engine whose subsequent imputations are bit-identical.

Deferred maintenance: the mutation journal
------------------------------------------
Under the ``"lazy"`` refresh policy a cached state may lag the store by
several mutations.  The engine therefore keeps a small *journal* of the
mutations since each state's sync point (appended rows, deleted index
sets, updated tuples); on the next imputation touching a state the journal
is replayed in two phases — each op maintains the neighbour cache, the
owner matrix and the dirty sets only (adjacent appends coalesced into one
batched merge), then ONE batched relearn + cost rebuild + selection runs
over the dirty union — so a burst of mutations costs one refresh, not one
per op.  When any step of the pending
sequence would change the state's *structure* (the candidate ℓ grid still
growing towards ``max_learning_neighbors``, the validation ``k`` clamped by
a small ``n``, the global candidate toggling), the state falls back to one
full relearn over the final store instead — structure changes reshape every
array anyway.  The journal is pruned as states catch up.

Exactness of the incremental maintenance
----------------------------------------
Adaptive learning (Algorithm 3) gives every complete tuple ``i`` a cost row
``cost[i][ℓ]`` summed over the validation tuples ``j`` that count ``i``
among their ``k`` nearest neighbours.  A mutation can change that row in
exactly four ways: (1) ``i``'s own candidate models changed because its
learning prefix gained, lost, or revalued a tuple, (2) some validator ``j``
gained or lost ``i`` in its top-``k``, (3) a validator appeared,
disappeared, or changed value, or (4) the ``ℓ = n`` global candidate moved
(it does on *every* mutation; its single ridge fit and cost column are
recomputed each refresh).  The engine tracks all four through the index's
first-changed-position reports — plus, for updates, a prefix-membership
scan, because a revised tuple can change a model's *values* without moving
in any ordering — and rebuilds exactly those rows with the same scatter-add
kernel the cold path uses, so untouched rows keep values a cold run would
reproduce.

The hybrid relearn policy
-------------------------
When one mutation batch dirties more than ``incremental_fallback_fraction``
of a state's tuples (a huge append, a delete sweep), the per-row merge
bookkeeping buys nothing: the engine then relearns that state with one
vectorized full rebuild *over the already-maintained neighbour orderings*
— the cache merge is kept (it is exact), only the model/cost refresh is
done wholesale.  ``stats["hybrid_full_rebuilds"]`` counts these;
``stats["incremental_refreshes"]`` / ``stats["full_refreshes"]`` keep
counting which sync path ran.  Set the fraction to ``None`` for an
always-incremental engine (the pre-hybrid behaviour).
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .._validation import as_float_matrix
from ..config import (
    resolve_online_fallback_fraction,
    resolve_online_model_cache_size,
    resolve_online_refresh_policy,
)
from ..core.adaptive import adaptive_learning, scatter_validation_costs
from ..core.iim import IIMImputer
from ..core.imputation import impute_with_individual_models
from ..core.learning import (
    IndividualModels,
    candidate_ell_values,
    learn_candidate_models_for_rows,
    learn_individual_models,
)
from ..data.relation import Relation, Schema
from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..neighbors import BruteForceNeighbors, NeighborOrderCache
from ..neighbors.brute import drop_self_rows
from ..regression import RidgeRegression, batched_design
from .artifacts import read_artifact, write_artifact

__all__ = ["OnlineImputationEngine"]


class _AttributeState:
    """Models + incremental maintenance state for one incomplete attribute.

    One state exists per target attribute the engine has served; it owns the
    attribute's neighbour-order cache (over the complete attributes ``F``),
    its own copy of the target column, the per-tuple models, and — for
    adaptive learning — the full candidate parameter stack and
    validation-cost matrix needed to refresh a subset of tuples without
    relearning the rest.
    """

    def __init__(self, engine: "OnlineImputationEngine", target_index: int):
        self.engine = engine
        self.target_index = int(target_index)
        width = engine.n_attributes
        self.feature_indices = [i for i in range(width) if i != self.target_index]

        self.cache: Optional[NeighborOrderCache] = None
        self.target: Optional[np.ndarray] = None
        self.version = 0
        self.n_synced = 0
        self.signature: Optional[Tuple] = None
        self.models: Optional[IndividualModels] = None

        # Adaptive-learning state (None for fixed-ℓ learning).
        self.candidates: Optional[np.ndarray] = None  # stepped ℓ grid
        self.all_parameters: Optional[np.ndarray] = None  # (L, n, p)
        self.costs: Optional[np.ndarray] = None  # (n, L)
        self.global_costs: Optional[np.ndarray] = None  # (n,)
        self.global_params: Optional[np.ndarray] = None  # (p,)
        self.global_active = False
        self.owners: Optional[np.ndarray] = None  # (n, k_val)
        self.counts: Optional[np.ndarray] = None  # (n,)

        # Fixed-learning state.
        self.parameters: Optional[np.ndarray] = None  # (n, p)

    # ------------------------------------------------------------------ #
    @property
    def _imputer(self) -> IIMImputer:
        return self.engine.imputer

    @property
    def _adaptive(self) -> bool:
        return self._imputer.learning == "adaptive"

    def _validation_neighbors(self) -> int:
        imputer = self._imputer
        return imputer.validation_neighbors or imputer.k

    def _requested_cache_length(self) -> Optional[int]:
        """The ordering cap, chosen so every refresh prefix stays available."""
        imputer = self._imputer
        if not self._adaptive:
            return imputer.learning_neighbors
        if imputer.max_learning_neighbors is None:
            return None
        return max(imputer.max_learning_neighbors, self._validation_neighbors() + 1)

    def _signature(self, n: int) -> Tuple:
        """Structural fingerprint; a change forces a full relearn.

        Captures everything that reshapes the state's arrays: the stepped
        candidate grid (still growing while ``n < max_learning_neighbors``),
        the effective validation ``k`` (clamped by ``n - 1`` during warmup)
        and whether the global ``ℓ = n`` candidate participates.
        """
        imputer = self._imputer
        if not self._adaptive:
            return ("fixed", min(imputer.learning_neighbors, n))
        candidates = candidate_ell_values(
            n, stepping=imputer.stepping, max_ell=imputer.max_learning_neighbors
        )
        k_val = min(self._validation_neighbors(), n - 1) if n > 1 else 0
        global_active = (
            bool(imputer.include_global) and n > 1 and int(candidates.max()) < n
        )
        return ("adaptive", tuple(int(c) for c in candidates), k_val, global_active)

    # ------------------------------------------------------------------ #
    def sync(self) -> None:
        """Bring the state up to date with the engine's store."""
        engine = self.engine
        if self.cache is not None and self.version == engine._version:
            return
        n = engine._n
        store = engine._store_matrix()
        signature = self._signature(n)
        pending = engine._pending_ops(self.version)
        if pending is None or self.cache is None or not self._can_replay(
            pending, signature
        ):
            self._full_build(
                store[:, self.feature_indices], store[:, self.target_index], signature
            )
            engine.stats["full_refreshes"] += 1
            engine.stats["rows_refreshed"] += n
        else:
            # Replay in two phases: each op maintains the neighbour cache,
            # the owner matrix and the dirty sets only; the expensive model
            # relearn + cost scatter + selection then runs ONCE over the
            # final state — exact, because models and costs depend only on
            # the final store, and rows no op dirtied kept cold values.
            dirty_models = np.zeros(self.cache.n_points, dtype=bool)
            dirty_costs = np.zeros(self.cache.n_points, dtype=bool)
            for op, payload in self._coalesced(pending):
                if op == "append":
                    dirty_models, dirty_costs = self._track_append(
                        payload, dirty_models, dirty_costs
                    )
                elif op == "delete":
                    dirty_models, dirty_costs = self._track_delete(
                        payload, dirty_models, dirty_costs
                    )
                else:
                    index, row = payload
                    dirty_models, dirty_costs = self._track_update(
                        index, row, dirty_models, dirty_costs
                    )
            refreshed = self._finalize_refresh(dirty_models, dirty_costs)
            engine.stats["incremental_refreshes"] += 1
            engine.stats["rows_refreshed"] += refreshed
        self.signature = signature
        self.n_synced = n
        self.version = engine._version
        engine._prune_journal()

    def _can_replay(self, pending, final_signature) -> bool:
        """Whether every pending op keeps the state structure unchanged."""
        if self.signature is None or final_signature != self.signature:
            return False
        n_running = self.n_synced
        for op, payload in pending:
            if op == "append":
                n_running += payload.shape[0]
            elif op == "delete":
                n_running -= payload.shape[0]
            else:
                continue  # updates never change n (or the structure)
            if n_running < 1 or self._signature(n_running) != self.signature:
                return False
        return True

    @staticmethod
    def _coalesced(pending) -> List[Tuple[str, object]]:
        """Merge runs of adjacent appends into one batched merge."""
        out: List[Tuple[str, object]] = []
        for op, payload in pending:
            if op == "append" and out and out[-1][0] == "append":
                out[-1] = ("append", np.vstack([out[-1][1], payload]))
            else:
                out.append((op, payload))
        return out

    # ------------------------------------------------------------------ #
    def _full_build(self, features: np.ndarray, target: np.ndarray, signature) -> None:
        """Cold rebuild: fresh neighbour cache, then the model/cost stack."""
        self.cache = NeighborOrderCache(
            features,
            metric=self._imputer.metric,
            include_self=True,
            max_length=self._requested_cache_length(),
            keep_distances=True,
        )
        self.target = np.array(target, dtype=float)
        self._rebuild_from_cache(signature)

    def _rebuild_from_cache(self, signature) -> None:
        """Relearn every model/cost wholesale over the maintained orderings.

        Shared by the cold path (after building a fresh cache) and the
        hybrid fallback (which keeps the incrementally-merged cache — it is
        exact — and only redoes the learning vectorized).
        """
        imputer = self._imputer
        features = np.asarray(self.cache.data)
        target = self.target
        n = features.shape[0]
        if not self._adaptive:
            ell = signature[1]
            self.models = learn_individual_models(
                features,
                target,
                ell,
                alpha=imputer.alpha,
                metric=imputer.metric,
                order_cache=self.cache,
                backend="vectorized",
            )
            self.parameters = self.models.parameters
            return

        _, stepped, k_val, global_active = signature
        result = adaptive_learning(
            features,
            target,
            validation_neighbors=self._validation_neighbors(),
            stepping=imputer.stepping,
            max_ell=imputer.max_learning_neighbors,
            alpha=imputer.alpha,
            metric=imputer.metric,
            incremental=imputer.incremental,
            include_global=imputer.include_global,
            backend="vectorized",
            order_cache=self.cache,
            keep_candidate_models=True,
        )
        n_stepped = len(stepped)
        self.candidates = np.asarray(stepped, dtype=int)
        self.global_active = global_active
        self.all_parameters = result.all_parameters[:n_stepped].copy()
        if global_active:
            self.global_params = result.all_parameters[n_stepped, 0].copy()
            self.global_costs = result.costs[:, n_stepped].copy()
        else:
            self.global_params = None
            self.global_costs = np.zeros(n)
        self.costs = result.costs[:, :n_stepped].copy()
        self.counts = result.validation_counts.astype(int)
        if k_val > 0:
            orders = self.cache.order_matrix()[:, : k_val + 1]
            self.owners = drop_self_rows(orders, np.arange(n))[:, :k_val]
        else:
            self.owners = np.empty((n, 0), dtype=int)
        self.models = result.models

    def _maybe_fallback(self, n_dirty: int, n: int) -> bool:
        """Hybrid policy: rebuild wholesale when a mutation dirties too much."""
        fraction = self.engine.incremental_fallback_fraction
        if fraction is None or n <= 0:
            return False
        if n_dirty <= fraction * n:
            return False
        self._rebuild_from_cache(self.signature)
        self.engine.stats["hybrid_full_rebuilds"] += 1
        return True

    def _owners_from(self, orders: np.ndarray, k_val: int, n: int) -> np.ndarray:
        if k_val > 0:
            return drop_self_rows(orders[:, : k_val + 1], np.arange(n))[:, :k_val]
        return np.empty((n, 0), dtype=int)

    def _rebuild_dirty_costs(
        self,
        dirty_rows: np.ndarray,
        owners_new: np.ndarray,
        designs: np.ndarray,
        target: np.ndarray,
        k_val: int,
    ) -> None:
        """Zero and re-accumulate the dirty validation-cost rows."""
        if k_val > 0 and dirty_rows.size:
            pair_j, pair_pos = np.nonzero(np.isin(owners_new, dirty_rows))
            pair_i = owners_new[pair_j, pair_pos]
            self.costs[dirty_rows] = 0.0
            # The cold validation kernel, restricted to the dirty pairs —
            # same einsum, same bincount, same accumulation order.
            scatter_validation_costs(
                self.costs, pair_j, pair_i, designs, target, self.all_parameters
            )

    def _finish_validation(
        self,
        owners_new: np.ndarray,
        designs: np.ndarray,
        target: np.ndarray,
        k_val: int,
        global_active: bool,
        n: int,
    ) -> None:
        """Global cost column, validation counts, owner matrix, selection."""
        if global_active and k_val > 0:
            residuals = (target - designs @ self.global_params) ** 2
            self.global_costs = np.bincount(
                owners_new.ravel(),
                weights=residuals[np.repeat(np.arange(n), k_val)],
                minlength=n,
            )
        else:
            self.global_costs = np.zeros(n)
        self.counts = (
            np.bincount(owners_new.ravel(), minlength=n).astype(int)
            if k_val > 0
            else np.zeros(n, dtype=int)
        )
        self.owners = owners_new
        self._select(n)

    # ------------------------------------------------------------------ #
    # Per-operation dirty tracking (phase 1 of a replay)
    # ------------------------------------------------------------------ #
    def _dirty_limit(self) -> int:
        """The prefix length whose change invalidates a tuple's models."""
        if self._adaptive:
            return int(self.candidates.max())
        return self.signature[1]

    def _k_val(self) -> int:
        return self.signature[2] if self._adaptive else 0

    def _track_append(
        self, rows: np.ndarray, dirty_models: np.ndarray, dirty_costs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absorb appended tuples into the cache/owner/dirty state."""
        n_old = self.cache.n_points
        result = self.cache.append(rows[:, self.feature_indices])
        self.target = np.concatenate([self.target, rows[:, self.target_index]])
        n = self.cache.n_points

        grown_models = np.zeros(n, dtype=bool)
        grown_models[:n_old] = dirty_models
        grown_models[result.changed_rows(self._dirty_limit())] = True
        grown_models[n_old:] = True
        grown_costs = np.zeros(n, dtype=bool)
        grown_costs[:n_old] = dirty_costs

        if self._adaptive:
            n_stepped = self.candidates.shape[0]
            p = self.all_parameters.shape[2]
            params = np.empty((n_stepped, n, p))
            params[:, :n_old] = self.all_parameters
            self.all_parameters = params
            costs = np.zeros((n, n_stepped))
            costs[:n_old] = self.costs
            self.costs = costs
            k_val = self._k_val()
            if k_val > 0:
                orders = self.cache.order_matrix()
                owners_new = self._owners_from(orders, k_val, n)
                validators_changed = result.changed_rows(k_val + 1)
                if validators_changed.size:
                    old_rows = self.owners[validators_changed]
                    new_rows = owners_new[validators_changed]
                    moved = old_rows != new_rows
                    grown_costs[old_rows[moved]] = True
                    grown_costs[new_rows[moved]] = True
                grown_costs[owners_new[n_old:].ravel()] = True
                self.owners = owners_new
            else:
                self.owners = np.empty((n, 0), dtype=int)
        else:
            params = np.empty((n, self.parameters.shape[1]))
            params[:n_old] = self.parameters
            self.parameters = params
        return grown_models, grown_costs

    def _track_delete(
        self, indices: np.ndarray, dirty_models: np.ndarray, dirty_costs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold deleted tuples out of the cache/owner/dirty state."""
        old_owners = self.owners
        result = self.cache.remove(indices)
        kept = result.kept_rows()
        index_map = result.index_map
        self.target = self.target[kept]
        n = self.cache.n_points

        shrunk_models = dirty_models[kept]
        shrunk_models[result.changed_rows(self._dirty_limit())] = True
        shrunk_costs = dirty_costs[kept]

        if self._adaptive:
            self.all_parameters = np.ascontiguousarray(self.all_parameters[:, kept])
            self.costs = np.ascontiguousarray(self.costs[kept])
            k_val = self._k_val()
            if k_val > 0:
                orders = self.cache.order_matrix()
                owners_new = self._owners_from(orders, k_val, n)
                # Owners gained/lost by surviving validators...
                validators_changed = result.changed_rows(k_val + 1)
                if validators_changed.size:
                    old_rows = index_map[old_owners[kept[validators_changed]]]
                    new_rows = owners_new[validators_changed]
                    moved = old_rows != new_rows
                    moved_old = old_rows[moved]
                    shrunk_costs[moved_old[moved_old >= 0]] = True
                    shrunk_costs[new_rows[moved]] = True
                # ...and owners that lost a deleted validator's contribution.
                removed_old = np.flatnonzero(index_map < 0)
                lost = index_map[old_owners[removed_old]]
                shrunk_costs[lost[lost >= 0]] = True
                self.owners = owners_new
            else:
                self.owners = np.empty((n, 0), dtype=int)
        else:
            self.parameters = self.parameters[kept]
        return shrunk_models, shrunk_costs

    def _track_update(
        self,
        index: int,
        row: np.ndarray,
        dirty_models: np.ndarray,
        dirty_costs: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold one revised tuple into the cache/owner/dirty state."""
        old_owners = self.owners
        result = self.cache.replace(index, row[self.feature_indices])
        self.target[index] = row[self.target_index]
        n = self.cache.n_points
        orders = self.cache.order_matrix()
        limit = self._dirty_limit()

        # Changed orderings are not enough: a model whose prefix still
        # contains the revised tuple at the same rank changed *values*.
        dirty_models[result.changed_rows(limit)] = True
        dirty_models |= (orders[:, :limit] == index).any(axis=1)
        dirty_models[index] = True

        if self._adaptive:
            k_val = self._k_val()
            if k_val > 0:
                owners_new = self._owners_from(orders, k_val, n)
                validators_changed = result.changed_rows(k_val + 1)
                if validators_changed.size:
                    old_rows = old_owners[validators_changed]
                    new_rows = owners_new[validators_changed]
                    moved = old_rows != new_rows
                    dirty_costs[old_rows[moved]] = True
                    dirty_costs[new_rows[moved]] = True
                # Every owner the revised tuple validates sees a revalued
                # squared error, even where the neighbour sets did not move.
                dirty_costs[old_owners[index]] = True
                dirty_costs[owners_new[index]] = True
                self.owners = owners_new
        return dirty_models, dirty_costs

    # ------------------------------------------------------------------ #
    # Batched refresh (phase 2 of a replay)
    # ------------------------------------------------------------------ #
    def _finalize_refresh(
        self, dirty_models: np.ndarray, dirty_costs: np.ndarray
    ) -> int:
        """One batched relearn + cost rebuild + selection over the dirty sets."""
        imputer = self._imputer
        n = self.cache.n_points
        model_rows = np.flatnonzero(dirty_models)
        if self._maybe_fallback(model_rows.shape[0], n):
            return n
        features = np.asarray(self.cache.data)
        target = self.target
        orders = self.cache.order_matrix()

        if not self._adaptive:
            ell = self.signature[1]
            if model_rows.size:
                refreshed = learn_candidate_models_for_rows(
                    features,
                    target,
                    [ell],
                    orders[model_rows],
                    alpha=imputer.alpha,
                    incremental=True,
                )[0]
                self.parameters[model_rows] = refreshed
            self.models = IndividualModels(
                self.parameters, np.full(n, ell, dtype=int)
            )
            return int(model_rows.shape[0])

        _, stepped, k_val, global_active = self.signature
        if model_rows.size:
            refreshed = learn_candidate_models_for_rows(
                features,
                target,
                self.candidates,
                orders[model_rows],
                alpha=imputer.alpha,
                incremental=imputer.incremental,
            )
            self.all_parameters[:, model_rows] = refreshed

        # The global ℓ = n candidate changes on every mutation.
        if global_active:
            self.global_params = (
                RidgeRegression(alpha=imputer.alpha).fit(features, target).coefficients
            )

        dirty_rows = np.flatnonzero(dirty_costs | dirty_models)
        designs = batched_design(features)
        self._rebuild_dirty_costs(dirty_rows, self.owners, designs, target, k_val)
        self._finish_validation(
            self.owners, designs, target, k_val, global_active, n
        )
        return int(model_rows.shape[0])

    def _select(self, n: int) -> None:
        """Re-run the per-tuple argmin of Algorithm 3 over the cost matrix."""
        n_stepped = self.candidates.shape[0]
        if self.global_active:
            full_costs = np.hstack([self.costs, self.global_costs[:, None]])
            full_candidates = np.concatenate([self.candidates, [n]])
        else:
            full_costs = self.costs
            full_candidates = self.candidates
        chosen = np.argmin(full_costs, axis=1)
        if (self.counts == 0).any():
            global_best = int(np.argmin(full_costs.sum(axis=0)))
            chosen = np.where(self.counts == 0, global_best, chosen)
        chosen_ell = full_candidates[chosen]
        selected = np.empty((n, self.all_parameters.shape[2]))
        stepped_mask = chosen < n_stepped
        rows = np.arange(n)
        selected[stepped_mask] = self.all_parameters[
            chosen[stepped_mask], rows[stepped_mask]
        ]
        if (~stepped_mask).any():
            selected[~stepped_mask] = self.global_params
        self.models = IndividualModels(selected, chosen_ell)

    # ------------------------------------------------------------------ #
    # Artifact serialization
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {
            "orders": self.cache.order_matrix(),
            "order_dists": self.cache.order_distances,
            "target": self.target,
            "models_parameters": self.models.parameters,
            "models_ell": self.models.learning_neighbors,
        }
        if self._adaptive:
            arrays.update(
                candidates=self.candidates,
                all_parameters=self.all_parameters,
                costs=self.costs,
                global_costs=self.global_costs,
                owners=self.owners,
                counts=self.counts,
            )
            if self.global_params is not None:
                arrays["global_params"] = self.global_params
        else:
            arrays["parameters"] = self.parameters
        return arrays

    def state_metadata(self) -> Dict[str, object]:
        return {
            "target_index": self.target_index,
            "n_synced": self.n_synced,
            "signature": list(self.signature),
            "global_active": self.global_active,
        }

    @classmethod
    def restore(
        cls,
        engine: "OnlineImputationEngine",
        metadata: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "_AttributeState":
        state = cls(engine, int(metadata["target_index"]))
        state.n_synced = int(metadata["n_synced"])
        state.version = engine._version
        signature = metadata["signature"]
        if signature[0] == "adaptive":
            state.signature = (
                "adaptive",
                tuple(int(c) for c in signature[1]),
                int(signature[2]),
                bool(signature[3]),
            )
        else:
            state.signature = ("fixed", int(signature[1]))
        features = engine._store_matrix()[: state.n_synced, state.feature_indices]
        state.cache = NeighborOrderCache(
            features,
            metric=engine.imputer.metric,
            include_self=True,
            max_length=state._requested_cache_length(),
            keep_distances=True,
        )
        state.cache.restore_matrix(arrays["orders"], arrays["order_dists"])
        state.target = np.array(arrays["target"], dtype=float)
        state.models = IndividualModels(
            arrays["models_parameters"], arrays["models_ell"]
        )
        if state._adaptive:
            state.candidates = arrays["candidates"].astype(int)
            state.all_parameters = arrays["all_parameters"]
            state.costs = arrays["costs"]
            state.global_costs = arrays["global_costs"]
            state.owners = arrays["owners"].astype(int)
            state.counts = arrays["counts"].astype(int)
            state.global_active = bool(metadata["global_active"])
            state.global_params = arrays.get("global_params")
        else:
            state.parameters = arrays["parameters"]
        return state


class OnlineImputationEngine:
    """A long-lived IIM service over a mutable store of complete tuples.

    Parameters
    ----------
    imputer:
        An (unfitted) :class:`~repro.core.iim.IIMImputer` carrying the
        method configuration; alternatively pass its constructor arguments
        as keyword arguments and the engine builds one.
    model_cache_size:
        Maximum number of per-attribute model states kept resident
        (LRU-evicted beyond that; ``None`` = unbounded).  Defaults to the
        process-wide knob of :mod:`repro.config`.
    refresh_policy:
        ``"lazy"`` (default knob) folds pending mutations into a model
        state on the next imputation touching its attribute, so bursts of
        appends/deletes/updates amortise into one refresh; ``"eager"``
        refreshes every cached state inside each mutating call.
    incremental_fallback_fraction:
        Hybrid relearn threshold: when one mutation batch dirties more than
        this fraction of a state's tuples the state is relearned with one
        vectorized full rebuild over the maintained orderings instead of
        the per-row incremental path.  Defaults to the process-wide knob of
        :mod:`repro.config`; ``None`` disables the fallback.

    Examples
    --------
    >>> engine = OnlineImputationEngine(k=5, learning="fixed", learning_neighbors=3)
    >>> engine.append(complete_rows)                    # doctest: +SKIP
    >>> engine.update(3, corrected_row)                 # doctest: +SKIP
    >>> engine.delete([0, 17])                          # doctest: +SKIP
    >>> filled = engine.impute_batch(rows_with_nans)    # doctest: +SKIP
    >>> engine.snapshot("artifacts/engine")             # doctest: +SKIP
    """

    def __init__(
        self,
        imputer: Optional[IIMImputer] = None,
        *,
        model_cache_size="default",
        refresh_policy: Optional[str] = None,
        incremental_fallback_fraction="default",
        **iim_params,
    ):
        if imputer is None:
            imputer = IIMImputer(**iim_params)
        elif iim_params:
            raise ConfigurationError(
                "pass either an imputer instance or IIM keyword arguments, not both"
            )
        if not isinstance(imputer, IIMImputer):
            raise ConfigurationError(
                f"OnlineImputationEngine wraps an IIMImputer, got {type(imputer).__name__}"
            )
        self.imputer = imputer
        self.model_cache_size = resolve_online_model_cache_size(model_cache_size)
        self.refresh_policy = resolve_online_refresh_policy(refresh_policy)
        self.incremental_fallback_fraction = resolve_online_fallback_fraction(
            incremental_fallback_fraction
        )

        self._schema: Optional[Schema] = None
        self._buffer: Optional[np.ndarray] = None
        self._n = 0
        self._version = 0
        self._journal: List[Tuple[int, str, object]] = []
        # Mutations at versions <= the floor are no longer journalled; a
        # state that lags behind it must full-rebuild instead of replaying.
        self._journal_floor = 0
        self._states: "OrderedDict[int, _AttributeState]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "appends": 0,
            "appended_rows": 0,
            "deletes": 0,
            "deleted_rows": 0,
            "updates": 0,
            "impute_batches": 0,
            "imputed_cells": 0,
            "full_refreshes": 0,
            "incremental_refreshes": 0,
            "hybrid_full_rebuilds": 0,
            "rows_refreshed": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
        }

    # ------------------------------------------------------------------ #
    # Store
    # ------------------------------------------------------------------ #
    @property
    def n_tuples(self) -> int:
        """Number of complete tuples currently stored."""
        return self._n

    @property
    def n_attributes(self) -> int:
        """Schema width ``m`` (raises before the first append)."""
        if self._schema is None:
            raise NotFittedError("the engine has no schema yet; append tuples first")
        return self._schema.width

    @property
    def schema(self) -> Schema:
        """The engine's schema (raises before the first append)."""
        if self._schema is None:
            raise NotFittedError("the engine has no schema yet; append tuples first")
        return self._schema

    def _store_matrix(self) -> np.ndarray:
        if self._n == 0:
            raise NotFittedError(
                "the engine store is empty; append complete tuples first"
            )
        return self._buffer[: self._n]

    def store_relation(self, name: str = "") -> Relation:
        """The current store as a :class:`Relation` (for cold comparisons)."""
        return Relation(self._store_matrix().copy(), self._schema, name=name)

    @classmethod
    def from_relation(
        cls, relation: Relation, *, model_cache_size="default",
        refresh_policy: Optional[str] = None,
        incremental_fallback_fraction="default", **iim_params,
    ) -> "OnlineImputationEngine":
        """Build an engine seeded with the complete part of ``relation``."""
        engine = cls(
            model_cache_size=model_cache_size,
            refresh_policy=refresh_policy,
            incremental_fallback_fraction=incremental_fallback_fraction,
            **iim_params,
        )
        engine.append(relation.complete_part())
        return engine

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def append(self, rows: Union[np.ndarray, Relation]) -> "OnlineImputationEngine":
        """Add complete tuples to the store.

        ``rows`` may be an array of shape ``(b, m)`` (or a single tuple of
        length ``m``) or a :class:`Relation`; tuples containing missing
        cells are rejected — impute them first, then append the result.
        An empty batch is a true no-op (no counters, no refresh work).

        Under the ``"eager"`` refresh policy every cached model state is
        updated before the call returns; under ``"lazy"`` the work is
        deferred (and batched) until the next imputation.
        """
        if isinstance(rows, Relation):
            if self._schema is not None and rows.schema.attributes != self._schema.attributes:
                raise DataError(
                    "appended relation schema does not match the engine schema"
                )
            schema = rows.schema
            values = rows.raw.copy()
        else:
            values = np.atleast_2d(np.asarray(rows, dtype=float))
            if values.shape[0]:
                values = as_float_matrix(values, name="rows", allow_nan=True)
            schema = None
        if np.isnan(values).any():
            raise DataError(
                "append accepts complete tuples only; impute missing cells first"
            )
        if self._schema is None:
            self._schema = schema or Schema.default(values.shape[1])
        elif values.shape[1] != self._schema.width:
            raise DataError(
                f"appended rows have {values.shape[1]} attributes, the engine "
                f"store has {self._schema.width}"
            )

        b = values.shape[0]
        if b == 0:
            return self
        self._grow(b)
        self._buffer[self._n : self._n + b] = values
        self._n += b
        self.stats["appends"] += 1
        self.stats["appended_rows"] += b
        self._record("append", np.array(values, dtype=float))
        return self

    def delete(self, indices) -> "OnlineImputationEngine":
        """Remove tuples from the store by (current) store index.

        ``indices`` is one index or an array of indices into the current
        store; duplicates are tolerated.  Surviving tuples are compacted in
        order, so index ``j > i`` becomes ``j - |removed ≤ j|``.  Cached
        model states repair their neighbour orderings, models and
        validation costs incrementally (or fall back per the hybrid
        policy).  Deleting every tuple empties the store (the schema is
        kept; streaming can resume with fresh appends).
        """
        self._store_matrix()  # raises NotFittedError on an empty store
        indices = np.unique(np.atleast_1d(np.asarray(indices, dtype=int)))
        if indices.size == 0:
            return self
        if indices[0] < 0 or indices[-1] >= self._n:
            raise ConfigurationError(
                f"delete indices must lie in [0, {self._n}), got "
                f"[{indices[0]}, {indices[-1]}]"
            )
        keep = np.ones(self._n, dtype=bool)
        keep[indices] = False
        survivors = self._buffer[: self._n][keep]
        self._buffer[: survivors.shape[0]] = survivors
        self._n = survivors.shape[0]
        self.stats["deletes"] += 1
        self.stats["deleted_rows"] += int(indices.size)
        if self._n == 0:
            # No state can outlive an empty store; the next append restarts.
            self._version += 1
            self._states.clear()
            self._journal = []
            self._journal_floor = self._version
            return self
        self._record("delete", indices)
        return self

    def update(self, index: int, row) -> "OnlineImputationEngine":
        """Replace the tuple at store ``index`` with a revised complete tuple."""
        self._store_matrix()  # raises NotFittedError on an empty store
        index = int(index)
        if not 0 <= index < self._n:
            raise ConfigurationError(
                f"update index must lie in [0, {self._n}), got {index}"
            )
        row = np.asarray(row, dtype=float).ravel()
        if row.shape[0] != self._schema.width:
            raise DataError(
                f"updated row has {row.shape[0]} attributes, the engine store "
                f"has {self._schema.width}"
            )
        if np.isnan(row).any():
            raise DataError(
                "update accepts complete tuples only; impute missing cells first"
            )
        self._buffer[index] = row
        self.stats["updates"] += 1
        self._record("update", (index, row.copy()))
        return self

    #: Journal entries kept at most; a longer lazy backlog (e.g. one stale
    #: state pinning the horizon across thousands of mutations) spills the
    #: oldest payloads and sends the laggard through a full rebuild instead.
    MAX_JOURNAL_OPS = 512

    def _record(self, op: str, payload) -> None:
        """Journal one mutation and run eager refreshes.

        With no resident model state there is nothing that could ever
        replay the entry (a state built later always starts from a full
        rebuild), so the payload is not retained at all.
        """
        self._version += 1
        if not self._states:
            self._journal_floor = self._version
            return
        self._journal.append((self._version, op, payload))
        if len(self._journal) > self.MAX_JOURNAL_OPS:
            spilled = self._journal[: -self.MAX_JOURNAL_OPS]
            self._journal = self._journal[-self.MAX_JOURNAL_OPS :]
            self._journal_floor = max(self._journal_floor, spilled[-1][0])
        if self.refresh_policy == "eager":
            for state in self._states.values():
                state.sync()

    def _pending_ops(self, version: int) -> Optional[List[Tuple[str, object]]]:
        """Ops recorded after ``version``, or ``None`` if some were spilled."""
        if version < self._journal_floor:
            return None
        return [(op, payload) for v, op, payload in self._journal if v > version]

    def _prune_journal(self) -> None:
        """Drop journal entries every resident state has already replayed."""
        if not self._journal:
            return
        versions = [state.version for state in self._states.values()]
        horizon = min(versions) if versions else self._version
        self._journal = [entry for entry in self._journal if entry[0] > horizon]
        self._journal_floor = max(self._journal_floor, horizon)

    def _grow(self, extra: int) -> None:
        width = self._schema.width
        if self._buffer is None:
            capacity = max(2 * extra, 64)
            self._buffer = np.empty((capacity, width))
            return
        needed = self._n + extra
        if needed <= self._buffer.shape[0]:
            return
        capacity = max(needed, 2 * self._buffer.shape[0])
        grown = np.empty((capacity, width))
        grown[: self._n] = self._buffer[: self._n]
        self._buffer = grown

    # ------------------------------------------------------------------ #
    # Model cache
    # ------------------------------------------------------------------ #
    def _get_state(self, target_index: int) -> _AttributeState:
        state = self._states.get(target_index)
        if state is None:
            self.stats["cache_misses"] += 1
            if (
                self.model_cache_size is not None
                and len(self._states) >= self.model_cache_size
            ):
                self._states.popitem(last=False)
                self.stats["cache_evictions"] += 1
                self._prune_journal()
            state = _AttributeState(self, target_index)
            self._states[target_index] = state
        else:
            self.stats["cache_hits"] += 1
            self._states.move_to_end(target_index)
        state.sync()
        return state

    def cached_attributes(self) -> List[int]:
        """Target attributes with a resident model state (LRU order, oldest first)."""
        return list(self._states)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def impute_batch(self, queries: Union[np.ndarray, Relation]) -> np.ndarray:
        """Impute every missing cell of a batch of query tuples.

        ``queries`` is an array of shape ``(q, m)`` (or one tuple of length
        ``m``) with NaN marking the missing cells; a :class:`Relation` is
        accepted too.  Returns a float array of shape ``(q, m)`` with every
        missing cell filled — equal (to ``rtol = 1e-9``) to what a cold
        ``IIMImputer`` refit over the engine's store would produce.
        """
        if isinstance(queries, Relation):
            values = queries.raw.copy()
        else:
            values = np.atleast_2d(np.asarray(queries, dtype=float)).copy()
        store = self._store_matrix()
        if values.ndim != 2 or values.shape[1] != self._schema.width:
            raise DataError(
                f"queries must have {self._schema.width} attributes, got shape "
                f"{values.shape}"
            )
        mask = np.isnan(values)
        self.stats["impute_batches"] += 1
        if not mask.any():
            return values
        if self._schema.width == 1:
            raise DataError("cannot impute a relation with a single attribute")

        # Query features are pre-filled with store column means, exactly as
        # the batch orchestration of BaseImputer does.
        column_means = store.mean(axis=0)
        filled = np.where(mask, column_means[None, :], values)

        imputer = self.imputer
        k = min(imputer.k, store.shape[0])
        for target_index in np.flatnonzero(mask.any(axis=0)):
            state = self._get_state(int(target_index))
            rows = np.flatnonzero(mask[:, target_index])
            query_block = filled[np.ix_(rows, state.feature_indices)]
            features = store[:, state.feature_indices]
            searcher = BruteForceNeighbors(
                metric=imputer.metric, backend=imputer.backend
            ).fit(features)
            values[rows, target_index] = impute_with_individual_models(
                query_block,
                state.models,
                features,
                store[:, target_index],
                k,
                combination=imputer.combination,
                searcher=searcher,
                backend=imputer.backend,
            )
            self.stats["imputed_cells"] += int(rows.shape[0])
        return values

    def impute_relation(self, relation: Relation) -> Relation:
        """Convenience wrapper returning a :class:`Relation`."""
        return relation.with_values(self.impute_batch(relation))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def snapshot(self, path: Union[str, Path]) -> Path:
        """Persist the engine (store, index, models, costs) as an artifact.

        Pending lazy mutations are folded into every resident state first,
        so the artifact always holds fully-synced states.  The artifact
        directory holds ``arrays.npz`` + ``manifest.json``; :meth:`load`
        restores an engine whose subsequent imputations are bit-identical
        to this one's.
        """
        if self._schema is None:
            raise NotFittedError("cannot snapshot an engine with no schema")
        if self._n:
            for state in self._states.values():
                state.sync()
        manifest: Dict[str, object] = {
            "engine": {
                "model_cache_size": self.model_cache_size,
                "refresh_policy": self.refresh_policy,
                "incremental_fallback_fraction": self.incremental_fallback_fraction,
            },
            "lifecycle": {"version": self._version},
            "imputer": {
                "class": type(self.imputer).__name__,
                "params": self.imputer.get_params(),
            },
            "schema": list(self._schema.attributes),
            "n_rows": self._n,
            "stats": dict(self.stats),
            "states": [],
        }
        arrays: Dict[str, np.ndarray] = {
            "store": self._store_matrix().copy() if self._n else np.empty((0, 0))
        }
        for target_index, state in self._states.items():
            if state.cache is None:
                continue
            manifest["states"].append(state.state_metadata())
            for key, value in state.state_arrays().items():
                arrays[f"state{target_index}_{key}"] = value
        return write_artifact(path, "engine", manifest, arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "OnlineImputationEngine":
        """Restore an engine saved with :meth:`snapshot`."""
        manifest, arrays = read_artifact(path, expected_kind="engine")
        imputer_info = manifest.get("imputer") or {}
        if imputer_info.get("class") != IIMImputer.__name__:
            raise ConfigurationError(
                f"engine artifact stores imputer class {imputer_info.get('class')!r}, "
                f"expected {IIMImputer.__name__!r}"
            )
        engine_info = manifest.get("engine") or {}
        engine = cls(
            IIMImputer(**(imputer_info.get("params") or {})),
            model_cache_size=engine_info.get("model_cache_size"),
            refresh_policy=engine_info.get("refresh_policy"),
            incremental_fallback_fraction=engine_info.get(
                "incremental_fallback_fraction"
            ),
        )
        schema = manifest.get("schema") or []
        store = arrays["store"]
        n_rows = int(manifest.get("n_rows", 0))
        if store.shape[0] != n_rows:
            raise ConfigurationError(
                f"engine artifact store has {store.shape[0]} rows, manifest "
                f"promises {n_rows}"
            )
        if n_rows:
            engine._schema = Schema([str(a) for a in schema])
            engine._buffer = np.array(store, dtype=float)
            engine._n = n_rows
        lifecycle = manifest.get("lifecycle") or {}
        engine._version = int(lifecycle.get("version", 0))
        engine._journal_floor = engine._version
        stats = manifest.get("stats") or {}
        for key in engine.stats:
            if key in stats:
                engine.stats[key] = int(stats[key])
        for metadata in manifest.get("states") or []:
            target_index = int(metadata["target_index"])
            prefix = f"state{target_index}_"
            state_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            engine._states[target_index] = _AttributeState.restore(
                engine, metadata, state_arrays
            )
        return engine

    def __repr__(self) -> str:
        width = "?" if self._schema is None else self._schema.width
        return (
            f"OnlineImputationEngine(n={self._n}, m={width}, "
            f"cached_attributes={list(self._states)}, "
            f"refresh={self.refresh_policy!r})"
        )
