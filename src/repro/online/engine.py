"""The online imputation engine: streaming tuple lifecycle from warm models.

The batch :class:`~repro.core.iim.IIMImputer` relearns everything from
scratch on every ``fit``; this module keeps a *long-lived* engine instead:

* :meth:`OnlineImputationEngine.append` adds complete tuples,
  :meth:`OnlineImputationEngine.delete` removes tuples by store index and
  :meth:`OnlineImputationEngine.update` revises one tuple in place — the
  full lifecycle a production store sees (inserts, retractions, late
  corrections).  Every cached per-attribute model state is maintained
  **incrementally**: the neighbour index absorbs the mutation exactly
  (:meth:`~repro.neighbors.NeighborOrderCache.append` /
  :meth:`~repro.neighbors.NeighborOrderCache.remove` /
  :meth:`~repro.neighbors.NeighborOrderCache.replace`), only the tuples
  whose neighbour prefix — or whose prefix *values* — actually changed have
  their candidate models relearned (through the batched Proposition 3
  kernel :func:`~repro.core.learning.learn_candidate_models_for_rows`), and
  only the validation-cost rows touched by the mutation are rebuilt.
* :meth:`OnlineImputationEngine.impute_batch` serves imputation requests in
  batches from an LRU cache of per-attribute model states — after any
  interleaving of appends, deletes and updates the answers match a cold
  ``IIMImputer`` refit over the surviving tuples to ``rtol = 1e-9``
  (asserted across fixed/adaptive learning and all three combiners in the
  test suite).
* :meth:`OnlineImputationEngine.snapshot` persists the full engine state
  (store, neighbour orderings, candidate models, validation costs) as an
  ``.npz`` + JSON-manifest artifact; :meth:`OnlineImputationEngine.load`
  restores an engine whose subsequent imputations are bit-identical.

The shared columnar store
-------------------------
Tuple payloads live in exactly one place: a
:class:`~repro.online.store.ColumnarTupleStore` — one array per attribute,
partitioned into fixed-capacity row shards, with free-list slot recycling.
Every cached attribute state reads *through* the store: its neighbour cache
holds a :class:`~repro.online.store.StoreFeatureView` (slot references, no
feature-submatrix copy) and its target column is gathered from the store on
demand (no target-column copy).  Resident per-state memory is therefore the
orderings/models/costs plus ``O(n)`` slot integers — independent of the
schema width — instead of the former ``O(n · m)`` float copies per state.
Distance kernels and neighbour queries run per shard with an exact
cross-shard ``(distance, index)`` merge, and a mutation's store writes
touch only the shards its slots land in.

Deferred maintenance: the mutation journal
------------------------------------------
Under the ``"lazy"`` refresh policy a cached state may lag the store by
several mutations.  The engine keeps the mutations since each state's sync
point in a **bounded ring buffer**
(:class:`~repro.online.store.MutationJournal`) whose entries hold store
slot references only — the payloads are durable in the columnar store the
moment a mutation lands, and retired row versions are *retained* (MVCC
style) until their journal entry is replayed by every resident state or
spills off the ring, at which point their slots return to the free list.
Journal memory is thus bounded by the ring capacity regardless of burst
length; a state older than the ring's floor full-rebuilds instead of
replaying.  On the next imputation touching a state the journal
is replayed in two phases — each op maintains the neighbour cache, the
owner matrix and the dirty sets only (adjacent appends coalesced into one
batched merge), then ONE batched relearn + cost rebuild + selection runs
over the dirty union — so a burst of mutations costs one refresh, not one
per op.  When any step of the pending
sequence would change the state's *structure* (the candidate ℓ grid still
growing towards ``max_learning_neighbors``, the validation ``k`` clamped by
a small ``n``, the global candidate toggling), the state falls back to one
full relearn over the final store instead — structure changes reshape every
array anyway.  The journal is pruned as states catch up.

Exactness of the incremental maintenance
----------------------------------------
Adaptive learning (Algorithm 3) gives every complete tuple ``i`` a cost row
``cost[i][ℓ]`` summed over the validation tuples ``j`` that count ``i``
among their ``k`` nearest neighbours.  A mutation can change that row in
exactly four ways: (1) ``i``'s own candidate models changed because its
learning prefix gained, lost, or revalued a tuple, (2) some validator ``j``
gained or lost ``i`` in its top-``k``, (3) a validator appeared,
disappeared, or changed value, or (4) the ``ℓ = n`` global candidate moved
(it does on *every* mutation; its single ridge fit and cost column are
recomputed each refresh).  The engine tracks all four through the index's
first-changed-position reports — plus, for updates, a prefix-membership
scan, because a revised tuple can change a model's *values* without moving
in any ordering — and rebuilds exactly those rows with the same scatter-add
kernel the cold path uses, so untouched rows keep values a cold run would
reproduce.

The hybrid relearn policy
-------------------------
When one mutation batch dirties more than ``incremental_fallback_fraction``
of a state's tuples (a huge append, a delete sweep), the per-row merge
bookkeeping buys nothing: the engine then relearns that state with one
vectorized full rebuild *over the already-maintained neighbour orderings*
— the cache merge is kept (it is exact), only the model/cost refresh is
done wholesale.  ``stats["hybrid_full_rebuilds"]`` counts these;
``stats["incremental_refreshes"]`` / ``stats["full_refreshes"]`` keep
counting which sync path ran.  Set the fraction to ``None`` for an
always-incremental engine (the pre-hybrid behaviour).
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .._validation import as_float_matrix
from ..config import (
    resolve_backend,
    resolve_online_delete_cost_mode,
    resolve_online_fallback_fraction,
    resolve_online_journal_capacity,
    resolve_online_model_cache_size,
    resolve_online_refresh_policy,
    resolve_online_shard_capacity,
)
from ..core.adaptive import adaptive_learning, scatter_validation_costs
from ..core.combine import get_batch_combiner
from ..core.iim import IIMImputer
from ..core.imputation import impute_with_individual_models
from ..core.learning import (
    IndividualModels,
    candidate_ell_values,
    learn_candidate_models_for_rows,
    learn_individual_models,
)
from ..data.relation import Relation, Schema
from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..neighbors import BruteForceNeighbors, NeighborOrderCache
from ..neighbors.brute import drop_self_rows
from ..obs import engine_phase, observe_imputed_cells
from ..regression import RidgeRegression, batched_design
from .artifacts import read_artifact, write_artifact
from .store import ColumnarTupleStore, MutationJournal, ShardedNeighbors

__all__ = ["OnlineImputationEngine"]

#: Cancellation guard of the delete cost-decrement path: when subtracting
#: the retired pairs would leave a cost entry below this fraction of its
#: previous value, rounding could be amplified past the engine's 1e-9
#: equivalence bar, so the row falls back to the exact rebuild instead.
DECREMENT_CANCELLATION_GUARD = 1e-6


class _AttributeState:
    """Models + incremental maintenance state for one incomplete attribute.

    One state exists per target attribute the engine has served; it owns the
    attribute's neighbour-order cache (a slot-indirected *view* over the
    shared columnar store, restricted to the complete attributes ``F``),
    the per-tuple models, and — for adaptive learning — the full candidate
    parameter stack and validation-cost matrix needed to refresh a subset
    of tuples without relearning the rest.  It holds **no copy** of the
    feature submatrix or the target column: both are gathered from the
    store on demand through the view's slots.
    """

    def __init__(self, engine: "OnlineImputationEngine", target_index: int):
        self.engine = engine
        self.target_index = int(target_index)
        width = engine.n_attributes
        self.feature_indices = [i for i in range(width) if i != self.target_index]

        self.cache: Optional[NeighborOrderCache] = None
        self.version = 0
        self.n_synced = 0
        self.signature: Optional[Tuple] = None
        self.models: Optional[IndividualModels] = None

        # Adaptive-learning state (None for fixed-ℓ learning).
        self.candidates: Optional[np.ndarray] = None  # stepped ℓ grid
        self.all_parameters: Optional[np.ndarray] = None  # (L, n, p)
        self.costs: Optional[np.ndarray] = None  # (n, L)
        self.global_costs: Optional[np.ndarray] = None  # (n,)
        self.global_params: Optional[np.ndarray] = None  # (p,)
        self.global_active = False
        self.owners: Optional[np.ndarray] = None  # (n, k_val)
        self.counts: Optional[np.ndarray] = None  # (n,)

        # Fixed-learning state.
        self.parameters: Optional[np.ndarray] = None  # (n, p)

        # Retired validation pairs accumulated during one replay for the
        # delete cost-decrement path (reset at every sync).
        self._retired_owners: List[np.ndarray] = []
        self._retired_designs: List[np.ndarray] = []
        self._retired_targets: List[np.ndarray] = []

    # ------------------------------------------------------------------ #
    @property
    def _imputer(self) -> IIMImputer:
        return self.engine.imputer

    def target_column(self) -> np.ndarray:
        """The state's target column, gathered from the store by slot."""
        return self.engine._store.column(self.target_index, self.cache.slots)

    @property
    def _decrement_active(self) -> bool:
        return (
            self.engine.delete_cost_mode == "decrement"
            and self._adaptive
            and self._k_val() > 0
        )

    @property
    def _adaptive(self) -> bool:
        return self._imputer.learning == "adaptive"

    def _validation_neighbors(self) -> int:
        imputer = self._imputer
        return imputer.validation_neighbors or imputer.k

    def _requested_cache_length(self) -> Optional[int]:
        """The ordering cap, chosen so every refresh prefix stays available."""
        imputer = self._imputer
        if not self._adaptive:
            return imputer.learning_neighbors
        if imputer.max_learning_neighbors is None:
            return None
        return max(imputer.max_learning_neighbors, self._validation_neighbors() + 1)

    def _signature(self, n: int) -> Tuple:
        """Structural fingerprint; a change forces a full relearn.

        Captures everything that reshapes the state's arrays: the stepped
        candidate grid (still growing while ``n < max_learning_neighbors``),
        the effective validation ``k`` (clamped by ``n - 1`` during warmup)
        and whether the global ``ℓ = n`` candidate participates.
        """
        imputer = self._imputer
        if not self._adaptive:
            return ("fixed", min(imputer.learning_neighbors, n))
        candidates = candidate_ell_values(
            n, stepping=imputer.stepping, max_ell=imputer.max_learning_neighbors
        )
        k_val = min(self._validation_neighbors(), n - 1) if n > 1 else 0
        global_active = (
            bool(imputer.include_global) and n > 1 and int(candidates.max()) < n
        )
        return ("adaptive", tuple(int(c) for c in candidates), k_val, global_active)

    # ------------------------------------------------------------------ #
    def sync(self) -> None:
        """Bring the state up to date with the engine's store."""
        engine = self.engine
        if self.cache is not None and self.version == engine._version:
            return
        n = engine._n
        if n == 0:
            raise NotFittedError("cannot sync a model state over an empty store")
        signature = self._signature(n)
        pending = engine._pending_ops(self.version)
        self._retired_owners = []
        self._retired_designs = []
        self._retired_targets = []
        if pending is None or self.cache is None or not self._can_replay(
            pending, signature
        ):
            self._full_build(signature)
            engine.stats["full_refreshes"] += 1
            engine.stats["rows_refreshed"] += n
        else:
            # Replay in two phases: each op maintains the neighbour cache,
            # the owner matrix and the dirty sets only; the expensive model
            # relearn + cost scatter + selection then runs ONCE over the
            # final state — exact, because models and costs depend only on
            # the final store, and rows no op dirtied kept cold values.
            dirty_models = np.zeros(self.cache.n_points, dtype=bool)
            dirty_costs = np.zeros(self.cache.n_points, dtype=bool)
            with engine_phase("order_maintenance"):
                for op, payload in self._coalesced(pending):
                    if op == "append":
                        dirty_models, dirty_costs = self._track_append(
                            payload, dirty_models, dirty_costs
                        )
                    elif op == "delete":
                        indices, retired_slots = payload
                        dirty_models, dirty_costs = self._track_delete(
                            indices, retired_slots, dirty_models, dirty_costs
                        )
                    else:
                        index, _, new_slot = payload
                        dirty_models, dirty_costs = self._track_update(
                            index, new_slot, dirty_models, dirty_costs
                        )
            refreshed = self._finalize_refresh(dirty_models, dirty_costs)
            engine.stats["incremental_refreshes"] += 1
            engine.stats["rows_refreshed"] += refreshed
        self.signature = signature
        self.n_synced = n
        self.version = engine._version
        engine._prune_journal()

    def _can_replay(self, pending, final_signature) -> bool:
        """Whether every pending op keeps the state structure unchanged."""
        if self.signature is None or final_signature != self.signature:
            return False
        n_running = self.n_synced
        for op, payload in pending:
            if op == "append":
                n_running += payload.shape[0]
            elif op == "delete":
                n_running -= payload[0].shape[0]
            else:
                continue  # updates never change n (or the structure)
            if n_running < 1 or self._signature(n_running) != self.signature:
                return False
        return True

    @staticmethod
    def _coalesced(pending) -> List[Tuple[str, object]]:
        """Merge runs of adjacent appends into one batched merge."""
        out: List[Tuple[str, object]] = []
        for op, payload in pending:
            if op == "append" and out and out[-1][0] == "append":
                out[-1] = ("append", np.concatenate([out[-1][1], payload]))
            else:
                out.append((op, payload))
        return out

    # ------------------------------------------------------------------ #
    def _full_build(self, signature) -> None:
        """Cold rebuild: a fresh store view + neighbour cache, then the
        model/cost stack."""
        view = self.engine._store.feature_view(exclude=self.target_index)
        self.cache = NeighborOrderCache(
            view,
            metric=self._imputer.metric,
            include_self=True,
            max_length=self._requested_cache_length(),
            keep_distances=True,
        )
        self._rebuild_from_cache(signature)

    def _rebuild_from_cache(self, signature) -> None:
        """Relearn every model/cost wholesale over the maintained orderings.

        Shared by the cold path (after building a fresh cache) and the
        hybrid fallback (which keeps the incrementally-merged cache — it is
        exact — and only redoes the learning vectorized).
        """
        with engine_phase("full_rebuild"):
            self._rebuild_from_cache_timed(signature)

    def _rebuild_from_cache_timed(self, signature) -> None:
        imputer = self._imputer
        features = np.asarray(self.cache.data)
        target = self.target_column()
        n = features.shape[0]
        if not self._adaptive:
            ell = signature[1]
            self.models = learn_individual_models(
                features,
                target,
                ell,
                alpha=imputer.alpha,
                metric=imputer.metric,
                order_cache=self.cache,
                backend="vectorized",
            )
            self.parameters = self.models.parameters
            return

        _, stepped, k_val, global_active = signature
        result = adaptive_learning(
            features,
            target,
            validation_neighbors=self._validation_neighbors(),
            stepping=imputer.stepping,
            max_ell=imputer.max_learning_neighbors,
            alpha=imputer.alpha,
            metric=imputer.metric,
            incremental=imputer.incremental,
            include_global=imputer.include_global,
            backend="vectorized",
            order_cache=self.cache,
            keep_candidate_models=True,
        )
        n_stepped = len(stepped)
        self.candidates = np.asarray(stepped, dtype=int)
        self.global_active = global_active
        self.all_parameters = result.all_parameters[:n_stepped].copy()
        if global_active:
            self.global_params = result.all_parameters[n_stepped, 0].copy()
            self.global_costs = result.costs[:, n_stepped].copy()
        else:
            self.global_params = None
            self.global_costs = np.zeros(n)
        self.costs = result.costs[:, :n_stepped].copy()
        self.counts = result.validation_counts.astype(int)
        if k_val > 0:
            orders = self.cache.order_matrix()[:, : k_val + 1]
            self.owners = drop_self_rows(orders, np.arange(n))[:, :k_val]
        else:
            self.owners = np.empty((n, 0), dtype=int)
        self.models = result.models

    def _maybe_fallback(self, n_dirty: int, n: int) -> bool:
        """Hybrid policy: rebuild wholesale when a mutation dirties too much."""
        fraction = self.engine.incremental_fallback_fraction
        if fraction is None or n <= 0:
            return False
        if n_dirty <= fraction * n:
            return False
        self._rebuild_from_cache(self.signature)
        self.engine.stats["hybrid_full_rebuilds"] += 1
        return True

    def _owners_from(self, orders: np.ndarray, k_val: int, n: int) -> np.ndarray:
        if k_val > 0:
            return drop_self_rows(orders[:, : k_val + 1], np.arange(n))[:, :k_val]
        return np.empty((n, 0), dtype=int)

    def _rebuild_dirty_costs(
        self,
        dirty_rows: np.ndarray,
        owners_new: np.ndarray,
        designs: np.ndarray,
        target: np.ndarray,
        k_val: int,
    ) -> None:
        """Zero and re-accumulate the dirty validation-cost rows."""
        if k_val > 0 and dirty_rows.size:
            pair_j, pair_pos = np.nonzero(np.isin(owners_new, dirty_rows))
            pair_i = owners_new[pair_j, pair_pos]
            self.costs[dirty_rows] = 0.0
            # The cold validation kernel, restricted to the dirty pairs —
            # same einsum, same bincount, same accumulation order.
            scatter_validation_costs(
                self.costs, pair_j, pair_i, designs, target, self.all_parameters
            )

    def _finish_validation(
        self,
        owners_new: np.ndarray,
        designs: np.ndarray,
        target: np.ndarray,
        k_val: int,
        global_active: bool,
        n: int,
    ) -> None:
        """Global cost column, validation counts, owner matrix, selection."""
        if global_active and k_val > 0:
            residuals = (target - designs @ self.global_params) ** 2
            self.global_costs = np.bincount(
                owners_new.ravel(),
                weights=residuals[np.repeat(np.arange(n), k_val)],
                minlength=n,
            )
        else:
            self.global_costs = np.zeros(n)
        self.counts = (
            np.bincount(owners_new.ravel(), minlength=n).astype(int)
            if k_val > 0
            else np.zeros(n, dtype=int)
        )
        self.owners = owners_new
        self._select(n)

    # ------------------------------------------------------------------ #
    # Per-operation dirty tracking (phase 1 of a replay)
    # ------------------------------------------------------------------ #
    def _dirty_limit(self) -> int:
        """The prefix length whose change invalidates a tuple's models."""
        if self._adaptive:
            return int(self.candidates.max())
        return self.signature[1]

    def _k_val(self) -> int:
        return self.signature[2] if self._adaptive else 0

    def _track_append(
        self, slots: np.ndarray, dirty_models: np.ndarray, dirty_costs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absorb appended tuples into the cache/owner/dirty state."""
        n_old = self.cache.n_points
        result = self.cache.append(slots=slots)
        n = self.cache.n_points

        grown_models = np.zeros(n, dtype=bool)
        grown_models[:n_old] = dirty_models
        grown_models[result.changed_rows(self._dirty_limit())] = True
        grown_models[n_old:] = True
        grown_costs = np.zeros(n, dtype=bool)
        grown_costs[:n_old] = dirty_costs

        if self._adaptive:
            n_stepped = self.candidates.shape[0]
            p = self.all_parameters.shape[2]
            params = np.empty((n_stepped, n, p))
            params[:, :n_old] = self.all_parameters
            self.all_parameters = params
            costs = np.zeros((n, n_stepped))
            costs[:n_old] = self.costs
            self.costs = costs
            k_val = self._k_val()
            if k_val > 0:
                orders = self.cache.order_matrix()
                owners_new = self._owners_from(orders, k_val, n)
                validators_changed = result.changed_rows(k_val + 1)
                if validators_changed.size:
                    old_rows = self.owners[validators_changed]
                    new_rows = owners_new[validators_changed]
                    moved = old_rows != new_rows
                    grown_costs[old_rows[moved]] = True
                    grown_costs[new_rows[moved]] = True
                grown_costs[owners_new[n_old:].ravel()] = True
                self.owners = owners_new
            else:
                self.owners = np.empty((n, 0), dtype=int)
        else:
            params = np.empty((n, self.parameters.shape[1]))
            params[:n_old] = self.parameters
            self.parameters = params
        return grown_models, grown_costs

    def _track_delete(
        self,
        indices: np.ndarray,
        retired_slots: np.ndarray,
        dirty_models: np.ndarray,
        dirty_costs: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold deleted tuples out of the cache/owner/dirty state."""
        old_owners = self.owners
        decrement = self._decrement_active
        if decrement:
            # The retired validators' payloads (still readable by slot —
            # the store retains them until the journal lets go) feed the
            # cost decrement in phase 2.
            deleted_designs = batched_design(
                self.engine._store.rows(retired_slots, attrs=self.feature_indices)
            )
            deleted_targets = self.engine._store.column(
                self.target_index, retired_slots
            )
        result = self.cache.remove(indices)
        kept = result.kept_rows()
        index_map = result.index_map
        n = self.cache.n_points

        shrunk_models = dirty_models[kept]
        shrunk_models[result.changed_rows(self._dirty_limit())] = True
        shrunk_costs = dirty_costs[kept]

        if self._adaptive:
            self.all_parameters = np.ascontiguousarray(self.all_parameters[:, kept])
            self.costs = np.ascontiguousarray(self.costs[kept])
            k_val = self._k_val()
            if k_val > 0:
                orders = self.cache.order_matrix()
                owners_new = self._owners_from(orders, k_val, n)
                # Owners gained/lost by surviving validators...
                validators_changed = result.changed_rows(k_val + 1)
                if validators_changed.size:
                    old_rows = index_map[old_owners[kept[validators_changed]]]
                    new_rows = owners_new[validators_changed]
                    moved = old_rows != new_rows
                    moved_old = old_rows[moved]
                    shrunk_costs[moved_old[moved_old >= 0]] = True
                    shrunk_costs[new_rows[moved]] = True
                # ...and owners that lost a deleted validator's contribution.
                removed_old = np.flatnonzero(index_map < 0)
                lost = index_map[old_owners[removed_old]]
                if decrement:
                    # Earlier recorded pairs live in the pre-delete index
                    # space; remap them (owners that died drop out).
                    self._remap_retired_pairs(index_map)
                    valid = lost.ravel() >= 0
                    self._retired_owners.append(lost.ravel()[valid])
                    self._retired_designs.append(
                        np.repeat(deleted_designs, k_val, axis=0)[valid]
                    )
                    self._retired_targets.append(
                        np.repeat(deleted_targets, k_val)[valid]
                    )
                else:
                    shrunk_costs[lost[lost >= 0]] = True
                self.owners = owners_new
            else:
                self.owners = np.empty((n, 0), dtype=int)
        else:
            self.parameters = self.parameters[kept]
        return shrunk_models, shrunk_costs

    def _track_update(
        self,
        index: int,
        new_slot: int,
        dirty_models: np.ndarray,
        dirty_costs: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold one revised tuple into the cache/owner/dirty state."""
        old_owners = self.owners
        result = self.cache.replace(index, slot=new_slot)
        n = self.cache.n_points
        orders = self.cache.order_matrix()
        limit = self._dirty_limit()

        # Changed orderings are not enough: a model whose prefix still
        # contains the revised tuple at the same rank changed *values*.
        dirty_models[result.changed_rows(limit)] = True
        dirty_models |= (orders[:, :limit] == index).any(axis=1)
        dirty_models[index] = True

        if self._adaptive:
            k_val = self._k_val()
            if k_val > 0:
                owners_new = self._owners_from(orders, k_val, n)
                validators_changed = result.changed_rows(k_val + 1)
                if validators_changed.size:
                    old_rows = old_owners[validators_changed]
                    new_rows = owners_new[validators_changed]
                    moved = old_rows != new_rows
                    dirty_costs[old_rows[moved]] = True
                    dirty_costs[new_rows[moved]] = True
                # Every owner the revised tuple validates sees a revalued
                # squared error, even where the neighbour sets did not move.
                dirty_costs[old_owners[index]] = True
                dirty_costs[owners_new[index]] = True
                self.owners = owners_new
        return dirty_models, dirty_costs

    # ------------------------------------------------------------------ #
    # Batched refresh (phase 2 of a replay)
    # ------------------------------------------------------------------ #
    def _finalize_refresh(
        self, dirty_models: np.ndarray, dirty_costs: np.ndarray
    ) -> int:
        """One batched relearn + cost rebuild + selection over the dirty sets."""
        imputer = self._imputer
        n = self.cache.n_points
        model_rows = np.flatnonzero(dirty_models)
        if self._maybe_fallback(model_rows.shape[0], n):
            return n
        features = np.asarray(self.cache.data)
        target = self.target_column()
        orders = self.cache.order_matrix()

        if not self._adaptive:
            with engine_phase("subset_relearn"):
                ell = self.signature[1]
                if model_rows.size:
                    refreshed = learn_candidate_models_for_rows(
                        features,
                        target,
                        [ell],
                        orders[model_rows],
                        alpha=imputer.alpha,
                        incremental=True,
                    )[0]
                    self.parameters[model_rows] = refreshed
                self.models = IndividualModels(
                    self.parameters, np.full(n, ell, dtype=int)
                )
            return int(model_rows.shape[0])

        _, stepped, k_val, global_active = self.signature
        with engine_phase("subset_relearn"):
            if model_rows.size:
                refreshed = learn_candidate_models_for_rows(
                    features,
                    target,
                    self.candidates,
                    orders[model_rows],
                    alpha=imputer.alpha,
                    incremental=imputer.incremental,
                )
                self.all_parameters[:, model_rows] = refreshed

            # The global ℓ = n candidate changes on every mutation.
            if global_active:
                self.global_params = (
                    RidgeRegression(alpha=imputer.alpha).fit(features, target).coefficients
                )

        with engine_phase("cost_rebuild"):
            dirty_mask = dirty_costs | dirty_models
            guard_rows = self._apply_cost_decrements(dirty_mask, n)
            if guard_rows.size:
                dirty_mask[guard_rows] = True
            dirty_rows = np.flatnonzero(dirty_mask)
            designs = batched_design(features)
            self._rebuild_dirty_costs(
                dirty_rows, self.owners, designs, target, k_val
            )
            self._finish_validation(
                self.owners, designs, target, k_val, global_active, n
            )
        return int(model_rows.shape[0])

    def _remap_retired_pairs(self, index_map: np.ndarray) -> None:
        """Renumber recorded decrement pairs through a delete's index map."""
        for position, owners in enumerate(self._retired_owners):
            remapped = index_map[owners]
            alive = remapped >= 0
            self._retired_owners[position] = remapped[alive]
            self._retired_designs[position] = self._retired_designs[position][alive]
            self._retired_targets[position] = self._retired_targets[position][alive]

    def _apply_cost_decrements(self, dirty_mask: np.ndarray, n: int) -> np.ndarray:
        """Subtract retired validation pairs from pure-loss cost rows.

        A row is *pure-loss* when the replay only removed validators from
        it: its candidate models are unchanged (so the recorded residuals
        are bit-identical to what the scatter kernel once added) and no
        validator was gained, moved, or revalued (those rows carry
        ``dirty_mask`` and take the exact rebuild).  Rows whose validator
        count reaches zero are set to exactly ``0.0`` — every contribution
        was retired, so the rebuild would produce the same bits.  Rows
        where the subtraction would cancel catastrophically (result under
        ``DECREMENT_CANCELLATION_GUARD`` of the previous value, or
        negative) are returned for the rebuild fallback instead.
        """
        if not self._retired_owners:
            return np.empty(0, dtype=int)
        owners = np.concatenate(self._retired_owners)
        designs = np.vstack(self._retired_designs)
        targets = np.concatenate(self._retired_targets)
        self._retired_owners = []
        self._retired_designs = []
        self._retired_targets = []
        if owners.size == 0:
            return np.empty(0, dtype=int)
        eligible = ~dirty_mask[owners]
        owners, designs, targets = (
            owners[eligible], designs[eligible], targets[eligible]
        )
        if owners.size == 0:
            return np.empty(0, dtype=int)

        # The same einsum the scatter kernel used to add these pairs, so
        # the subtracted residuals carry identical bits.
        predictions = np.einsum(
            "pc,lpc->pl", designs, self.all_parameters[:, owners, :]
        )
        errors = (targets[:, None] - predictions) ** 2
        rows = np.unique(owners)
        n_candidates = self.costs.shape[1]
        decrements = np.empty((rows.shape[0], n_candidates))
        for position in range(n_candidates):
            decrements[:, position] = np.bincount(
                owners, weights=errors[:, position], minlength=n
            )[rows]
        old_costs = self.costs[rows]
        new_costs = old_costs - decrements

        # Rows that lost every validator rebuild to exactly zero.
        counts_new = np.bincount(self.owners.ravel(), minlength=n)[rows]
        new_costs[counts_new == 0] = 0.0

        unsafe = (new_costs < 0.0).any(axis=1) | (
            (decrements > 0.0)
            & (new_costs < DECREMENT_CANCELLATION_GUARD * old_costs)
            & (counts_new[:, None] > 0)
        ).any(axis=1)
        safe = ~unsafe
        self.costs[rows[safe]] = new_costs[safe]
        self.engine.stats["delete_cost_decrements"] += int(safe.sum())
        self.engine.stats["delete_cost_guard_rebuilds"] += int(unsafe.sum())
        return rows[unsafe]

    def _select(self, n: int) -> None:
        """Re-run the per-tuple argmin of Algorithm 3 over the cost matrix."""
        n_stepped = self.candidates.shape[0]
        if self.global_active:
            full_costs = np.hstack([self.costs, self.global_costs[:, None]])
            full_candidates = np.concatenate([self.candidates, [n]])
        else:
            full_costs = self.costs
            full_candidates = self.candidates
        chosen = np.argmin(full_costs, axis=1)
        if (self.counts == 0).any():
            global_best = int(np.argmin(full_costs.sum(axis=0)))
            chosen = np.where(self.counts == 0, global_best, chosen)
        chosen_ell = full_candidates[chosen]
        selected = np.empty((n, self.all_parameters.shape[2]))
        stepped_mask = chosen < n_stepped
        rows = np.arange(n)
        selected[stepped_mask] = self.all_parameters[
            chosen[stepped_mask], rows[stepped_mask]
        ]
        if (~stepped_mask).any():
            selected[~stepped_mask] = self.global_params
        self.models = IndividualModels(selected, chosen_ell)

    # ------------------------------------------------------------------ #
    # Artifact serialization
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {
            "orders": self.cache.order_matrix(),
            "order_dists": self.cache.order_distances,
            "target": self.target_column(),
            "models_parameters": self.models.parameters,
            "models_ell": self.models.learning_neighbors,
        }
        if self._adaptive:
            arrays.update(
                candidates=self.candidates,
                all_parameters=self.all_parameters,
                costs=self.costs,
                global_costs=self.global_costs,
                owners=self.owners,
                counts=self.counts,
            )
            if self.global_params is not None:
                arrays["global_params"] = self.global_params
        else:
            arrays["parameters"] = self.parameters
        return arrays

    def state_metadata(self) -> Dict[str, object]:
        return {
            "target_index": self.target_index,
            "n_synced": self.n_synced,
            "signature": list(self.signature),
            "global_active": self.global_active,
        }

    @classmethod
    def restore(
        cls,
        engine: "OnlineImputationEngine",
        metadata: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "_AttributeState":
        state = cls(engine, int(metadata["target_index"]))
        state.n_synced = int(metadata["n_synced"])
        state.version = engine._version
        signature = metadata["signature"]
        if signature[0] == "adaptive":
            state.signature = (
                "adaptive",
                tuple(int(c) for c in signature[1]),
                int(signature[2]),
                bool(signature[3]),
            )
        else:
            state.signature = ("fixed", int(signature[1]))
        if state.n_synced != engine._store.n_live:
            raise ConfigurationError(
                f"engine artifact state for attribute {state.target_index} is "
                f"synced at {state.n_synced} rows but the store holds "
                f"{engine._store.n_live}; re-create the snapshot"
            )
        view = engine._store.feature_view(exclude=state.target_index)
        state.cache = NeighborOrderCache(
            view,
            metric=engine.imputer.metric,
            include_self=True,
            max_length=state._requested_cache_length(),
            keep_distances=True,
        )
        state.cache.restore_matrix(arrays["orders"], arrays["order_dists"])
        state.models = IndividualModels(
            arrays["models_parameters"], arrays["models_ell"]
        )
        if state._adaptive:
            state.candidates = arrays["candidates"].astype(int)
            state.all_parameters = arrays["all_parameters"]
            state.costs = arrays["costs"]
            state.global_costs = arrays["global_costs"]
            state.owners = arrays["owners"].astype(int)
            state.counts = arrays["counts"].astype(int)
            state.global_active = bool(metadata["global_active"])
            state.global_params = arrays.get("global_params")
        else:
            state.parameters = arrays["parameters"]
        return state


class OnlineImputationEngine:
    """A long-lived IIM service over a mutable store of complete tuples.

    Parameters
    ----------
    imputer:
        An (unfitted) :class:`~repro.core.iim.IIMImputer` carrying the
        method configuration; alternatively pass its constructor arguments
        as keyword arguments and the engine builds one.
    model_cache_size:
        Maximum number of per-attribute model states kept resident
        (LRU-evicted beyond that; ``None`` = unbounded).  Defaults to the
        process-wide knob of :mod:`repro.config`.
    refresh_policy:
        ``"lazy"`` (default knob) folds pending mutations into a model
        state on the next imputation touching its attribute, so bursts of
        appends/deletes/updates amortise into one refresh; ``"eager"``
        refreshes every cached state inside each mutating call.
    incremental_fallback_fraction:
        Hybrid relearn threshold: when one mutation batch dirties more than
        this fraction of a state's tuples the state is relearned with one
        vectorized full rebuild over the maintained orderings instead of
        the per-row incremental path.  Defaults to the process-wide knob of
        :mod:`repro.config`; ``None`` disables the fallback.
    shard_capacity:
        Rows per shard of the shared columnar tuple store (defaults to the
        process-wide knob).  Appends allocate whole shards and never move
        existing rows; mutation bookkeeping touches only the shards a
        batch's slots land in.
    journal_capacity:
        Mutation-journal ring capacity (defaults to the process-wide
        knob).  Entries hold store slot references only; overflowing
        entries spill, bounding journal memory, and states older than the
        spill floor full-rebuild instead of replaying.
    delete_cost_mode:
        ``"rebuild"`` (default knob) refreshes validation-cost rows
        touched by a delete with the exact scatter rebuild;
        ``"decrement"`` subtracts the retired validator pairs from rows
        that only lost validators, guarded by a cancellation check that
        falls back to the rebuild.

    Examples
    --------
    >>> engine = OnlineImputationEngine(k=5, learning="fixed", learning_neighbors=3)
    >>> engine.append(complete_rows)                    # doctest: +SKIP
    >>> engine.update(3, corrected_row)                 # doctest: +SKIP
    >>> engine.delete([0, 17])                          # doctest: +SKIP
    >>> filled = engine.impute_batch(rows_with_nans)    # doctest: +SKIP
    >>> engine.snapshot("artifacts/engine")             # doctest: +SKIP
    """

    def __init__(
        self,
        imputer: Optional[IIMImputer] = None,
        *,
        model_cache_size="default",
        refresh_policy: Optional[str] = None,
        incremental_fallback_fraction="default",
        shard_capacity="default",
        journal_capacity="default",
        delete_cost_mode="default",
        **iim_params,
    ):
        if imputer is None:
            imputer = IIMImputer(**iim_params)
        elif iim_params:
            raise ConfigurationError(
                "pass either an imputer instance or IIM keyword arguments, not both"
            )
        if not isinstance(imputer, IIMImputer):
            raise ConfigurationError(
                f"OnlineImputationEngine wraps an IIMImputer, got {type(imputer).__name__}"
            )
        self.imputer = imputer
        self.model_cache_size = resolve_online_model_cache_size(model_cache_size)
        self.refresh_policy = resolve_online_refresh_policy(refresh_policy)
        self.incremental_fallback_fraction = resolve_online_fallback_fraction(
            incremental_fallback_fraction
        )
        self.shard_capacity = resolve_online_shard_capacity(shard_capacity)
        self.journal_capacity = resolve_online_journal_capacity(journal_capacity)
        self.delete_cost_mode = resolve_online_delete_cost_mode(delete_cost_mode)

        self._schema: Optional[Schema] = None
        self._store: Optional[ColumnarTupleStore] = None
        self._pending: Optional[np.ndarray] = None
        self._version = 0
        self._journal = MutationJournal(self.journal_capacity)
        self._states: "OrderedDict[int, _AttributeState]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "appends": 0,
            "appended_rows": 0,
            "deletes": 0,
            "deleted_rows": 0,
            "updates": 0,
            "impute_batches": 0,
            "imputed_cells": 0,
            "full_refreshes": 0,
            "incremental_refreshes": 0,
            "hybrid_full_rebuilds": 0,
            "rows_refreshed": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "journal_spills": 0,
            "shards_touched": 0,
            "delete_cost_decrements": 0,
            "delete_cost_guard_rebuilds": 0,
        }

    # ------------------------------------------------------------------ #
    # Store
    # ------------------------------------------------------------------ #
    @property
    def _n(self) -> int:
        return 0 if self._store is None else self._store.n_live

    @property
    def n_tuples(self) -> int:
        """Number of complete tuples currently stored."""
        return self._n

    @property
    def n_pending(self) -> int:
        """Number of incomplete tuples waiting in the pending side-store.

        Pending tuples are appended with ``allow_incomplete=True``; they are
        never used for model learning or neighbour search, but the query
        layer scans them (missing cells impute on demand against the
        complete store).
        """
        return 0 if self._pending is None else int(self._pending.shape[0])

    @property
    def store(self) -> ColumnarTupleStore:
        """The shared columnar tuple store (raises before the first append)."""
        if self._store is None:
            raise NotFittedError(
                "the engine has no store yet; append complete tuples first"
            )
        return self._store

    @property
    def n_attributes(self) -> int:
        """Schema width ``m`` (raises before the first append)."""
        if self._schema is None:
            raise NotFittedError("the engine has no schema yet; append tuples first")
        return self._schema.width

    @property
    def schema(self) -> Schema:
        """The engine's schema (raises before the first append)."""
        if self._schema is None:
            raise NotFittedError("the engine has no schema yet; append tuples first")
        return self._schema

    def _store_matrix(self) -> np.ndarray:
        if self._n == 0:
            raise NotFittedError(
                "the engine store is empty; append complete tuples first"
            )
        return self._store.matrix()

    def store_relation(
        self, name: str = "", *, include_pending: bool = False
    ) -> Relation:
        """The current store as a :class:`Relation` (for cold comparisons).

        With ``include_pending=True`` the pending incomplete tuples are
        stacked below the complete store (they keep their ``NaN`` cells) —
        the relation the query layer evaluates, where row index ``i``
        addresses the complete store for ``i < n_tuples`` and pending row
        ``i - n_tuples`` afterwards.
        """
        if include_pending and self.n_pending:
            if self._n:
                matrix = np.vstack([self._store_matrix(), self._pending])
            elif self._schema is None:
                raise NotFittedError(
                    "the engine has no schema yet; append tuples first"
                )
            else:
                matrix = np.array(self._pending, dtype=float)
            return Relation(matrix, self._schema, name=name)
        return Relation(self._store_matrix(), self._schema, name=name)

    @classmethod
    def from_relation(
        cls, relation: Relation, *, model_cache_size="default",
        refresh_policy: Optional[str] = None,
        incremental_fallback_fraction="default",
        shard_capacity="default", journal_capacity="default",
        delete_cost_mode="default", **iim_params,
    ) -> "OnlineImputationEngine":
        """Build an engine seeded with the complete part of ``relation``."""
        engine = cls(
            model_cache_size=model_cache_size,
            refresh_policy=refresh_policy,
            incremental_fallback_fraction=incremental_fallback_fraction,
            shard_capacity=shard_capacity,
            journal_capacity=journal_capacity,
            delete_cost_mode=delete_cost_mode,
            **iim_params,
        )
        engine.append(relation.complete_part())
        return engine

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def append(
        self,
        rows: Union[np.ndarray, Relation],
        *,
        allow_incomplete: bool = False,
    ) -> "OnlineImputationEngine":
        """Add complete tuples to the store.

        ``rows`` may be an array of shape ``(b, m)`` (or a single tuple of
        length ``m``) or a :class:`Relation`; tuples containing missing
        cells are rejected — impute them first, then append the result.
        An empty batch is a true no-op (no counters, no refresh work).

        With ``allow_incomplete=True`` incomplete tuples are accepted into
        the pending side-store instead of being rejected: they never feed
        model learning or neighbour search, but the query layer scans them
        and imputes their missing cells on demand (see
        :meth:`store_relation`).  Complete tuples in the same batch take
        the normal store path.

        Under the ``"eager"`` refresh policy every cached model state is
        updated before the call returns; under ``"lazy"`` the work is
        deferred (and batched) until the next imputation.
        """
        if isinstance(rows, Relation):
            if self._schema is not None and rows.schema.attributes != self._schema.attributes:
                raise DataError(
                    "appended relation schema does not match the engine schema"
                )
            schema = rows.schema
            values = rows.raw.copy()
        else:
            values = np.atleast_2d(np.asarray(rows, dtype=float))
            if values.shape[0]:
                values = as_float_matrix(values, name="rows", allow_nan=True)
            schema = None
        if np.isnan(values).any() and not allow_incomplete:
            raise DataError(
                "append accepts complete tuples only; impute missing cells first"
            )
        if self._schema is None:
            self._schema = schema or Schema.default(values.shape[1])
        elif values.shape[1] != self._schema.width:
            raise DataError(
                f"appended rows have {values.shape[1]} attributes, the engine "
                f"store has {self._schema.width}"
            )
        if allow_incomplete and values.size and np.isnan(values).any():
            incomplete = np.isnan(values).any(axis=1)
            pending = np.array(values[incomplete], dtype=float)
            if self._pending is None:
                self._pending = pending
            else:
                self._pending = np.vstack([self._pending, pending])
            values = values[~incomplete]

        b = values.shape[0]
        if b == 0:
            return self
        with engine_phase("append"):
            if self._store is None:
                self._store = ColumnarTupleStore(
                    self._schema.width, shard_capacity=self.shard_capacity
                )
            slots = self._store.append(np.asarray(values, dtype=float))
            self.stats["appends"] += 1
            self.stats["appended_rows"] += b
            self.stats["shards_touched"] += int(
                self._store.shards_of(slots).shape[0]
            )
            self._record("append", slots)
        return self

    def promote_pending(self) -> int:
        """Impute every pending incomplete tuple and move it into the store.

        The pending rows are imputed in one batch against the current
        store (identical to :meth:`impute_batch` on them), appended as
        complete tuples, and the side-store is cleared.  Returns the
        number of promoted rows; a no-op (returning 0) when nothing is
        pending.
        """
        if not self.n_pending:
            return 0
        imputed = self.impute_batch(self._pending)
        self._pending = None
        self.append(imputed)
        return int(imputed.shape[0])

    def delete(self, indices) -> "OnlineImputationEngine":
        """Remove tuples from the store by (current) store index.

        ``indices`` is one index or an array of indices into the current
        store; duplicates are tolerated.  Surviving tuples are compacted in
        order, so index ``j > i`` becomes ``j - |removed ≤ j|``.  Cached
        model states repair their neighbour orderings, models and
        validation costs incrementally (or fall back per the hybrid
        policy).  Deleting every tuple empties the store (the schema is
        kept; streaming can resume with fresh appends).
        """
        if self._n == 0:
            raise NotFittedError(
                "the engine store is empty; append complete tuples first"
            )
        indices = np.unique(np.atleast_1d(np.asarray(indices, dtype=int)))
        if indices.size == 0:
            return self
        if indices[0] < 0 or indices[-1] >= self._n:
            raise ConfigurationError(
                f"delete indices must lie in [0, {self._n}), got "
                f"[{indices[0]}, {indices[-1]}]"
            )
        retired = self._store.delete(indices)
        self.stats["deletes"] += 1
        self.stats["deleted_rows"] += int(indices.size)
        self.stats["shards_touched"] += int(self._store.shards_of(retired).shape[0])
        if self._n == 0:
            # No state can outlive an empty store; the next append restarts.
            self._version += 1
            self._states.clear()
            self._release_entries(self._journal.clear())
            self._journal.advance_floor(self._version)
            self._store.release(retired)
            return self
        self._record("delete", (indices, retired), owned_slots=retired)
        return self

    def update(self, index: int, row) -> "OnlineImputationEngine":
        """Replace the tuple at store ``index`` with a revised complete tuple."""
        if self._n == 0:
            raise NotFittedError(
                "the engine store is empty; append complete tuples first"
            )
        index = int(index)
        if not 0 <= index < self._n:
            raise ConfigurationError(
                f"update index must lie in [0, {self._n}), got {index}"
            )
        row = np.asarray(row, dtype=float).ravel()
        if row.shape[0] != self._schema.width:
            raise DataError(
                f"updated row has {row.shape[0]} attributes, the engine store "
                f"has {self._schema.width}"
            )
        if np.isnan(row).any():
            raise DataError(
                "update accepts complete tuples only; impute missing cells first"
            )
        old_slot, new_slot = self._store.update(index, row)
        self.stats["updates"] += 1
        self.stats["shards_touched"] += int(
            self._store.shards_of(np.asarray([old_slot, new_slot])).shape[0]
        )
        self._record(
            "update", (index, old_slot, new_slot), owned_slots=[old_slot]
        )
        return self

    def _release_entries(self, entries) -> None:
        """Hand the slots owned by dead journal entries back to the store."""
        if self._store is None:
            return
        for _, op, payload in entries:
            if op == "delete":
                self._store.release(payload[1])
            elif op == "update":
                self._store.release([payload[1]])

    def _record(self, op: str, payload, owned_slots=None) -> None:
        """Journal one mutation and run eager refreshes.

        With no resident model state there is nothing that could ever
        replay the entry (a state built later always starts from a full
        rebuild), so the entry is not retained — and any slots it would
        have kept readable are recycled immediately.
        """
        self._version += 1
        if not self._states:
            self._journal.advance_floor(self._version)
            if owned_slots is not None:
                self._store.release(owned_slots)
            return
        spilled = self._journal.record(self._version, op, payload)
        if spilled:
            self.stats["journal_spills"] += len(spilled)
            self._release_entries(spilled)
        if self.refresh_policy == "eager":
            for state in self._states.values():
                state.sync()

    def _pending_ops(self, version: int) -> Optional[List[Tuple[str, object]]]:
        """Ops recorded after ``version``, or ``None`` if some were spilled."""
        return self._journal.since(version)

    def _prune_journal(self) -> None:
        """Drop journal entries every resident state has already replayed."""
        if not len(self._journal):
            return
        versions = [state.version for state in self._states.values()]
        horizon = min(versions) if versions else self._version
        self._release_entries(self._journal.prune(horizon))

    # ------------------------------------------------------------------ #
    # Model cache
    # ------------------------------------------------------------------ #
    def _get_state(self, target_index: int) -> _AttributeState:
        state = self._states.get(target_index)
        if state is None:
            self.stats["cache_misses"] += 1
            if (
                self.model_cache_size is not None
                and len(self._states) >= self.model_cache_size
            ):
                self._states.popitem(last=False)
                self.stats["cache_evictions"] += 1
                self._prune_journal()
            state = _AttributeState(self, target_index)
            self._states[target_index] = state
        else:
            self.stats["cache_hits"] += 1
            self._states.move_to_end(target_index)
        state.sync()
        return state

    def cached_attributes(self) -> List[int]:
        """Target attributes with a resident model state (LRU order, oldest first)."""
        return list(self._states)

    def memory_stats(self) -> Dict[str, int]:
        """Resident-memory accounting across the store, journal and states.

        ``legacy_state_copy_bytes`` is what the pre-sharding engine would
        keep resident for the same cached states (one feature-submatrix
        plus one target-column copy per state) — the memory the shared
        columnar store eliminates.  ``state_slot_bytes`` is what the views
        cost instead.
        """
        store = self._store
        n = self._n
        width = 0 if self._schema is None else self._schema.width
        state_slot_bytes = 0
        state_order_bytes = 0
        state_model_bytes = 0
        for state in self._states.values():
            if state.cache is None:
                continue
            state_slot_bytes += int(state.cache.slots.nbytes)
            orders = state.cache.order_matrix()
            state_order_bytes += int(orders.nbytes)
            dists = state.cache.order_distances
            if dists is not None:
                state_order_bytes += int(dists.nbytes)
            for array in (
                state.parameters, state.all_parameters, state.costs,
                state.global_costs, state.owners, state.counts,
            ):
                if array is not None:
                    state_model_bytes += int(np.asarray(array).nbytes)
            if state.models is not None:
                state_model_bytes += int(state.models.parameters.nbytes)
        n_states = sum(
            1 for state in self._states.values() if state.cache is not None
        )
        return {
            "store_bytes": 0 if store is None else store.nbytes,
            "n_shards": 0 if store is None else store.n_shards,
            "shard_capacity": self.shard_capacity,
            "pending_slots": 0 if store is None else store.n_pending,
            "free_slots": 0 if store is None else store.n_free,
            "recycled_slots": 0 if store is None else store.recycled_slots,
            "journal_entries": len(self._journal),
            "journal_capacity": self.journal_capacity,
            "journal_bytes": self._journal.nbytes,
            "state_slot_bytes": state_slot_bytes,
            "state_order_bytes": state_order_bytes,
            "state_model_bytes": state_model_bytes,
            "legacy_state_copy_bytes": int(n_states * n * width * 8),
        }

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def impute_batch(
        self,
        queries: Union[np.ndarray, Relation],
        *,
        collect_provenance: bool = False,
    ) -> Union[np.ndarray, Tuple[np.ndarray, List[Dict[str, object]]]]:
        """Impute every missing cell of a batch of query tuples.

        ``queries`` is an array of shape ``(q, m)`` (or one tuple of length
        ``m``) with NaN marking the missing cells; a :class:`Relation` is
        accepted too.  Returns a float array of shape ``(q, m)`` with every
        missing cell filled — equal (to ``rtol = 1e-9``) to what a cold
        ``IIMImputer`` refit over the engine's store would produce.

        With ``collect_provenance=True`` the return value is a pair
        ``(values, provenance)`` where ``provenance`` holds one dict per
        imputed cell: row/attribute addressing, the imputed value, the
        method and combiner, the neighbour store indices with their
        distances, per-neighbour learning sizes ℓ, the combiner weights,
        and a ``confidence`` score (the largest normalised weight).
        Provenance capture always runs the vectorized kernels — the loop
        backend produces values equal at rtol 1e-9, so the numbers are
        unchanged; only the weight capture needs the batched combiner.
        """
        if isinstance(queries, Relation):
            values = queries.raw.copy()
        else:
            values = np.atleast_2d(np.asarray(queries, dtype=float)).copy()
        if self._n == 0:
            raise NotFittedError(
                "the engine store is empty; append complete tuples first"
            )
        if values.ndim != 2 or values.shape[1] != self._schema.width:
            raise DataError(
                f"queries must have {self._schema.width} attributes, got shape "
                f"{values.shape}"
            )
        mask = np.isnan(values)
        self.stats["impute_batches"] += 1
        provenance: List[Dict[str, object]] = []
        if not mask.any():
            return (values, provenance) if collect_provenance else values
        if self._schema.width == 1:
            raise DataError("cannot impute a relation with a single attribute")

        # Query features are pre-filled with store column means, exactly as
        # the batch orchestration of BaseImputer does (gathered per column;
        # the store matrix is never materialised on the serve path).
        width = self._schema.width
        column_means = np.array(
            [self._store.column(attr).mean() for attr in range(width)]
        )
        filled = np.where(mask, column_means[None, :], values)

        imputer = self.imputer
        k = min(imputer.k, self._n)
        backend = resolve_backend(imputer.backend)
        if collect_provenance:
            backend = "vectorized"
        for target_index in np.flatnonzero(mask.any(axis=0)):
            # Syncing the state may replay pending mutations — those get
            # their own phases; the kernel span covers only the search +
            # candidate combination below.
            state = self._get_state(int(target_index))
            rows = np.flatnonzero(mask[:, target_index])
            query_block = filled[np.ix_(rows, state.feature_indices)]
            with engine_phase("impute_kernel"):
                if backend == "loop":
                    # The reference path materialises the feature matrix and
                    # drives the per-row loop kernel unchanged.
                    features = np.asarray(state.cache.data)
                    searcher = BruteForceNeighbors(
                        metric=imputer.metric, backend=backend
                    ).fit(features)
                    values[rows, target_index] = impute_with_individual_models(
                        query_block,
                        state.models,
                        features,
                        state.target_column(),
                        k,
                        combination=imputer.combination,
                        searcher=searcher,
                        backend=backend,
                    )
                else:
                    # Columnar serve: per-shard candidate selection + exact
                    # cross-shard merge, candidates straight off the model
                    # stack — the (n, m-1) feature matrix is never built.
                    searcher = ShardedNeighbors(
                        state.cache.data, metric=imputer.metric
                    )
                    distances, neighbor_indices = searcher.kneighbors(
                        query_block, k
                    )
                    designs = batched_design(query_block)
                    candidates = np.einsum(
                        "qp,qkp->qk",
                        designs,
                        state.models.parameters[neighbor_indices],
                    )
                    combined, weights = get_batch_combiner(
                        imputer.combination
                    )(candidates, distances)
                    values[rows, target_index] = combined
                    if collect_provenance:
                        learning = np.asarray(
                            state.models.learning_neighbors
                        )[neighbor_indices]
                        attribute = self._schema.attributes[int(target_index)]
                        for position, row in enumerate(rows):
                            cell_weights = np.asarray(
                                weights[position], dtype=float
                            )
                            total = float(cell_weights.sum())
                            confidence = (
                                float(cell_weights.max() / total)
                                if total > 0
                                else 1.0 / max(int(k), 1)
                            )
                            provenance.append(
                                {
                                    "row": int(row),
                                    "attribute": attribute,
                                    "attribute_index": int(target_index),
                                    "value": float(combined[position]),
                                    "method": imputer.name,
                                    "combination": imputer.combination,
                                    "k": int(k),
                                    "neighbors": [
                                        int(n)
                                        for n in neighbor_indices[position]
                                    ],
                                    "distances": [
                                        float(d) for d in distances[position]
                                    ],
                                    "weights": [
                                        float(w) for w in cell_weights
                                    ],
                                    "learning_neighbors": [
                                        int(l) for l in learning[position]
                                    ],
                                    "confidence": confidence,
                                }
                            )
            self.stats["imputed_cells"] += int(rows.shape[0])
            observe_imputed_cells(int(rows.shape[0]), kind="online")
        return (values, provenance) if collect_provenance else values

    def impute_relation(self, relation: Relation) -> Relation:
        """Convenience wrapper returning a :class:`Relation`."""
        return relation.with_values(self.impute_batch(relation))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def snapshot(
        self,
        path: Union[str, Path],
        *,
        manifest_extra: Optional[Dict[str, object]] = None,
        injector=None,
    ) -> Path:
        """Persist the engine (store, index, models, costs) as an artifact.

        Pending lazy mutations are folded into every resident state first,
        so the artifact always holds fully-synced states.  The artifact
        directory holds the manifest + arrays files (written atomically,
        see :func:`~repro.online.artifacts.write_artifact`); :meth:`load`
        restores an engine whose subsequent imputations are bit-identical
        to this one's.  ``manifest_extra`` merges extra top-level manifest
        fields (the session layer records its WAL position there);
        ``injector`` threads a fault plan through the artifact writer.
        """
        if self._schema is None:
            raise NotFittedError("cannot snapshot an engine with no schema")
        if self._n:
            for state in self._states.values():
                state.sync()
            self._prune_journal()
        manifest: Dict[str, object] = {
            "engine": {
                "model_cache_size": self.model_cache_size,
                "refresh_policy": self.refresh_policy,
                "incremental_fallback_fraction": self.incremental_fallback_fraction,
                "shard_capacity": self.shard_capacity,
                "journal_capacity": self.journal_capacity,
                "delete_cost_mode": self.delete_cost_mode,
            },
            "store": {
                "shard_capacity": self.shard_capacity,
                "n_rows": self._n,
                "n_shards": 0 if self._store is None else self._store.n_shards,
                "n_pending": self.n_pending,
            },
            "lifecycle": {"version": self._version},
            "imputer": {
                "class": type(self.imputer).__name__,
                "params": self.imputer.get_params(),
            },
            "schema": list(self._schema.attributes),
            "n_rows": self._n,
            "stats": dict(self.stats),
            "states": [],
        }
        arrays: Dict[str, np.ndarray] = {
            "store": self._store_matrix() if self._n else np.empty((0, 0))
        }
        if self.n_pending:
            arrays["pending"] = np.array(self._pending, dtype=float)
        for target_index, state in self._states.items():
            if state.cache is None:
                continue
            manifest["states"].append(state.state_metadata())
            for key, value in state.state_arrays().items():
                arrays[f"state{target_index}_{key}"] = value
        if manifest_extra:
            manifest.update(manifest_extra)
        return write_artifact(path, "engine", manifest, arrays, injector=injector)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "OnlineImputationEngine":
        """Restore an engine saved with :meth:`snapshot`.

        Reads manifest version 3 natively and migrates version-2 engine
        artifacts (which predate the sharded columnar store) by adopting
        the process-default shard/journal knobs; corrupt shard metadata in
        a version-3 manifest is rejected with a re-create hint.
        """
        manifest, arrays = read_artifact(path, expected_kind="engine")
        imputer_info = manifest.get("imputer") or {}
        if imputer_info.get("class") != IIMImputer.__name__:
            raise ConfigurationError(
                f"engine artifact stores imputer class {imputer_info.get('class')!r}, "
                f"expected {IIMImputer.__name__!r}"
            )
        engine_info = manifest.get("engine") or {}
        manifest_version = int(manifest.get("version", 0))
        if manifest_version >= 3:
            store_info = manifest.get("store")
            if not isinstance(store_info, dict):
                raise ConfigurationError(
                    f"engine artifact at {path} is missing its store section "
                    f"(corrupt shard metadata); re-create the snapshot"
                )
            shard_capacity = store_info.get("shard_capacity")
            if (
                isinstance(shard_capacity, bool)
                or not isinstance(shard_capacity, int)
                or shard_capacity <= 0
            ):
                raise ConfigurationError(
                    f"engine artifact at {path} carries corrupt shard metadata "
                    f"(shard_capacity={shard_capacity!r}); re-create the snapshot"
                )
            if int(store_info.get("n_rows", -1)) != int(manifest.get("n_rows", 0)):
                raise ConfigurationError(
                    f"engine artifact at {path} carries corrupt shard metadata "
                    f"(store rows disagree with the manifest); re-create the "
                    f"snapshot"
                )
        else:
            # v2 migration: pre-sharding snapshots carry no store section;
            # adopt the process-default knobs for the rebuilt store.
            shard_capacity = engine_info.get("shard_capacity", "default")
        engine = cls(
            IIMImputer(**(imputer_info.get("params") or {})),
            model_cache_size=engine_info.get("model_cache_size"),
            refresh_policy=engine_info.get("refresh_policy"),
            incremental_fallback_fraction=engine_info.get(
                "incremental_fallback_fraction"
            ),
            shard_capacity=shard_capacity,
            journal_capacity=engine_info.get("journal_capacity", "default"),
            delete_cost_mode=engine_info.get("delete_cost_mode", "default"),
        )
        schema = manifest.get("schema") or []
        store = arrays["store"]
        n_rows = int(manifest.get("n_rows", 0))
        if store.shape[0] != n_rows:
            raise ConfigurationError(
                f"engine artifact store has {store.shape[0]} rows, manifest "
                f"promises {n_rows}"
            )
        pending = arrays.get("pending")
        if n_rows or (pending is not None and pending.shape[0]):
            engine._schema = Schema([str(a) for a in schema])
        if n_rows:
            engine._store = ColumnarTupleStore(
                engine._schema.width, shard_capacity=engine.shard_capacity
            )
            engine._store.append(np.array(store, dtype=float))
        if pending is not None and pending.shape[0]:
            engine._pending = np.array(pending, dtype=float)
        lifecycle = manifest.get("lifecycle") or {}
        engine._version = int(lifecycle.get("version", 0))
        engine._journal.advance_floor(engine._version)
        stats = manifest.get("stats") or {}
        for key in engine.stats:
            if key in stats:
                engine.stats[key] = int(stats[key])
        for metadata in manifest.get("states") or []:
            target_index = int(metadata["target_index"])
            prefix = f"state{target_index}_"
            state_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            engine._states[target_index] = _AttributeState.restore(
                engine, metadata, state_arrays
            )
        return engine

    def __repr__(self) -> str:
        width = "?" if self._schema is None else self._schema.width
        return (
            f"OnlineImputationEngine(n={self._n}, m={width}, "
            f"cached_attributes={list(self._states)}, "
            f"refresh={self.refresh_policy!r})"
        )
