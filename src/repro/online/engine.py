"""The online imputation engine: streaming appends served from warm models.

The batch :class:`~repro.core.iim.IIMImputer` relearns everything from
scratch on every ``fit``; this module keeps a *long-lived* engine instead:

* :meth:`OnlineImputationEngine.append` adds complete tuples to the
  engine's store.  Every cached per-attribute model state is maintained
  **incrementally**: the neighbour index absorbs the new tuples by a sorted
  merge (:meth:`~repro.neighbors.NeighborOrderCache.append`), only the
  tuples whose neighbour prefix actually changed have their candidate
  models relearned (through the batched Proposition 3 kernel
  :func:`~repro.core.learning.learn_candidate_models_for_rows`), and only
  the validation-cost rows touched by the append are rebuilt.
* :meth:`OnlineImputationEngine.impute_batch` serves imputation requests in
  batches from an LRU cache of per-attribute model states — after any
  sequence of appends the answers match a cold ``IIMImputer`` refit over the
  same tuples to ``rtol = 1e-9`` (asserted across fixed/adaptive learning
  and all three combiners in the test suite).
* :meth:`OnlineImputationEngine.snapshot` persists the full engine state
  (store, neighbour orderings, candidate models, validation costs) as an
  ``.npz`` + JSON-manifest artifact; :meth:`OnlineImputationEngine.load`
  restores an engine whose subsequent imputations are bit-identical.

Exactness of the incremental maintenance
----------------------------------------
Adaptive learning (Algorithm 3) gives every complete tuple ``i`` a cost row
``cost[i][ℓ]`` summed over the validation tuples ``j`` that count ``i``
among their ``k`` nearest neighbours.  An append can change that row in
exactly three ways: (1) ``i``'s own candidate models changed because a new
tuple entered its learning prefix, (2) some validator ``j`` gained or lost
``i`` in its top-``k``, or (3) a brand-new tuple validates ``i``.  The
engine tracks all three through the index's first-changed-position report
and rebuilds exactly those rows — with the same scatter-add kernel the cold
path uses, so untouched rows keep values a cold run would reproduce.  The
``ℓ = n`` global candidate of Proposition 2 changes on *every* append; its
model (one ridge fit) and cost column are recomputed each refresh.

Structural changes — the candidate ``ℓ`` grid still growing towards
``max_learning_neighbors``, or the validation ``k`` still clamped by a small
``n`` — fall back to a full relearn of the affected attribute state.  A
streaming deployment therefore sets ``max_learning_neighbors`` so the
candidate grid stabilises once the store outgrows it (the warmup).
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .._validation import as_float_matrix
from ..config import (
    resolve_online_model_cache_size,
    resolve_online_refresh_policy,
)
from ..core.adaptive import adaptive_learning, scatter_validation_costs
from ..core.iim import IIMImputer
from ..core.imputation import impute_with_individual_models
from ..core.learning import (
    IndividualModels,
    candidate_ell_values,
    learn_candidate_models_for_rows,
    learn_individual_models,
)
from ..data.relation import Relation, Schema
from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..neighbors import BruteForceNeighbors, NeighborOrderCache
from ..neighbors.brute import drop_self_rows
from ..regression import RidgeRegression, batched_design
from .artifacts import read_artifact, write_artifact

__all__ = ["OnlineImputationEngine"]


class _AttributeState:
    """Models + incremental maintenance state for one incomplete attribute.

    One state exists per target attribute the engine has served; it owns the
    attribute's neighbour-order cache (over the complete attributes ``F``),
    the per-tuple models, and — for adaptive learning — the full candidate
    parameter stack and validation-cost matrix needed to refresh a subset of
    tuples without relearning the rest.
    """

    def __init__(self, engine: "OnlineImputationEngine", target_index: int):
        self.engine = engine
        self.target_index = int(target_index)
        width = engine.n_attributes
        self.feature_indices = [i for i in range(width) if i != self.target_index]

        self.cache: Optional[NeighborOrderCache] = None
        self.n_synced = 0
        self.signature: Optional[Tuple] = None
        self.models: Optional[IndividualModels] = None

        # Adaptive-learning state (None for fixed-ℓ learning).
        self.candidates: Optional[np.ndarray] = None  # stepped ℓ grid
        self.all_parameters: Optional[np.ndarray] = None  # (L, n, p)
        self.costs: Optional[np.ndarray] = None  # (n, L)
        self.global_costs: Optional[np.ndarray] = None  # (n,)
        self.global_params: Optional[np.ndarray] = None  # (p,)
        self.global_active = False
        self.owners: Optional[np.ndarray] = None  # (n, k_val)
        self.counts: Optional[np.ndarray] = None  # (n,)

        # Fixed-learning state.
        self.parameters: Optional[np.ndarray] = None  # (n, p)

    # ------------------------------------------------------------------ #
    @property
    def _imputer(self) -> IIMImputer:
        return self.engine.imputer

    @property
    def _adaptive(self) -> bool:
        return self._imputer.learning == "adaptive"

    def _validation_neighbors(self) -> int:
        imputer = self._imputer
        return imputer.validation_neighbors or imputer.k

    def _requested_cache_length(self) -> Optional[int]:
        """The ordering cap, chosen so every refresh prefix stays available."""
        imputer = self._imputer
        if not self._adaptive:
            return imputer.learning_neighbors
        if imputer.max_learning_neighbors is None:
            return None
        return max(imputer.max_learning_neighbors, self._validation_neighbors() + 1)

    def _signature(self, n: int) -> Tuple:
        """Structural fingerprint; a change forces a full relearn.

        Captures everything that reshapes the state's arrays: the stepped
        candidate grid (still growing while ``n < max_learning_neighbors``),
        the effective validation ``k`` (clamped by ``n - 1`` during warmup)
        and whether the global ``ℓ = n`` candidate participates.
        """
        imputer = self._imputer
        if not self._adaptive:
            return ("fixed", min(imputer.learning_neighbors, n))
        candidates = candidate_ell_values(
            n, stepping=imputer.stepping, max_ell=imputer.max_learning_neighbors
        )
        k_val = min(self._validation_neighbors(), n - 1) if n > 1 else 0
        global_active = (
            bool(imputer.include_global) and n > 1 and int(candidates.max()) < n
        )
        return ("adaptive", tuple(int(c) for c in candidates), k_val, global_active)

    # ------------------------------------------------------------------ #
    def sync(self) -> None:
        """Bring the state up to date with the engine's store."""
        store = self.engine._store_matrix()
        n = store.shape[0]
        if self.cache is not None and n == self.n_synced:
            return
        features = store[:, self.feature_indices]
        target = store[:, self.target_index]
        signature = self._signature(n)
        if self.cache is None or signature != self.signature:
            self._full_build(features, target, signature)
            self.engine.stats["full_refreshes"] += 1
            self.engine.stats["rows_refreshed"] += n
        else:
            refreshed = self._incremental_refresh(features, target)
            self.engine.stats["incremental_refreshes"] += 1
            self.engine.stats["rows_refreshed"] += refreshed
        self.signature = signature
        self.n_synced = n

    # ------------------------------------------------------------------ #
    def _full_build(self, features: np.ndarray, target: np.ndarray, signature) -> None:
        imputer = self._imputer
        n = features.shape[0]
        self.cache = NeighborOrderCache(
            features,
            metric=imputer.metric,
            include_self=True,
            max_length=self._requested_cache_length(),
            keep_distances=True,
        )
        if not self._adaptive:
            ell = signature[1]
            self.models = learn_individual_models(
                features,
                target,
                ell,
                alpha=imputer.alpha,
                metric=imputer.metric,
                order_cache=self.cache,
                backend="vectorized",
            )
            self.parameters = self.models.parameters
            return

        _, stepped, k_val, global_active = signature
        result = adaptive_learning(
            features,
            target,
            validation_neighbors=self._validation_neighbors(),
            stepping=imputer.stepping,
            max_ell=imputer.max_learning_neighbors,
            alpha=imputer.alpha,
            metric=imputer.metric,
            incremental=imputer.incremental,
            include_global=imputer.include_global,
            backend="vectorized",
            order_cache=self.cache,
            keep_candidate_models=True,
        )
        n_stepped = len(stepped)
        self.candidates = np.asarray(stepped, dtype=int)
        self.global_active = global_active
        self.all_parameters = result.all_parameters[:n_stepped].copy()
        if global_active:
            self.global_params = result.all_parameters[n_stepped, 0].copy()
            self.global_costs = result.costs[:, n_stepped].copy()
        else:
            self.global_params = None
            self.global_costs = np.zeros(n)
        self.costs = result.costs[:, :n_stepped].copy()
        self.counts = result.validation_counts.astype(int)
        if k_val > 0:
            orders = self.cache.order_matrix()[:, : k_val + 1]
            self.owners = drop_self_rows(orders, np.arange(n))[:, :k_val]
        else:
            self.owners = np.empty((n, 0), dtype=int)
        self.models = result.models

    # ------------------------------------------------------------------ #
    def _incremental_refresh(self, features: np.ndarray, target: np.ndarray) -> int:
        """Fold appended tuples into the state; returns #tuples relearned."""
        imputer = self._imputer
        n_old = self.n_synced
        n = features.shape[0]
        new_rows = np.arange(n_old, n)
        append_result = self.cache.append(features[n_old:])

        if not self._adaptive:
            ell = self.signature[1]
            refresh_rows = np.concatenate(
                [append_result.changed_rows(ell), new_rows]
            )
            orders = self.cache.order_matrix()
            refreshed = learn_candidate_models_for_rows(
                features,
                target,
                [ell],
                orders[refresh_rows],
                alpha=imputer.alpha,
                incremental=True,
            )[0]
            grown = np.empty((n, self.parameters.shape[1]))
            grown[:n_old] = self.parameters
            grown[refresh_rows] = refreshed
            self.parameters = grown
            self.models = IndividualModels(grown, np.full(n, ell, dtype=int))
            return int(refresh_rows.shape[0])

        _, stepped, k_val, global_active = self.signature
        candidates = self.candidates
        max_candidate = int(candidates.max())
        n_stepped = candidates.shape[0]
        p = self.all_parameters.shape[2]
        orders = self.cache.order_matrix()

        # (1) Relearn candidate models for tuples whose learning prefix
        #     changed, plus the appended tuples.
        model_rows = np.concatenate(
            [append_result.changed_rows(max_candidate), new_rows]
        )
        refreshed = learn_candidate_models_for_rows(
            features,
            target,
            candidates,
            orders[model_rows],
            alpha=imputer.alpha,
            incremental=imputer.incremental,
        )
        grown = np.empty((n_stepped, n, p))
        grown[:, :n_old] = self.all_parameters
        grown[:, model_rows] = refreshed
        self.all_parameters = grown

        # (2) The global ℓ = n candidate changes on every append.
        if global_active:
            self.global_params = (
                RidgeRegression(alpha=imputer.alpha).fit(features, target).coefficients
            )

        # (3) Validation bookkeeping: new owner matrix, dirty cost rows.
        if k_val > 0:
            owners_new = drop_self_rows(
                orders[:, : k_val + 1], np.arange(n)
            )[:, :k_val]
        else:
            owners_new = np.empty((n, 0), dtype=int)

        dirty = np.zeros(n, dtype=bool)
        dirty[model_rows] = True
        if k_val > 0:
            validators_changed = append_result.changed_rows(k_val + 1)
            if validators_changed.size:
                old_rows = self.owners[validators_changed]
                new_rows_owners = owners_new[validators_changed]
                moved = old_rows != new_rows_owners
                dirty[old_rows[moved]] = True
                dirty[new_rows_owners[moved]] = True
            dirty[owners_new[n_old:].ravel()] = True
        dirty_rows = np.flatnonzero(dirty)

        grown_costs = np.zeros((n, n_stepped))
        grown_costs[:n_old] = self.costs
        self.costs = grown_costs
        designs = batched_design(features)
        if k_val > 0 and dirty_rows.size:
            pair_j, pair_pos = np.nonzero(np.isin(owners_new, dirty_rows))
            pair_i = owners_new[pair_j, pair_pos]
            self.costs[dirty_rows] = 0.0
            # The cold validation kernel, restricted to the dirty pairs —
            # same einsum, same bincount, same accumulation order.
            scatter_validation_costs(
                self.costs, pair_j, pair_i, designs, target, self.all_parameters
            )

        # (4) The global cost column is rebuilt wholesale (its model moved).
        if global_active and k_val > 0:
            residuals = (target - designs @ self.global_params) ** 2
            self.global_costs = np.bincount(
                owners_new.ravel(),
                weights=residuals[np.repeat(np.arange(n), k_val)],
                minlength=n,
            )
        else:
            self.global_costs = np.zeros(n)

        self.counts = (
            np.bincount(owners_new.ravel(), minlength=n).astype(int)
            if k_val > 0
            else np.zeros(n, dtype=int)
        )
        self.owners = owners_new
        self._select(n)
        return int(model_rows.shape[0])

    def _select(self, n: int) -> None:
        """Re-run the per-tuple argmin of Algorithm 3 over the cost matrix."""
        n_stepped = self.candidates.shape[0]
        if self.global_active:
            full_costs = np.hstack([self.costs, self.global_costs[:, None]])
            full_candidates = np.concatenate([self.candidates, [n]])
        else:
            full_costs = self.costs
            full_candidates = self.candidates
        chosen = np.argmin(full_costs, axis=1)
        if (self.counts == 0).any():
            global_best = int(np.argmin(full_costs.sum(axis=0)))
            chosen = np.where(self.counts == 0, global_best, chosen)
        chosen_ell = full_candidates[chosen]
        selected = np.empty((n, self.all_parameters.shape[2]))
        stepped_mask = chosen < n_stepped
        rows = np.arange(n)
        selected[stepped_mask] = self.all_parameters[
            chosen[stepped_mask], rows[stepped_mask]
        ]
        if (~stepped_mask).any():
            selected[~stepped_mask] = self.global_params
        self.models = IndividualModels(selected, chosen_ell)

    # ------------------------------------------------------------------ #
    # Artifact serialization
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {
            "orders": self.cache.order_matrix(),
            "order_dists": self.cache.order_distances,
            "models_parameters": self.models.parameters,
            "models_ell": self.models.learning_neighbors,
        }
        if self._adaptive:
            arrays.update(
                candidates=self.candidates,
                all_parameters=self.all_parameters,
                costs=self.costs,
                global_costs=self.global_costs,
                owners=self.owners,
                counts=self.counts,
            )
            if self.global_params is not None:
                arrays["global_params"] = self.global_params
        else:
            arrays["parameters"] = self.parameters
        return arrays

    def state_metadata(self) -> Dict[str, object]:
        return {
            "target_index": self.target_index,
            "n_synced": self.n_synced,
            "signature": list(self.signature),
            "global_active": self.global_active,
        }

    @classmethod
    def restore(
        cls,
        engine: "OnlineImputationEngine",
        metadata: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "_AttributeState":
        state = cls(engine, int(metadata["target_index"]))
        state.n_synced = int(metadata["n_synced"])
        signature = metadata["signature"]
        if signature[0] == "adaptive":
            state.signature = (
                "adaptive",
                tuple(int(c) for c in signature[1]),
                int(signature[2]),
                bool(signature[3]),
            )
        else:
            state.signature = ("fixed", int(signature[1]))
        features = engine._store_matrix()[: state.n_synced, state.feature_indices]
        state.cache = NeighborOrderCache(
            features,
            metric=engine.imputer.metric,
            include_self=True,
            max_length=state._requested_cache_length(),
            keep_distances=True,
        )
        state.cache.restore_matrix(arrays["orders"], arrays["order_dists"])
        state.models = IndividualModels(
            arrays["models_parameters"], arrays["models_ell"]
        )
        if state._adaptive:
            state.candidates = arrays["candidates"].astype(int)
            state.all_parameters = arrays["all_parameters"]
            state.costs = arrays["costs"]
            state.global_costs = arrays["global_costs"]
            state.owners = arrays["owners"].astype(int)
            state.counts = arrays["counts"].astype(int)
            state.global_active = bool(metadata["global_active"])
            state.global_params = arrays.get("global_params")
        else:
            state.parameters = arrays["parameters"]
        return state


class OnlineImputationEngine:
    """A long-lived IIM service over a growing store of complete tuples.

    Parameters
    ----------
    imputer:
        An (unfitted) :class:`~repro.core.iim.IIMImputer` carrying the
        method configuration; alternatively pass its constructor arguments
        as keyword arguments and the engine builds one.
    model_cache_size:
        Maximum number of per-attribute model states kept resident
        (LRU-evicted beyond that; ``None`` = unbounded).  Defaults to the
        process-wide knob of :mod:`repro.config`.
    refresh_policy:
        ``"lazy"`` (default knob) folds pending appends into a model state
        on the next imputation touching its attribute, so bursts of appends
        amortise into one refresh; ``"eager"`` refreshes every cached state
        inside :meth:`append`.

    Examples
    --------
    >>> engine = OnlineImputationEngine(k=5, learning="fixed", learning_neighbors=3)
    >>> engine.append(complete_rows)                    # doctest: +SKIP
    >>> filled = engine.impute_batch(rows_with_nans)    # doctest: +SKIP
    >>> engine.snapshot("artifacts/engine")             # doctest: +SKIP
    """

    def __init__(
        self,
        imputer: Optional[IIMImputer] = None,
        *,
        model_cache_size="default",
        refresh_policy: Optional[str] = None,
        **iim_params,
    ):
        if imputer is None:
            imputer = IIMImputer(**iim_params)
        elif iim_params:
            raise ConfigurationError(
                "pass either an imputer instance or IIM keyword arguments, not both"
            )
        if not isinstance(imputer, IIMImputer):
            raise ConfigurationError(
                f"OnlineImputationEngine wraps an IIMImputer, got {type(imputer).__name__}"
            )
        self.imputer = imputer
        self.model_cache_size = resolve_online_model_cache_size(model_cache_size)
        self.refresh_policy = resolve_online_refresh_policy(refresh_policy)

        self._schema: Optional[Schema] = None
        self._buffer: Optional[np.ndarray] = None
        self._n = 0
        self._states: "OrderedDict[int, _AttributeState]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "appends": 0,
            "appended_rows": 0,
            "impute_batches": 0,
            "imputed_cells": 0,
            "full_refreshes": 0,
            "incremental_refreshes": 0,
            "rows_refreshed": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
        }

    # ------------------------------------------------------------------ #
    # Store
    # ------------------------------------------------------------------ #
    @property
    def n_tuples(self) -> int:
        """Number of complete tuples currently stored."""
        return self._n

    @property
    def n_attributes(self) -> int:
        """Schema width ``m`` (raises before the first append)."""
        if self._schema is None:
            raise NotFittedError("the engine has no schema yet; append tuples first")
        return self._schema.width

    @property
    def schema(self) -> Schema:
        """The engine's schema (raises before the first append)."""
        if self._schema is None:
            raise NotFittedError("the engine has no schema yet; append tuples first")
        return self._schema

    def _store_matrix(self) -> np.ndarray:
        if self._n == 0:
            raise NotFittedError(
                "the engine store is empty; append complete tuples first"
            )
        return self._buffer[: self._n]

    def store_relation(self, name: str = "") -> Relation:
        """The current store as a :class:`Relation` (for cold comparisons)."""
        return Relation(self._store_matrix().copy(), self._schema, name=name)

    @classmethod
    def from_relation(
        cls, relation: Relation, *, model_cache_size="default",
        refresh_policy: Optional[str] = None, **iim_params,
    ) -> "OnlineImputationEngine":
        """Build an engine seeded with the complete part of ``relation``."""
        engine = cls(
            model_cache_size=model_cache_size,
            refresh_policy=refresh_policy,
            **iim_params,
        )
        engine.append(relation.complete_part())
        return engine

    def append(self, rows: Union[np.ndarray, Relation]) -> "OnlineImputationEngine":
        """Add complete tuples to the store.

        ``rows`` may be an array of shape ``(b, m)`` (or a single tuple of
        length ``m``) or a :class:`Relation`; tuples containing missing
        cells are rejected — impute them first, then append the result.

        Under the ``"eager"`` refresh policy every cached model state is
        updated before the call returns; under ``"lazy"`` the work is
        deferred (and batched) until the next imputation.
        """
        if isinstance(rows, Relation):
            if self._schema is not None and rows.schema.attributes != self._schema.attributes:
                raise DataError(
                    "appended relation schema does not match the engine schema"
                )
            schema = rows.schema
            values = rows.raw.copy()
        else:
            values = as_float_matrix(
                np.atleast_2d(np.asarray(rows, dtype=float)), name="rows",
                allow_nan=True,
            )
            schema = None
        if np.isnan(values).any():
            raise DataError(
                "append accepts complete tuples only; impute missing cells first"
            )
        if self._schema is None:
            self._schema = schema or Schema.default(values.shape[1])
        elif values.shape[1] != self._schema.width:
            raise DataError(
                f"appended rows have {values.shape[1]} attributes, the engine "
                f"store has {self._schema.width}"
            )

        b = values.shape[0]
        if b:
            self._grow(b)
            self._buffer[self._n : self._n + b] = values
            self._n += b
        self.stats["appends"] += 1
        self.stats["appended_rows"] += b
        if self.refresh_policy == "eager" and b:
            for state in self._states.values():
                state.sync()
        return self

    def _grow(self, extra: int) -> None:
        width = self._schema.width
        if self._buffer is None:
            capacity = max(2 * extra, 64)
            self._buffer = np.empty((capacity, width))
            return
        needed = self._n + extra
        if needed <= self._buffer.shape[0]:
            return
        capacity = max(needed, 2 * self._buffer.shape[0])
        grown = np.empty((capacity, width))
        grown[: self._n] = self._buffer[: self._n]
        self._buffer = grown

    # ------------------------------------------------------------------ #
    # Model cache
    # ------------------------------------------------------------------ #
    def _get_state(self, target_index: int) -> _AttributeState:
        state = self._states.get(target_index)
        if state is None:
            self.stats["cache_misses"] += 1
            if (
                self.model_cache_size is not None
                and len(self._states) >= self.model_cache_size
            ):
                self._states.popitem(last=False)
                self.stats["cache_evictions"] += 1
            state = _AttributeState(self, target_index)
            self._states[target_index] = state
        else:
            self.stats["cache_hits"] += 1
            self._states.move_to_end(target_index)
        state.sync()
        return state

    def cached_attributes(self) -> List[int]:
        """Target attributes with a resident model state (LRU order, oldest first)."""
        return list(self._states)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def impute_batch(self, queries: Union[np.ndarray, Relation]) -> np.ndarray:
        """Impute every missing cell of a batch of query tuples.

        ``queries`` is an array of shape ``(q, m)`` (or one tuple of length
        ``m``) with NaN marking the missing cells; a :class:`Relation` is
        accepted too.  Returns a float array of shape ``(q, m)`` with every
        missing cell filled — equal (to ``rtol = 1e-9``) to what a cold
        ``IIMImputer`` refit over the engine's store would produce.
        """
        if isinstance(queries, Relation):
            values = queries.raw.copy()
        else:
            values = np.atleast_2d(np.asarray(queries, dtype=float)).copy()
        store = self._store_matrix()
        if values.ndim != 2 or values.shape[1] != self._schema.width:
            raise DataError(
                f"queries must have {self._schema.width} attributes, got shape "
                f"{values.shape}"
            )
        mask = np.isnan(values)
        self.stats["impute_batches"] += 1
        if not mask.any():
            return values
        if self._schema.width == 1:
            raise DataError("cannot impute a relation with a single attribute")

        # Query features are pre-filled with store column means, exactly as
        # the batch orchestration of BaseImputer does.
        column_means = store.mean(axis=0)
        filled = np.where(mask, column_means[None, :], values)

        imputer = self.imputer
        k = min(imputer.k, store.shape[0])
        for target_index in np.flatnonzero(mask.any(axis=0)):
            state = self._get_state(int(target_index))
            rows = np.flatnonzero(mask[:, target_index])
            query_block = filled[np.ix_(rows, state.feature_indices)]
            features = store[:, state.feature_indices]
            searcher = BruteForceNeighbors(
                metric=imputer.metric, backend=imputer.backend
            ).fit(features)
            values[rows, target_index] = impute_with_individual_models(
                query_block,
                state.models,
                features,
                store[:, target_index],
                k,
                combination=imputer.combination,
                searcher=searcher,
                backend=imputer.backend,
            )
            self.stats["imputed_cells"] += int(rows.shape[0])
        return values

    def impute_relation(self, relation: Relation) -> Relation:
        """Convenience wrapper returning a :class:`Relation`."""
        return relation.with_values(self.impute_batch(relation))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def snapshot(self, path: Union[str, Path]) -> Path:
        """Persist the engine (store, index, models, costs) as an artifact.

        The artifact directory holds ``arrays.npz`` + ``manifest.json``;
        :meth:`load` restores an engine whose subsequent imputations are
        bit-identical to this one's.
        """
        if self._schema is None:
            raise NotFittedError("cannot snapshot an engine with no schema")
        manifest: Dict[str, object] = {
            "engine": {
                "model_cache_size": self.model_cache_size,
                "refresh_policy": self.refresh_policy,
            },
            "imputer": {
                "class": type(self.imputer).__name__,
                "params": self.imputer.get_params(),
            },
            "schema": list(self._schema.attributes),
            "n_rows": self._n,
            "stats": dict(self.stats),
            "states": [],
        }
        arrays: Dict[str, np.ndarray] = {
            "store": self._store_matrix().copy() if self._n else np.empty((0, 0))
        }
        for target_index, state in self._states.items():
            if state.cache is None:
                continue
            manifest["states"].append(state.state_metadata())
            for key, value in state.state_arrays().items():
                arrays[f"state{target_index}_{key}"] = value
        return write_artifact(path, "engine", manifest, arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "OnlineImputationEngine":
        """Restore an engine saved with :meth:`snapshot`."""
        manifest, arrays = read_artifact(path, expected_kind="engine")
        imputer_info = manifest.get("imputer") or {}
        if imputer_info.get("class") != IIMImputer.__name__:
            raise ConfigurationError(
                f"engine artifact stores imputer class {imputer_info.get('class')!r}, "
                f"expected {IIMImputer.__name__!r}"
            )
        engine_info = manifest.get("engine") or {}
        engine = cls(
            IIMImputer(**(imputer_info.get("params") or {})),
            model_cache_size=engine_info.get("model_cache_size"),
            refresh_policy=engine_info.get("refresh_policy"),
        )
        schema = manifest.get("schema") or []
        store = arrays["store"]
        n_rows = int(manifest.get("n_rows", 0))
        if store.shape[0] != n_rows:
            raise ConfigurationError(
                f"engine artifact store has {store.shape[0]} rows, manifest "
                f"promises {n_rows}"
            )
        if n_rows:
            engine._schema = Schema([str(a) for a in schema])
            engine._buffer = np.array(store, dtype=float)
            engine._n = n_rows
        stats = manifest.get("stats") or {}
        for key in engine.stats:
            if key in stats:
                engine.stats[key] = int(stats[key])
        for metadata in manifest.get("states") or []:
            target_index = int(metadata["target_index"])
            prefix = f"state{target_index}_"
            state_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            engine._states[target_index] = _AttributeState.restore(
                engine, metadata, state_arrays
            )
        return engine

    def __repr__(self) -> str:
        width = "?" if self._schema is None else self._schema.width
        return (
            f"OnlineImputationEngine(n={self._n}, m={width}, "
            f"cached_attributes={list(self._states)}, "
            f"refresh={self.refresh_policy!r})"
        )
