"""Sharded columnar tuple store shared by every online model state.

Before this module each :class:`~repro.neighbors.NeighborOrderCache` owned a
private ``(n, |F|)`` feature-submatrix copy and every engine attribute state
a private target-column copy — ``O(states · n · m)`` resident floats for a
store the engine itself already holds.  The classes here collapse all of
that onto **one** columnar store:

* :class:`ColumnarTupleStore` — the single owner of every tuple payload.
  One array per attribute, partitioned into **fixed-capacity row shards**:
  appends only ever allocate new shards (existing rows are never copied or
  reallocated), deletes recycle rows through a free list, and updates write
  the revised tuple into a *fresh* slot so the old version stays readable.
  Retired slots are kept on a pending list until :meth:`release` — the MVCC
  discipline that lets a lazily-synced model state replay a mutation
  journal against the exact intermediate values each operation saw, without
  any state holding a data copy of its own.
* :class:`StoreFeatureView` — a zero-copy ``(n, m-1)`` *view* of the store:
  an array of slot references plus an excluded (target) attribute.  Reads
  materialise only the requested block; pairwise distances are computed
  **per shard** (one bounded ``(q, shard)`` block at a time) and are
  bit-identical to a monolithic metric call over a materialised matrix.
* :func:`sharded_topk` / :class:`ShardedNeighbors` — neighbour queries as a
  per-shard top-K selection followed by one exact cross-shard merge; the
  merged result reproduces the global ``(distance, index)`` lexsort order
  *including ties* (asserted against the unsharded reference in the test
  suite).
* :class:`MutationJournal` — the engine's mutation log as a **bounded ring
  buffer**.  Entries hold store slot references only (the payloads are
  durable in the store the moment the mutation lands), so journal memory is
  ``O(capacity)`` integers regardless of how wide the tuples are or how
  long a lazy burst runs; overflowing entries spill off the ring, advancing
  the replay floor, and report the slots they owned so the store can
  recycle them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..obs import count_journal_spill, count_store_rows
from .._validation import check_positive_int
from ..neighbors.brute import stable_order, topk_batch
from ..neighbors.distance import get_metric

__all__ = [
    "ColumnarTupleStore",
    "StoreFeatureView",
    "ShardedNeighbors",
    "MutationJournal",
    "sharded_topk",
]


class ColumnarTupleStore:
    """A mutable store of complete tuples: sharded, columnar, slot-addressed.

    Parameters
    ----------
    width:
        Number of attributes ``m`` per tuple.
    shard_capacity:
        Rows per shard.  Each attribute of each shard is one contiguous
        ``(shard_capacity,)`` float array; growing the store appends shards
        and never moves existing rows.

    Addressing
    ----------
    A **slot** is a stable physical row id: ``shard = slot // capacity``,
    ``offset = slot % capacity``.  The **logical** store order (what the
    engine exposes as tuple indices) is the ``live_slots`` array: logical
    index ``i`` lives in slot ``live_slots[i]``.  Deletes compact the
    logical order but leave slots in place; updates allocate a fresh slot
    for the new version.  Retired slots move to a *pending* list and stay
    readable until :meth:`release` hands them back to the free list.
    """

    def __init__(self, width: int, shard_capacity: int = 4096):
        self.width = check_positive_int(width, "width")
        self.shard_capacity = check_positive_int(shard_capacity, "shard_capacity")
        # columns[attr][shard] -> (shard_capacity,) float array
        self._columns: List[List[np.ndarray]] = [[] for _ in range(self.width)]
        self._live = np.empty(0, dtype=np.int64)
        self._free: List[int] = []
        self._pending: set = set()
        self._n_allocated = 0  # high-water slot mark (shards * capacity used)
        self.recycled_slots = 0  # free-list reuses (observability)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_live(self) -> int:
        """Number of live (logically visible) tuples."""
        return int(self._live.shape[0])

    @property
    def n_shards(self) -> int:
        """Number of allocated shards."""
        return len(self._columns[0])

    @property
    def n_slots(self) -> int:
        """Total allocated slot capacity across shards."""
        return self.n_shards * self.shard_capacity

    @property
    def n_pending(self) -> int:
        """Retired slots still retained for journal replay."""
        return len(self._pending)

    @property
    def n_free(self) -> int:
        """Slots available for recycling."""
        return len(self._free)

    @property
    def live_slots(self) -> np.ndarray:
        """The logical-order slot array (read-only view)."""
        view = self._live.view()
        view.setflags(write=False)
        return view

    @property
    def nbytes(self) -> int:
        """Resident payload bytes (columns + logical order)."""
        column_bytes = sum(
            shard.nbytes for column in self._columns for shard in column
        )
        return int(column_bytes + self._live.nbytes)

    def shards_of(self, slots: np.ndarray) -> np.ndarray:
        """Shard ids intersected by ``slots`` (the per-mutation dirty set)."""
        slots = np.asarray(slots, dtype=np.int64)
        return np.unique(slots // self.shard_capacity)

    def live_rows_per_shard(self) -> np.ndarray:
        """Live-row count per shard (a shard can shrink to zero and refill)."""
        counts = np.zeros(max(self.n_shards, 1), dtype=int)
        if self._live.size:
            shard_ids, shard_counts = np.unique(
                self._live // self.shard_capacity, return_counts=True
            )
            counts[shard_ids] = shard_counts
        return counts[: self.n_shards]

    # ------------------------------------------------------------------ #
    # Slot allocation
    # ------------------------------------------------------------------ #
    def _allocate(self, count: int) -> np.ndarray:
        slots = []
        if self._free:
            self._free.sort(reverse=True)  # pop lowest slots first
            while self._free and len(slots) < count:
                slots.append(self._free.pop())
            self.recycled_slots += len(slots)
        while len(slots) < count:
            if self._n_allocated == self.n_slots:
                for column in self._columns:
                    column.append(np.empty(self.shard_capacity))
            slots.append(self._n_allocated)
            self._n_allocated += 1
        return np.asarray(slots, dtype=np.int64)

    def _write(self, slots: np.ndarray, values: np.ndarray) -> None:
        shard_ids = slots // self.shard_capacity
        offsets = slots - shard_ids * self.shard_capacity
        for shard in np.unique(shard_ids):
            mask = shard_ids == shard
            block_offsets = offsets[mask]
            for attr in range(self.width):
                self._columns[attr][shard][block_offsets] = values[mask, attr]

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def append(self, values: np.ndarray) -> np.ndarray:
        """Add complete tuples; returns the slots they were written to."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.width:
            raise DataError(
                f"appended block must have shape (b, {self.width}), got "
                f"{values.shape}"
            )
        if values.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        slots = self._allocate(values.shape[0])
        self._write(slots, values)
        self._live = np.concatenate([self._live, slots])
        count_store_rows("append", values.shape[0])
        return slots

    def delete(self, indices: np.ndarray) -> np.ndarray:
        """Retire the tuples at the given *logical* indices.

        Surviving tuples compact in order.  Returns the retired slots; they
        stay readable (pending) until :meth:`release`.
        """
        indices = np.asarray(indices, dtype=np.int64)
        retired = self._live[indices]
        keep = np.ones(self.n_live, dtype=bool)
        keep[indices] = False
        self._live = self._live[keep]
        self._pending.update(int(s) for s in retired)
        count_store_rows("delete", retired.shape[0])
        return retired

    def update(self, index: int, row: np.ndarray) -> Tuple[int, int]:
        """Write a revised tuple into a fresh slot; returns (old, new) slots.

        The old version stays readable (pending) until :meth:`release` — the
        retention that lets journal replay reconstruct intermediate states.
        """
        row = np.asarray(row, dtype=float).reshape(1, -1)
        if row.shape[1] != self.width:
            raise DataError(
                f"updated row must have {self.width} attributes, got {row.shape[1]}"
            )
        old_slot = int(self._live[index])
        new_slot = int(self._allocate(1)[0])
        self._write(np.asarray([new_slot], dtype=np.int64), row)
        self._live[index] = new_slot
        self._pending.add(old_slot)
        count_store_rows("update", 1)
        return old_slot, new_slot

    def release(self, slots: Iterable[int]) -> None:
        """Hand retired slots back to the free list for recycling."""
        for slot in np.asarray(list(slots), dtype=np.int64).ravel():
            slot = int(slot)
            if slot in self._pending:
                self._pending.discard(slot)
                self._free.append(slot)

    def clear_live(self) -> np.ndarray:
        """Retire every live tuple (the all-rows-deleted state)."""
        return self.delete(np.arange(self.n_live))

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def _gather_column(self, attr: int, slots: np.ndarray) -> np.ndarray:
        out = np.empty(slots.shape[0])
        shard_ids = slots // self.shard_capacity
        offsets = slots - shard_ids * self.shard_capacity
        for shard in np.unique(shard_ids):
            mask = shard_ids == shard
            out[mask] = self._columns[attr][shard][offsets[mask]]
        return out

    def column(self, attr: int, slots: Optional[np.ndarray] = None) -> np.ndarray:
        """One attribute's values, gathered by slot (default: live order)."""
        if slots is None:
            slots = self._live
        slots = np.asarray(slots, dtype=np.int64)
        return self._gather_column(attr, slots)

    def rows(
        self, slots: np.ndarray, attrs: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Materialise the tuples at ``slots`` (optionally a column subset)."""
        slots = np.asarray(slots, dtype=np.int64)
        attrs = tuple(range(self.width)) if attrs is None else tuple(attrs)
        out = np.empty((slots.shape[0], len(attrs)))
        for position, attr in enumerate(attrs):
            out[:, position] = self._gather_column(attr, slots)
        return out

    def matrix(self) -> np.ndarray:
        """The live store as a dense ``(n, m)`` matrix (materialised copy)."""
        return self.rows(self._live)

    def feature_view(
        self, exclude: Optional[int] = None, slots: Optional[np.ndarray] = None
    ) -> "StoreFeatureView":
        """A slot-indirected view of the store minus one (target) attribute."""
        if slots is None:
            slots = self._live.copy()
        return StoreFeatureView(self, np.asarray(slots, dtype=np.int64), exclude)


class StoreFeatureView:
    """A ``(n, m-1)`` feature view: slot references into a columnar store.

    The view owns its ``slots`` array (logical order) but no tuple payload;
    ``__getitem__`` / ``__array__`` materialise on demand and
    :meth:`pairwise` computes distance blocks **per shard**, so the largest
    transient allocation is one ``(shard_capacity, m-1)`` block plus the
    ``(q, n)`` output.  View mutators (:meth:`extended`, :meth:`selected`,
    :meth:`replaced`) return new views sharing the store — the shapes the
    incremental cache maintenance needs for append/remove/replace.
    """

    def __init__(
        self,
        store: ColumnarTupleStore,
        slots: np.ndarray,
        exclude: Optional[int] = None,
    ):
        self.store = store
        self.slots = np.asarray(slots, dtype=np.int64)
        self.exclude = None if exclude is None else int(exclude)
        if self.exclude is not None and not 0 <= self.exclude < store.width:
            raise ConfigurationError(
                f"excluded attribute {exclude} out of range for width {store.width}"
            )
        self.attrs = tuple(
            a for a in range(store.width) if a != self.exclude
        )

    # -- ndarray-ish protocol ------------------------------------------- #
    @property
    def shape(self) -> Tuple[int, int]:
        return (int(self.slots.shape[0]), len(self.attrs))

    def __len__(self) -> int:
        return int(self.slots.shape[0])

    def materialize(self, positions: Optional[np.ndarray] = None) -> np.ndarray:
        """Gather rows (all, or the given logical positions) as a matrix."""
        slots = self.slots if positions is None else self.slots[positions]
        return self.store.rows(slots, attrs=self.attrs)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        block = self.materialize()
        return block if dtype is None else block.astype(dtype)

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self.store.rows(
                self.slots[int(key) : int(key) + 1], attrs=self.attrs
            )[0]
        if isinstance(key, slice):
            return self.store.rows(self.slots[key], attrs=self.attrs)
        return self.store.rows(
            self.slots[np.asarray(key, dtype=np.int64)], attrs=self.attrs
        )

    # -- view mutators (new views; the store is never touched) ----------- #
    def extended(self, slots: np.ndarray) -> "StoreFeatureView":
        """The view grown by appended slots (logical order preserved)."""
        grown = np.concatenate([self.slots, np.asarray(slots, dtype=np.int64)])
        return StoreFeatureView(self.store, grown, self.exclude)

    def selected(self, positions: np.ndarray) -> "StoreFeatureView":
        """The view restricted to the given logical positions, in order."""
        return StoreFeatureView(
            self.store, self.slots[np.asarray(positions, dtype=np.int64)],
            self.exclude,
        )

    def replaced(self, position: int, slot: int) -> "StoreFeatureView":
        """The view with one logical position pointed at a fresh slot."""
        slots = self.slots.copy()
        slots[int(position)] = int(slot)
        return StoreFeatureView(self.store, slots, self.exclude)

    # -- per-shard distance kernel --------------------------------------- #
    def shard_groups(self) -> List[Tuple[int, np.ndarray]]:
        """Logical positions grouped by the shard holding their slot."""
        capacity = self.store.shard_capacity
        shard_ids = self.slots // capacity
        return [
            (int(shard), np.flatnonzero(shard_ids == shard))
            for shard in np.unique(shard_ids)
        ]

    def pairwise(self, query, metric_fn) -> np.ndarray:
        """Distances of ``query`` against every viewed row, shard by shard.

        Row-wise metrics compute each pair independently, so assembling the
        ``(q, n)`` result from per-shard blocks is bit-identical to one
        monolithic ``metric_fn(query, materialised_matrix)`` call — only
        shards actually referenced by the view are ever touched.
        """
        query = np.asarray(query, dtype=float)
        single = query.ndim == 1
        query_block = query.reshape(1, -1) if single else query
        n = self.shape[0]
        out = np.empty((query_block.shape[0], n))
        for _, positions in self.shard_groups():
            block = self.materialize(positions)
            out[:, positions] = metric_fn(query_block, block)
        return out[0] if single else out


def sharded_topk(
    view: StoreFeatureView, query, metric_fn, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` nearest viewed rows per query, merged across shards.

    Each shard contributes its ``k`` best candidates by ``(distance,
    logical index)`` (ties broken by index exactly like the unsharded
    kernel, because positions within a shard group ascend); one final
    lexsort over the pooled candidates then reproduces the global
    ``np.lexsort((index, distance))`` prefix **exactly**, distance ties
    across shard boundaries included.

    Returns ``(distances, indices)`` of shape ``(q, k)`` in logical view
    index space.
    """
    query = np.asarray(query, dtype=float)
    single = query.ndim == 1
    query_block = query.reshape(1, -1) if single else query
    n = view.shape[0]
    k = check_positive_int(k, "k")
    if k > n:
        raise ConfigurationError(f"requested k={k} neighbours but only {n} exist")

    candidate_dists: List[np.ndarray] = []
    candidate_positions: List[np.ndarray] = []
    for _, positions in view.shard_groups():
        block = view.materialize(positions)
        distances = metric_fn(query_block, block)
        take = min(k, positions.shape[0])
        block_dists, block_order = topk_batch(distances, take)
        candidate_dists.append(block_dists)
        candidate_positions.append(positions[block_order])
    pool_dists = np.hstack(candidate_dists)
    pool_positions = np.hstack(candidate_positions)
    merge = np.lexsort((pool_positions, pool_dists), axis=1)[:, :k]
    dists = np.take_along_axis(pool_dists, merge, axis=1)
    positions = np.take_along_axis(pool_positions, merge, axis=1)
    if single:
        return dists[0], positions[0]
    return dists, positions


class ShardedNeighbors:
    """Drop-in neighbour searcher serving queries straight off a store view.

    Mirrors :class:`~repro.neighbors.BruteForceNeighbors.kneighbors` —
    identical distances, identical tie-breaks — without ever materialising
    the ``(n, m-1)`` feature matrix: candidates are selected per shard and
    merged exactly (:func:`sharded_topk`).
    """

    def __init__(self, view: StoreFeatureView, metric: str = "paper_euclidean"):
        self.view = view
        self.metric = metric
        self._metric_fn = get_metric(metric)

    @property
    def n_points(self) -> int:
        return self.view.shape[0]

    def kneighbors(self, query, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if self.n_points == 0:
            raise NotFittedError("the store view is empty; append tuples first")
        if k > self.n_points:
            raise ConfigurationError(
                f"requested k={k} neighbours but only {self.n_points} are "
                f"available"
            )
        query = np.asarray(query, dtype=float)
        single = query.ndim == 1
        query_block = query.reshape(1, -1) if single else query
        dist, idx = sharded_topk(self.view, query_block, self._metric_fn, k)
        if single:
            return dist[0], idx[0]
        return dist, idx


class MutationJournal:
    """The engine's mutation log as a bounded ring buffer of slot references.

    Every entry is ``(version, op, payload)`` where the payload holds store
    slots / logical indices only — never tuple values (those are durable in
    the columnar store by the time the entry is recorded).  When the ring
    overflows, the oldest entries spill: the replay floor advances (states
    older than it full-rebuild instead of replaying) and the spilled
    entries are handed back so their retired slots can be recycled.
    """

    def __init__(self, capacity: int = 512):
        self.capacity = check_positive_int(capacity, "capacity")
        self._entries: Deque[Tuple[int, str, object]] = deque()
        self.floor = 0
        self.spills = 0  # entries dropped by ring overflow (observability)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes (slot/index arrays only)."""
        total = 0
        for _, op, payload in self._entries:
            if op == "append":
                total += payload.nbytes
            elif op == "delete":
                total += payload[0].nbytes + payload[1].nbytes
            else:  # update: three plain ints
                total += 24
        return total

    def record(
        self, version: int, op: str, payload
    ) -> List[Tuple[int, str, object]]:
        """Append one entry; returns the entries spilled by the ring bound."""
        self._entries.append((version, op, payload))
        spilled: List[Tuple[int, str, object]] = []
        while len(self._entries) > self.capacity:
            spilled.append(self._entries.popleft())
        if spilled:
            self.spills += len(spilled)
            self.floor = max(self.floor, spilled[-1][0])
            count_journal_spill(len(spilled))
        return spilled

    def since(self, version: int) -> Optional[List[Tuple[str, object]]]:
        """Ops recorded after ``version``; ``None`` when some have spilled."""
        if version < self.floor:
            return None
        return [(op, payload) for v, op, payload in self._entries if v > version]

    def prune(self, horizon: int) -> List[Tuple[int, str, object]]:
        """Drop (and return) entries every resident state has replayed."""
        dropped: List[Tuple[int, str, object]] = []
        while self._entries and self._entries[0][0] <= horizon:
            dropped.append(self._entries.popleft())
        self.floor = max(self.floor, horizon)
        return dropped

    def advance_floor(self, version: int) -> None:
        """Raise the replay floor without recording an entry."""
        self.floor = max(self.floor, version)

    def clear(self) -> List[Tuple[int, str, object]]:
        """Drop every entry (store emptied); returns them for slot release."""
        dropped = list(self._entries)
        self._entries.clear()
        return dropped
