"""repro — a full reproduction of "Learning Individual Models for Imputation" (ICDE 2019).

The package implements the paper's IIM method (individual per-tuple
regression models, adaptive selection of the number of learning neighbours,
incremental computation), all thirteen baseline imputation methods of its
Table II, the relational/neighbour/regression/clustering/tree substrates
they need, the evaluation metrics, synthetic analogues of the paper's nine
datasets, and an experiment harness that regenerates every table and figure
of the evaluation section.

Quickstart
----------
>>> from repro import IIMImputer, load_dataset, inject_missing, rms_error
>>> relation = load_dataset("asf", size=400)
>>> injection = inject_missing(relation, fraction=0.05, random_state=0)
>>> imputer = IIMImputer(k=10, learning="adaptive", stepping=10, max_learning_neighbors=50)
>>> imputed = imputer.fit(injection.dirty).impute(injection.dirty)
>>> error = rms_error(injection.truth, imputed.raw[injection.rows, injection.attributes])

Kernel backends
---------------
The IIM hot paths — neighbour search, per-candidate model learning
(Algorithm 3 / Proposition 3), validation-cost accumulation and batch
imputation — run on **vectorized batch kernels** by default: pairwise
distance blocks with ``argpartition`` top-k, prefix-sum (``cumsum``) U/V
statistics solved by one stacked ``np.linalg.solve``, and batched candidate
combination.  The original per-tuple Python loops are retained as an
executable reference backend, selectable through :mod:`repro.config`:

>>> import repro
>>> repro.set_backend("loop")        # process-wide          # doctest: +SKIP
>>> with repro.use_backend("loop"):  # temporarily           # doctest: +SKIP
...     IIMImputer(k=10).fit(injection.dirty).impute(injection.dirty)
>>> IIMImputer(k=10, backend="loop")  # per-instance         # doctest: +SKIP

The ``REPRO_BACKEND`` environment variable sets the initial default.  The
test suite asserts both backends agree to ``rtol = 1e-9``;
``benchmarks/test_perf_kernels.py`` tracks their relative wall-clock in
``BENCH_kernels.json``.

Online imputation
-----------------
:mod:`repro.online` turns the batch method into a long-lived service.
:class:`~repro.online.OnlineImputationEngine` wraps :class:`IIMImputer`
behind ``append(rows)`` / ``impute_batch(queries)`` / ``snapshot(path)``:
appends fold new tuples into the neighbour index by a sorted merge and
relearn only the per-tuple models whose neighbourhood actually changed
(Proposition 3 through the batched kernels), while queries are served from
an LRU cache of per-attribute model states — always equal (``rtol = 1e-9``)
to a cold ``IIMImputer`` refit over the same tuples.

>>> from repro.online import OnlineImputationEngine          # doctest: +SKIP
>>> engine = OnlineImputationEngine(k=10, learning="adaptive",
...                                 max_learning_neighbors=50)  # doctest: +SKIP
>>> engine.append(new_complete_rows)                         # doctest: +SKIP
>>> filled = engine.impute_batch(rows_with_nans)             # doctest: +SKIP
>>> engine.snapshot("artifacts/engine")                      # doctest: +SKIP

Engine knobs (per-attribute model cache size, lazy/eager refresh policy)
live in :mod:`repro.config` next to the backend knob.  Fitted state —
engines via ``snapshot``/``load``, every imputer via ``save``/``load`` on
:class:`~repro.baselines.base.BaseImputer` — persists as ``.npz`` arrays
plus a JSON manifest (:mod:`repro.online.artifacts`) and restores
bit-for-bit.  ``python -m repro replay`` replays a CSV trace against the
engine; ``benchmarks/test_perf_online.py`` tracks the incremental-vs-cold
speedup in ``BENCH_online.json``.

The service layer
-----------------
:mod:`repro.api` unifies both worlds behind one protocol: an
:class:`~repro.api.ImputationSession` (``fit`` / ``mutate`` / ``impute`` /
``save`` / ``restore`` / ``stats``) implemented by
:class:`~repro.api.BatchSession` (any registry method) and
:class:`~repro.api.OnlineSession` (the incremental engine), typed request
messages (:class:`~repro.api.ImputeRequest`,
:class:`~repro.api.MutationOp`, :class:`~repro.api.SessionConfig`), a
stable error taxonomy, and a stdlib-only JSONL serve loop.  The
consolidated CLI lives behind ``python -m repro`` (subcommands ``impute``,
``replay``, ``serve``, ``bench``).

>>> from repro.api import create_session, MutationOp        # doctest: +SKIP
>>> session = create_session(method="IIM", mode="online")   # doctest: +SKIP
>>> session.fit(initial_rows)                               # doctest: +SKIP
>>> session.mutate([MutationOp.append(new_rows)])           # doctest: +SKIP
>>> filled = session.impute(rows_with_nans)                 # doctest: +SKIP
"""

from .baselines import (
    METHOD_SPECS,
    BLRImputer,
    ERACERImputer,
    GLRImputer,
    GMMImputer,
    IFCImputer,
    ILLSImputer,
    KNNEnsembleImputer,
    KNNImputer,
    LoessImputer,
    MeanImputer,
    PMMImputer,
    SVDImputer,
    XGBImputer,
    available_methods,
    make_imputer,
    method_capabilities,
    method_spec,
)
from .config import BACKENDS, get_backend, resolve_backend, set_backend, use_backend
from .core import (
    IIMImputer,
    IndividualModels,
    adaptive_learning,
    learn_individual_models,
)
from .data import (
    Relation,
    Schema,
    dataset_names,
    inject_missing,
    inject_missing_attribute,
    inject_missing_clustered,
    load_dataset,
)
from .exceptions import (
    ConfigurationError,
    DataError,
    DatasetError,
    ExperimentError,
    MissingValueError,
    NotFittedError,
    ReproError,
    SchemaError,
)
from .metrics import (
    f1_score,
    heterogeneity_r2,
    mean_absolute_error,
    purity_score,
    r_squared,
    rms_error,
    sparsity_r2,
)
from .online import OnlineImputationEngine
from .api import (
    BatchSession,
    ImputationSession,
    ImputeRequest,
    MutationOp,
    OnlineSession,
    SessionConfig,
    create_session,
    restore_session,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Configuration
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    # Core method
    "IIMImputer",
    "IndividualModels",
    "learn_individual_models",
    "adaptive_learning",
    # Online serving
    "OnlineImputationEngine",
    # Service layer
    "ImputationSession",
    "BatchSession",
    "OnlineSession",
    "create_session",
    "restore_session",
    "ImputeRequest",
    "MutationOp",
    "SessionConfig",
    # Baselines
    "MeanImputer",
    "KNNImputer",
    "KNNEnsembleImputer",
    "IFCImputer",
    "GMMImputer",
    "SVDImputer",
    "ILLSImputer",
    "GLRImputer",
    "LoessImputer",
    "BLRImputer",
    "ERACERImputer",
    "PMMImputer",
    "XGBImputer",
    "make_imputer",
    "available_methods",
    "METHOD_SPECS",
    "method_spec",
    "method_capabilities",
    # Data
    "Relation",
    "Schema",
    "load_dataset",
    "dataset_names",
    "inject_missing",
    "inject_missing_attribute",
    "inject_missing_clustered",
    # Metrics
    "rms_error",
    "mean_absolute_error",
    "r_squared",
    "sparsity_r2",
    "heterogeneity_r2",
    "purity_score",
    "f1_score",
    # Exceptions
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "DataError",
    "SchemaError",
    "MissingValueError",
    "DatasetError",
    "ExperimentError",
]
