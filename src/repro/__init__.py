"""repro — a full reproduction of "Learning Individual Models for Imputation" (ICDE 2019).

The package implements the paper's IIM method (individual per-tuple
regression models, adaptive selection of the number of learning neighbours,
incremental computation), all thirteen baseline imputation methods of its
Table II, the relational/neighbour/regression/clustering/tree substrates
they need, the evaluation metrics, synthetic analogues of the paper's nine
datasets, and an experiment harness that regenerates every table and figure
of the evaluation section.

Quickstart
----------
>>> from repro import IIMImputer, load_dataset, inject_missing, rms_error
>>> relation = load_dataset("asf", size=400)
>>> injection = inject_missing(relation, fraction=0.05, random_state=0)
>>> imputer = IIMImputer(k=10, learning="adaptive", stepping=10, max_learning_neighbors=50)
>>> imputed = imputer.fit(injection.dirty).impute(injection.dirty)
>>> error = rms_error(injection.truth, imputed.raw[injection.rows, injection.attributes])
"""

from .baselines import (
    BLRImputer,
    ERACERImputer,
    GLRImputer,
    GMMImputer,
    IFCImputer,
    ILLSImputer,
    KNNEnsembleImputer,
    KNNImputer,
    LoessImputer,
    MeanImputer,
    PMMImputer,
    SVDImputer,
    XGBImputer,
    available_methods,
    make_imputer,
)
from .core import (
    IIMImputer,
    IndividualModels,
    adaptive_learning,
    learn_individual_models,
)
from .data import (
    Relation,
    Schema,
    dataset_names,
    inject_missing,
    inject_missing_attribute,
    inject_missing_clustered,
    load_dataset,
)
from .exceptions import (
    ConfigurationError,
    DataError,
    DatasetError,
    ExperimentError,
    MissingValueError,
    NotFittedError,
    ReproError,
    SchemaError,
)
from .metrics import (
    f1_score,
    heterogeneity_r2,
    mean_absolute_error,
    purity_score,
    r_squared,
    rms_error,
    sparsity_r2,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core method
    "IIMImputer",
    "IndividualModels",
    "learn_individual_models",
    "adaptive_learning",
    # Baselines
    "MeanImputer",
    "KNNImputer",
    "KNNEnsembleImputer",
    "IFCImputer",
    "GMMImputer",
    "SVDImputer",
    "ILLSImputer",
    "GLRImputer",
    "LoessImputer",
    "BLRImputer",
    "ERACERImputer",
    "PMMImputer",
    "XGBImputer",
    "make_imputer",
    "available_methods",
    # Data
    "Relation",
    "Schema",
    "load_dataset",
    "dataset_names",
    "inject_missing",
    "inject_missing_attribute",
    "inject_missing_clustered",
    # Metrics
    "rms_error",
    "mean_absolute_error",
    "r_squared",
    "sparsity_r2",
    "heterogeneity_r2",
    "purity_score",
    "f1_score",
    # Exceptions
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "DataError",
    "SchemaError",
    "MissingValueError",
    "DatasetError",
    "ExperimentError",
]
