"""The :class:`ImputationSession` protocol and its two implementations.

One protocol fronts the whole library:

* :class:`BatchSession` adapts any registry imputer (the paper's IIM and all
  thirteen Table-II baselines) behind the session surface — ``fit`` then
  ``impute``, with persistence through the artifact layer;
* :class:`OnlineSession` wraps the incremental
  :class:`~repro.online.OnlineImputationEngine` — the same surface plus
  ``mutate`` (append / delete / update maintained incrementally).

Both are deliberately *thin*: every call delegates straight to the wrapped
object, so going through a session is bit-identical to calling the imputer
or engine directly (asserted in ``tests/api/test_sessions.py``; the facade
adds no overhead on the engine's fast paths).  What callers gain is a single
shape to program against — the experiment harness, the streaming scenarios,
the CLI and the JSONL serve loop all speak it — plus a capability descriptor
(:class:`~repro.baselines.registry.MethodCapabilities`) that advertises
up front whether a session supports mutation, persistence and adaptive
learning instead of failing midway through a workload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

import numpy as np

from ..baselines.base import BaseImputer
from ..baselines.registry import (
    MethodCapabilities,
    make_imputer,
    method_spec,
)
from ..data.relation import Relation
from ..exceptions import (
    ConfigurationError,
    DataError,
    UnsupportedOperationError,
)
from ..online.artifacts import load_imputer, read_artifact
from ..online.engine import OnlineImputationEngine
from ..reliability.wal import WriteAheadLog, read_wal
from .messages import PROTOCOL_VERSION, ImputeRequest, MutationOp, SessionConfig

__all__ = [
    "ImputationSession",
    "BatchSession",
    "OnlineSession",
    "create_session",
    "restore_session",
    "recover_session",
]

Queries = Union[ImputeRequest, np.ndarray, Relation]


def _as_relation(data: Union[Relation, np.ndarray], what: str) -> Relation:
    if isinstance(data, Relation):
        return data
    values = np.atleast_2d(np.asarray(data, dtype=float))
    if values.ndim != 2 or values.size == 0:
        raise DataError(f"{what} needs a non-empty 2-D batch of tuples")
    return Relation(values)


def _as_request(queries: Queries) -> ImputeRequest:
    if isinstance(queries, ImputeRequest):
        return queries
    if isinstance(queries, Relation):
        return ImputeRequest(queries.raw.copy())
    return ImputeRequest(queries)


class ImputationSession(ABC):
    """One protocol over every imputation method in the library.

    The five verbs every session answers:

    * :meth:`fit` — learn from (the complete part of) a relation;
    * :meth:`mutate` — apply a sequence of :class:`MutationOp` to the
      backing store (only where ``capabilities.supports_mutation``);
    * :meth:`impute` — fill the ``NaN`` cells of a batch of query tuples;
    * :meth:`save` / :meth:`restore` — persist and restore the fitted state
      as an artifact directory;
    * :meth:`stats` — a uniform observability document (counters, memory,
      capabilities) for dashboards and the serve loop's ``stats`` command.
    """

    #: ``"batch"`` or ``"online"``.
    kind: str = "session"

    @property
    @abstractmethod
    def method(self) -> str:
        """The registry name of the method this session serves."""

    @property
    @abstractmethod
    def capabilities(self) -> MethodCapabilities:
        """What this session supports (mutation, persistence, adaptive)."""

    @abstractmethod
    def fit(self, data: Union[Relation, np.ndarray]) -> "ImputationSession":
        """Learn from the complete part of ``data``."""

    @abstractmethod
    def mutate(self, ops: Iterable[MutationOp]) -> "ImputationSession":
        """Apply mutations in order (raises unless mutation is supported)."""

    @abstractmethod
    def impute(self, queries: Queries) -> np.ndarray:
        """Return ``queries`` with every ``NaN`` cell filled."""

    @abstractmethod
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the session's fitted state as an artifact directory."""

    @classmethod
    @abstractmethod
    def restore(cls, path: Union[str, Path]) -> "ImputationSession":
        """Rebuild a session from an artifact written by :meth:`save`."""

    @abstractmethod
    def stats(self) -> Dict[str, object]:
        """Uniform observability: counters, memory, capabilities."""

    # Convenience shared by both implementations ----------------------- #
    def impute_relation(self, relation: Relation) -> Relation:
        """Impute a relation and return a relation (schema preserved)."""
        return relation.with_values(self.impute(relation))

    def _stats_header(self) -> Dict[str, object]:
        return {
            "protocol": PROTOCOL_VERSION,
            "kind": self.kind,
            "method": self.method,
            "capabilities": self.capabilities.as_dict(),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(method={self.method!r})"


class BatchSession(ImputationSession):
    """Session over any registry imputer (offline fit/impute protocol).

    Parameters
    ----------
    method:
        Registry method name; overrides are forwarded to the constructor
        (validated against its signature, see
        :func:`~repro.baselines.registry.make_imputer`).
    imputer:
        Alternatively, adapt an already-built (possibly fitted)
        :class:`~repro.baselines.base.BaseImputer` instance.
    """

    kind = "batch"

    def __init__(
        self,
        method: str = "IIM",
        *,
        imputer: Optional[BaseImputer] = None,
        **overrides,
    ):
        if imputer is not None:
            if overrides:
                raise ConfigurationError(
                    "pass either a method name with overrides or an imputer "
                    "instance, not both"
                )
            if not isinstance(imputer, BaseImputer):
                raise ConfigurationError(
                    f"BatchSession adapts a BaseImputer, got {type(imputer).__name__}"
                )
            self.imputer = imputer
            self._method = getattr(imputer, "name", type(imputer).__name__)
        else:
            self.imputer = make_imputer(method, **overrides)
            self._method = method_spec(method).name

    @property
    def method(self) -> str:
        return self._method

    @property
    def capabilities(self) -> MethodCapabilities:
        try:
            spec = method_spec(self._method)
        except ConfigurationError:
            # An imputer class outside the registry: the batch surface still
            # offers fit/impute/persistence, never mutation.
            return MethodCapabilities()
        return MethodCapabilities(
            supports_mutation=False,
            supports_persistence=spec.capabilities.supports_persistence,
            supports_adaptive=spec.capabilities.supports_adaptive,
        )

    def fit(self, data: Union[Relation, np.ndarray]) -> "BatchSession":
        self.imputer.fit(_as_relation(data, "fit"))
        return self

    def mutate(self, ops: Iterable[MutationOp]) -> "BatchSession":
        raise UnsupportedOperationError(
            f"method {self._method!r} is served by a batch session, which "
            f"does not support mutation; re-fit on the updated relation, or "
            f"use an online session (method 'IIM', mode 'online')"
        )

    def impute(self, queries: Queries) -> np.ndarray:
        if isinstance(queries, Relation):
            relation = queries
        else:
            relation = Relation(_as_request(queries).values)
        # .values (a writable copy), not .raw (a read-only view): both
        # session kinds must hand back arrays the caller may mutate.
        return self.imputer.impute(relation).values

    def save(self, path: Union[str, Path]) -> Path:
        return self.imputer.save(path)

    @classmethod
    def restore(cls, path: Union[str, Path]) -> "BatchSession":
        return cls(imputer=load_imputer(path))

    @property
    def counters(self) -> Dict[str, int]:
        """Lifetime counters, read from the imputer's ``observe()`` hook.

        ``impute_requests`` is kept as an alias of the uniform
        ``impute_batches`` name for wire compatibility with earlier
        protocol consumers.
        """
        observed = self.imputer.observe()
        observed["impute_requests"] = observed.get("impute_batches", 0)
        return observed

    def stats(self) -> Dict[str, object]:
        fitted = self.imputer.is_fitted()
        stats = self._stats_header()
        stats.update(
            fitted=fitted,
            n_tuples=self.imputer.fitted_relation.n_tuples if fitted else 0,
            n_attributes=(
                self.imputer.fitted_relation.n_attributes if fitted else None
            ),
            counters=self.counters,
            memory={},
        )
        return stats


class OnlineSession(ImputationSession):
    """Session over the incremental online engine (full tuple lifecycle).

    Parameters
    ----------
    engine:
        Wrap an existing :class:`~repro.online.OnlineImputationEngine`.
    kwargs:
        Otherwise, engine knobs (``model_cache_size``, ``refresh_policy``,
        ``incremental_fallback_fraction``, ``shard_capacity``,
        ``journal_capacity``, ``delete_cost_mode``) and
        :class:`~repro.core.iim.IIMImputer` constructor arguments, exactly
        as the engine constructor takes them.

    Notes
    -----
    The two construction routes resolve *defaults* differently:
    ``OnlineSession(**kwargs)`` mirrors the raw engine, so omitted IIM
    parameters take :class:`IIMImputer`'s own defaults, while
    :meth:`from_config` (and therefore :func:`create_session` and the
    serve loop's ``create`` command) builds the imputer through the
    registry, whose ``"IIM"`` entry carries the curated paper defaults
    (``stepping=5``, ``max_learning_neighbors=200``,
    ``validation_neighbors=30``).  Set the parameters explicitly wherever
    two entry points must agree bit-for-bit.
    """

    kind = "online"

    def __init__(
        self,
        engine: Optional[OnlineImputationEngine] = None,
        *,
        wal: Optional[WriteAheadLog] = None,
        fault_injector=None,
        **kwargs,
    ):
        if engine is not None:
            if kwargs:
                raise ConfigurationError(
                    "pass either an engine instance or engine/IIM keyword "
                    "arguments, not both"
                )
            if not isinstance(engine, OnlineImputationEngine):
                raise ConfigurationError(
                    f"OnlineSession wraps an OnlineImputationEngine, "
                    f"got {type(engine).__name__}"
                )
            self.engine = engine
        else:
            self.engine = OnlineImputationEngine(**kwargs)
        self.wal = wal
        self.fault_injector = fault_injector

    @classmethod
    def from_config(cls, config: SessionConfig) -> "OnlineSession":
        """Build an online session from a validated :class:`SessionConfig`."""
        if config.resolved_mode() != "online":
            raise ConfigurationError(
                f"config resolves to {config.resolved_mode()!r} mode, not online"
            )
        imputer = make_imputer(config.method, **config.params)
        return cls(engine=OnlineImputationEngine(imputer, **config.engine))

    @property
    def method(self) -> str:
        return self.engine.imputer.name

    @property
    def capabilities(self) -> MethodCapabilities:
        return method_spec(self.method).capabilities

    def fit(self, data: Union[Relation, np.ndarray]) -> "OnlineSession":
        """Bootstrap the store with the complete part of ``data``.

        Fitting an already-populated session is ambiguous (re-fit or grow?)
        and therefore rejected — mutate with an append instead.
        """
        if self.engine.n_tuples:
            raise ConfigurationError(
                "this online session is already fitted; append through "
                "mutate() instead of fitting again"
            )
        relation = _as_relation(data, "fit")
        complete = relation.complete_part()
        if complete.n_tuples == 0:
            raise DataError(
                "cannot fit a session: the relation has no complete tuple"
            )
        self.engine.append(complete)
        if self.wal is not None:
            try:
                self.wal.log_op(MutationOp.append(complete.raw).to_wire())
            finally:
                self.wal.commit()
        return self

    def mutate(self, ops: Iterable[MutationOp]) -> "OnlineSession":
        ops = list(ops)
        for op in ops:
            if not isinstance(op, MutationOp):
                raise ConfigurationError(
                    f"mutate expects MutationOp instances, got {type(op).__name__}"
                )
        try:
            for op in ops:
                if op.kind == "append":
                    # Incomplete tuples are accepted into the engine's
                    # pending side-store; the query layer imputes their
                    # missing cells on demand.
                    self.engine.append(op.rows, allow_incomplete=True)
                elif op.kind == "delete":
                    self.engine.delete(op.indices)
                elif op.kind == "update":
                    self.engine.update(op.index, op.row)
                else:
                    self.engine.promote_pending()
                # Log *after* the engine accepted the op: the WAL holds
                # exactly the applied prefix, so a crash mid-batch
                # recovers the last consistent pre-crash state.
                if self.wal is not None:
                    self.wal.log_op(op.to_wire())
        finally:
            if self.wal is not None:
                self.wal.commit()
        return self

    def impute(self, queries: Queries) -> np.ndarray:
        if isinstance(queries, Relation):
            return self.engine.impute_batch(queries)
        return self.engine.impute_batch(_as_request(queries).values)

    def attach_wal(
        self, wal: WriteAheadLog, *, fault_injector=None
    ) -> "OnlineSession":
        """Log every subsequently accepted mutation to ``wal``."""
        self.wal = wal
        if fault_injector is not None:
            self.fault_injector = fault_injector
        return self

    def config_wire(self) -> Dict[str, object]:
        """A :class:`SessionConfig` wire form rebuilding this session's
        engine (recorded in the WAL so recovery works without a checkpoint)."""
        engine = self.engine
        return {
            "method": self.method,
            "mode": "online",
            "params": engine.imputer.get_params(),
            "engine": {
                "model_cache_size": engine.model_cache_size,
                "refresh_policy": engine.refresh_policy,
                "incremental_fallback_fraction": (
                    engine.incremental_fallback_fraction
                ),
                "shard_capacity": engine.shard_capacity,
                "journal_capacity": engine.journal_capacity,
                "delete_cost_mode": engine.delete_cost_mode,
            },
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Checkpoint the engine; with a WAL attached, the manifest records
        the covered WAL position and the committed checkpoint truncates
        the log (its ops are now durable in the artifact)."""
        manifest_extra = None
        if self.wal is not None:
            manifest_extra = {"wal": {"last_seq": self.wal.last_seq}}
        out = self.engine.snapshot(
            path, manifest_extra=manifest_extra, injector=self.fault_injector
        )
        if self.wal is not None:
            self.wal.truncate(config=self.config_wire())
        return out

    @classmethod
    def restore(cls, path: Union[str, Path]) -> "OnlineSession":
        return cls(engine=OnlineImputationEngine.load(path))

    def close(self) -> None:
        """Release the WAL file handle (the log itself stays on disk)."""
        if self.wal is not None:
            self.wal.close()

    def stats(self) -> Dict[str, object]:
        engine = self.engine
        fitted = engine.n_tuples > 0
        stats = self._stats_header()
        stats.update(
            fitted=fitted,
            n_tuples=engine.n_tuples,
            n_pending=engine.n_pending,
            n_attributes=engine.n_attributes if fitted else None,
            counters=dict(engine.stats),
            memory=engine.memory_stats(),
        )
        if self.wal is not None:
            stats["wal"] = self.wal.stats()
        return stats

    def __repr__(self) -> str:
        return f"OnlineSession(engine={self.engine!r})"


def create_session(
    config: Optional[SessionConfig] = None, **kwargs
) -> ImputationSession:
    """Build a session from a :class:`SessionConfig` (or its fields).

    >>> session = create_session(method="kNN", params={"k": 5})   # batch
    >>> session = create_session(method="IIM", mode="online",
    ...                          params={"k": 10})                # online

    Parameters omitted from ``params`` take the *registry* defaults of the
    method (for IIM the curated paper defaults, see
    :data:`repro.baselines.registry.METHOD_SPECS`), exactly as
    :func:`~repro.baselines.registry.make_imputer` would.
    """
    if config is None:
        config = SessionConfig(**kwargs)
    elif kwargs:
        raise ConfigurationError(
            "pass either a SessionConfig or its fields as kwargs, not both"
        )
    if config.resolved_mode() == "online":
        return OnlineSession.from_config(config)
    return BatchSession(config.method, **config.params)


def restore_session(path: Union[str, Path]) -> ImputationSession:
    """Restore a session from any artifact directory.

    Dispatches on the artifact's stored kind: an ``"engine"`` artifact
    (written by :meth:`OnlineSession.save` /
    :meth:`~repro.online.OnlineImputationEngine.snapshot`) restores an
    :class:`OnlineSession`; an ``"imputer"`` artifact (written by
    :meth:`BatchSession.save` / :meth:`BaseImputer.save`) restores a
    :class:`BatchSession`.
    """
    manifest, _ = read_artifact(path)
    kind = manifest.get("kind")
    if kind == "engine":
        return OnlineSession.restore(path)
    if kind == "imputer":
        return BatchSession.restore(path)
    raise ConfigurationError(
        f"artifact at {path} holds a {kind!r}, expected an 'engine' or "
        f"'imputer' artifact"
    )


def recover_session(
    wal_dir: Union[str, Path],
    checkpoint: Optional[Union[str, Path]] = None,
    *,
    reattach: bool = True,
    sync: Optional[str] = "default",
    fault_injector=None,
):
    """Rebuild an :class:`OnlineSession` from its checkpoint + WAL tail.

    Loads the last committed checkpoint (when ``checkpoint`` names a
    readable engine artifact), then replays every WAL op with a sequence
    number beyond the checkpoint's recorded position.  Without a usable
    checkpoint the session is rebuilt from the config recorded in the
    WAL's open record — valid only while the log still starts at sequence
    0 (an already-truncated log depends on its checkpoint).  A torn WAL
    tail (crash mid-frame) is dropped and reported, exactly matching what
    the crashed process never acknowledged.

    Returns ``(session, report)``; the report documents the checkpoint
    used, sequence window, replayed/skipped op counts and any torn tail.
    With ``reattach=True`` (default) the session continues logging to the
    same WAL directory, whose torn tail is repaired on open.
    """
    state = read_wal(wal_dir)
    session: Optional[OnlineSession] = None
    checkpoint_seq = 0
    checkpoint_used = False
    if checkpoint is not None:
        try:
            manifest, _ = read_artifact(checkpoint, expected_kind="engine")
        except ConfigurationError:
            if state.base_seq > 0:
                raise ConfigurationError(
                    f"cannot recover: the WAL at {wal_dir} was truncated at "
                    f"a checkpoint (base_seq={state.base_seq}) but the "
                    f"checkpoint at {checkpoint} is missing or unreadable"
                ) from None
            manifest = None
        if manifest is not None:
            session = OnlineSession.restore(checkpoint)
            wal_info = manifest.get("wal")
            if isinstance(wal_info, dict):
                checkpoint_seq = int(wal_info.get("last_seq", 0))
            checkpoint_used = True
    if session is None:
        if state.base_seq > 0:
            raise ConfigurationError(
                f"cannot recover from the WAL at {wal_dir} alone: it starts "
                f"at sequence {state.base_seq}, so the ops before it live in "
                f"the checkpoint it was truncated against — pass that "
                f"checkpoint path"
            )
        if state.config is None:
            raise ConfigurationError(
                f"cannot recover from the WAL at {wal_dir}: no checkpoint "
                f"was given and the log records no session config"
            )
        built = create_session(SessionConfig.from_wire(state.config))
        if not isinstance(built, OnlineSession):
            raise ConfigurationError(
                "WAL recovery rebuilds online sessions only; the recorded "
                "config resolves to a batch session"
            )
        session = built

    start_seq = max(checkpoint_seq, state.base_seq)
    replayed = 0
    skipped = 0
    for seq, op_wire in state.ops:
        if seq <= start_seq:
            skipped += 1
            continue
        session.mutate([MutationOp.from_wire(op_wire)])
        replayed += 1

    if reattach:
        wal = WriteAheadLog(
            wal_dir,
            sync=sync,
            config=state.config or session.config_wire(),
            injector=fault_injector,
        )
        session.attach_wal(wal, fault_injector=fault_injector)

    report = {
        "checkpoint": str(checkpoint) if checkpoint_used else None,
        "base_seq": state.base_seq,
        "start_seq": start_seq,
        "last_seq": state.last_seq,
        "replayed_ops": replayed,
        "skipped_ops": skipped,
        "torn_tail": state.torn,
        "segments": len(state.segments),
        "n_tuples": session.engine.n_tuples,
    }
    return session, report
