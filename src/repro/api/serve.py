"""The JSONL serve loop: named sessions multiplexed over a byte stream.

The wire format is newline-delimited JSON — one request object per line in,
one response object per line out, stdlib only.  Every request carries the
protocol version, an optional client-chosen ``id`` (echoed back so clients
can pipeline), a command, and — for session commands — the session name::

    {"v": 1, "id": 7, "cmd": "impute", "session": "s", "rows": [[1.0, null]]}

and every response is either a result or a typed error::

    {"v": 1, "id": 7, "ok": true, "result": {"rows": [[1.0, 2.5]]}}
    {"v": 1, "id": 7, "ok": false, "error": {"code": "not_fitted", "message": "..."}}

Commands
--------
``create`` (session, config), ``fit`` / ``append`` (session, rows),
``delete`` (session, indices), ``update`` (session, index, row),
``mutate`` (session, ops), ``impute`` (session, rows), ``stats`` (session),
``save`` (session, path), ``restore`` (session, path), ``close`` (session),
``sessions``, ``methods``, ``health``, ``ping``, ``metrics`` (format:
json|prometheus), ``traces`` (limit), ``shutdown``.

Observability
-------------
Every request is issued a trace ID, echoed as ``"trace"`` on the response
envelope (and inside error payloads) so a client log line can be joined
with the server-side trace.  Request latency and status land in the
process-wide :mod:`repro.obs` registry
(``repro_request_seconds{cmd=...}``, ``repro_requests_total``), the
handler body runs under a root span named ``serve.<cmd>`` (engine phases
nest beneath it), and the ``metrics`` command exposes the registry as JSON
or Prometheus text.  ``trace_log``/``trace_sample`` persist sampled traces
to rotated JSONL segments.

Transport is either stdio (``python -m repro serve --stdio``) or a TCP
socket (``--port``); the TCP server multiplexes every connection over one
shared session table behind a lock, so two clients can talk to the same
named session.  Malformed lines answer with an error response instead of
killing the loop — a serving process must outlive a bad client.

Failure containment
-------------------
With a ``wal_root``, every online session logs its accepted mutations to a
per-session :class:`~repro.reliability.WriteAheadLog` (``save`` checkpoints
atomically and truncates the log; ``restore`` replays any surviving WAL
tail onto the checkpoint).  A session whose engine raises mid-mutation is
*quarantined* — marked degraded, answering
:class:`~repro.exceptions.SessionQuarantinedError` instead of serving
half-applied state — while every other session keeps serving.  Request
lines are bounded (``max_request_bytes``), requests can carry a deadline
(``deadline_seconds`` → :class:`~repro.exceptions.DeadlineExceededError`),
and the ``health`` command reports per-session state, WAL lag and
last-checkpoint age.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

import numpy as np

from ..baselines.registry import METHOD_SPECS
from ..config import (
    get_obs_enabled,
    resolve_max_request_bytes,
    resolve_obs_trace_sample,
    resolve_request_deadline,
    resolve_wal_sync,
)
from ..exceptions import (
    ConfigurationError,
    DataError,
    DeadlineExceededError,
    NotFittedError,
    ProtocolError,
    SessionQuarantinedError,
    UnsupportedOperationError,
)
from ..obs import (
    JsonlTraceSink,
    get_registry,
    get_tracer,
    observe_request,
    set_sessions_open,
)
from ..reliability.wal import SEGMENT_SUFFIX, WriteAheadLog, read_wal
from .errors import error_code, error_payload
from .messages import (
    PROTOCOL_VERSION,
    ImputeRequest,
    MutationOp,
    SessionConfig,
    decode_rows,
    encode_rows,
    validate_session_name,
)
from .sessions import (
    ImputationSession,
    OnlineSession,
    create_session,
    recover_session,
    restore_session,
)

__all__ = ["SessionServer", "serve_stdio", "serve_tcp"]

#: Exceptions a command may raise *without* quarantining its session:
#: they are rejected up front by validation, before any state changed.
_CLEAN_REJECTIONS = (
    ProtocolError,
    UnsupportedOperationError,
    ConfigurationError,
    NotFittedError,
    DataError,
)


class SessionServer:
    """The transport-agnostic request handler behind every serve loop.

    Holds the named-session table and answers one decoded request at a
    time; :func:`serve_stdio` and :func:`serve_tcp` are thin transports
    around :meth:`handle_line`.  All methods are safe to call from multiple
    transport threads — session state is guarded by one lock (imputation is
    CPU-bound numpy work, so a finer grain would buy nothing under the GIL).

    ``artifact_root`` confines every ``save``/``restore`` path from the
    wire to one directory: requests naming paths that resolve outside it
    are rejected with a ``protocol`` error, so a client never gains a
    write-anywhere/read-anywhere primitive on the serving host.  The
    transport entry points (:func:`serve_stdio`, :func:`serve_tcp`, the
    ``serve`` CLI) default it to the working directory; the bare
    constructor leaves it ``None`` for in-process servers whose requests
    you author yourself.

    ``wal_root`` (optional) gives every online session a write-ahead log
    under ``wal_root/<session>/`` so its mutations survive a crash of the
    serving process; ``wal_sync`` picks the durability/latency trade-off
    (see :mod:`repro.reliability`).  ``deadline_seconds`` bounds each
    request's wall-clock, ``max_request_bytes`` bounds each request line,
    and ``fault_injector`` threads a :class:`~repro.reliability.FaultPlan`
    through the WAL, the artifact writer and request dispatch for chaos
    testing.  The ``"default"`` sentinels resolve through the
    :mod:`repro.config` knobs.
    """

    def __init__(
        self,
        artifact_root: Optional[Union[str, Path]] = None,
        *,
        wal_root: Optional[Union[str, Path]] = None,
        wal_sync: str = "default",
        deadline_seconds: Union[str, float, None] = "default",
        max_request_bytes: Union[str, int, None] = "default",
        fault_injector=None,
        trace_log: Optional[Union[str, Path]] = None,
        trace_sample: Union[str, float, None] = "default",
    ):
        self.sessions: Dict[str, ImputationSession] = {}
        self.running = True
        self.artifact_root = (
            None if artifact_root is None else Path(artifact_root).resolve()
        )
        self.wal_root = None if wal_root is None else Path(wal_root).resolve()
        self.wal_sync = resolve_wal_sync(wal_sync)
        self.deadline_seconds = resolve_request_deadline(deadline_seconds)
        self.max_request_bytes = resolve_max_request_bytes(max_request_bytes)
        self.fault_injector = fault_injector
        #: Quarantined sessions: name -> reason the engine was declared
        #: untrustworthy.  Populated when a mutation fails mid-apply.
        self.quarantined: Dict[str, str] = {}
        #: Bound port once :func:`serve_tcp` is listening (None for stdio).
        self.tcp_port: Optional[int] = None
        self._checkpoint_at: Dict[str, float] = {}
        self._started = time.monotonic()
        self._lock = threading.Lock()
        #: The process-wide observability handles: one registry/tracer per
        #: process so engine-phase spans land in the same trace as the
        #: request that triggered them.
        self.metrics = get_registry()
        self.tracer = get_tracer()
        self.trace_sink: Optional[JsonlTraceSink] = None
        if not (isinstance(trace_sample, str) and trace_sample == "default"):
            self.tracer.configure(
                sample=resolve_obs_trace_sample(trace_sample)
            )
        if trace_log is not None:
            self.trace_sink = JsonlTraceSink(trace_log)
            self.tracer.configure(sink=self.trace_sink)

    # ------------------------------------------------------------------ #
    # Envelope
    # ------------------------------------------------------------------ #
    def handle_line(self, line: str) -> Optional[Dict[str, object]]:
        """Answer one raw request line (``None`` for blank lines)."""
        line = line.strip()
        if not line:
            return None
        request_id = None
        try:
            if (
                self.max_request_bytes is not None
                and len(line.encode("utf-8", errors="surrogateescape"))
                > self.max_request_bytes
            ):
                raise ProtocolError(
                    f"request line exceeds max_request_bytes="
                    f"{self.max_request_bytes}; split the request into "
                    f"smaller batches"
                )
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"malformed JSON request: {exc}") from exc
            if not isinstance(request, dict):
                raise ProtocolError("a request must be a JSON object")
            request_id = request.get("id")
            return self.handle_request(request)
        except Exception as exc:  # noqa: BLE001 - the loop must survive bad input
            observe_request("unknown", error_code(exc))
            return self._error(request_id, exc, self.tracer.new_trace_id())

    def handle_request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one decoded request object.

        Every request — valid or not — is issued a trace ID (echoed as
        ``"trace"`` on the response and inside error payloads) and counted
        into the per-command latency/status histograms.
        """
        request_id = request.get("id")
        cmd = request.get("cmd")
        # `cmd` may be any JSON value; only known commands become metric
        # labels, so a hostile client cannot explode label cardinality.
        cmd_label = cmd if isinstance(cmd, str) and cmd in self._COMMANDS else "unknown"
        trace_id = self.tracer.new_trace_id()
        started = time.perf_counter()
        status = "ok"
        try:
            version = request.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version!r}; this server "
                    f"speaks version {PROTOCOL_VERSION}"
                )
            # `cmd` may be any JSON value, including unhashable ones.
            handler = (
                self._COMMANDS.get(cmd) if isinstance(cmd, str) else None
            )
            if handler is None:
                raise ProtocolError(
                    f"unknown command {cmd!r}; available commands: "
                    f"{sorted(self._COMMANDS)}"
                )
            result = self._dispatch(handler, request, cmd_label, trace_id)
            return {
                "v": PROTOCOL_VERSION,
                "id": request_id,
                "ok": True,
                "result": result,
                "trace": trace_id,
            }
        except Exception as exc:  # noqa: BLE001 - typed error response instead
            status = error_code(exc)
            return self._error(request_id, exc, trace_id)
        finally:
            observe_request(
                cmd_label, status, time.perf_counter() - started
            )

    def _dispatch(self, handler, request: Dict[str, object],
                  cmd_label: str = "unknown",
                  trace_id: Optional[str] = None):
        """Run one command under the lock, bounded by the deadline (if any).

        With a deadline the handler runs in a worker thread; on overrun the
        caller gets :class:`DeadlineExceededError` while the worker finishes
        in the background still holding the lock — the engine cannot be
        preempted mid-mutation, so the session stays consistent and later
        requests simply queue on the lock.
        """
        session = request.get("session")
        attrs = {"session": session} if isinstance(session, str) else {}
        if self.deadline_seconds is None:
            with self._lock:
                with self.tracer.trace(
                    f"serve.{cmd_label}", trace_id=trace_id, **attrs
                ):
                    if self.fault_injector is not None:
                        self.fault_injector.fire("serve.dispatch")
                    return handler(self, request)
        outcome: Dict[str, object] = {}
        done = threading.Event()

        def run():
            try:
                with self._lock:
                    # The root span opens in the worker thread — the thread
                    # the handler body (and its engine child spans) runs on.
                    with self.tracer.trace(
                        f"serve.{cmd_label}", trace_id=trace_id, **attrs
                    ):
                        if self.fault_injector is not None:
                            self.fault_injector.fire("serve.dispatch")
                        outcome["result"] = handler(self, request)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcome["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        if not done.wait(self.deadline_seconds):
            raise DeadlineExceededError(
                f"request {request.get('cmd')!r} exceeded the "
                f"{self.deadline_seconds}s deadline; it keeps running in the "
                f"background and later requests will queue behind it"
            )
        if "error" in outcome:
            raise outcome["error"]  # type: ignore[misc]
        return outcome.get("result")

    @staticmethod
    def _error(request_id, exc: BaseException,
               trace_id: Optional[str] = None) -> Dict[str, object]:
        payload = error_payload(exc)
        response = {
            "v": PROTOCOL_VERSION,
            "id": request_id,
            "ok": False,
            "error": payload,
        }
        if trace_id is not None:
            payload["trace"] = trace_id
            response["trace"] = trace_id
        return response

    def oversized_response(self, request_id=None) -> Dict[str, object]:
        """The typed error a transport answers for an over-long line."""
        exc = ProtocolError(
            f"request line exceeds max_request_bytes="
            f"{self.max_request_bytes}; split the request into smaller "
            f"batches"
        )
        observe_request("unknown", error_code(exc))
        return self._error(request_id, exc, self.tracer.new_trace_id())

    # ------------------------------------------------------------------ #
    # Command implementations (called with the lock held)
    # ------------------------------------------------------------------ #
    def _get_session(self, request) -> ImputationSession:
        name = self._session_name(request)
        if name in self.quarantined:
            raise SessionQuarantinedError(
                f"session {name!r} is quarantined "
                f"({self.quarantined[name]}); close it and recover from its "
                f"checkpoint/WAL"
            )
        session = self.sessions.get(name)
        if session is None:
            raise ProtocolError(
                f"no session named {name!r}; create or restore it first "
                f"(open sessions: {sorted(self.sessions)})"
            )
        return session

    def _session_name(self, request) -> str:
        return validate_session_name(request.get("session"))

    def _describe(self, name: str, session: ImputationSession) -> Dict[str, object]:
        return {
            "session": name,
            "kind": session.kind,
            "method": session.method,
            "capabilities": session.capabilities.as_dict(),
            "durable": getattr(session, "wal", None) is not None,
        }

    def _quarantine(self, name: str, exc: BaseException) -> SessionQuarantinedError:
        """Mark a session degraded and build the error its caller gets.

        Invoked when the engine raised past the point where state may have
        changed: the session's in-memory view can no longer be trusted, so
        it stops answering until closed and recovered.  Other sessions are
        untouched.
        """
        reason = f"{type(exc).__name__}: {exc}"
        self.quarantined[name] = reason
        return SessionQuarantinedError(
            f"session {name!r} is quarantined: its engine raised {reason} "
            f"mid-mutation; other sessions are unaffected — close it and "
            f"recover from its checkpoint/WAL"
        )

    def _apply_ops(self, name: str, session: ImputationSession, ops) -> int:
        """Apply mutation ops one at a time with quarantine-on-failure.

        A *clean rejection* (validation error before any op touched the
        store) propagates as-is; any failure after the first applied op —
        or any unexpected exception type — quarantines the session, because
        the store may now hold a half-applied batch.
        """
        applied = 0
        try:
            for op in ops:
                session.mutate([op])
                applied += 1
        except Exception as exc:  # noqa: BLE001 - classified below
            if isinstance(exc, _CLEAN_REJECTIONS) and applied == 0:
                raise
            raise self._quarantine(name, exc) from exc
        return applied

    def _wal_dir(self, name: str) -> Path:
        validate_session_name(name, durable=True)
        return self.wal_root / name

    def _cmd_create(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        if name in self.sessions:
            raise ProtocolError(f"session {name!r} already exists")
        config = SessionConfig.from_wire(request.get("config"))
        session = create_session(config)
        if self.wal_root is not None and isinstance(session, OnlineSession):
            wal_dir = self._wal_dir(name)
            if wal_dir.is_dir() and any(wal_dir.glob("*" + SEGMENT_SUFFIX)):
                state = read_wal(wal_dir)
                if state.ops or state.base_seq > 0 or state.torn is not None:
                    raise ProtocolError(
                        f"session {name!r} has an existing WAL at {wal_dir}; "
                        f"'restore' it to recover the logged mutations (or "
                        f"run `python -m repro recover`), or remove the "
                        f"directory to start fresh"
                    )
                # Only an empty open record survives from a previous life:
                # safe to discard so the new session's config governs.
                for segment in sorted(wal_dir.glob("*" + SEGMENT_SUFFIX)):
                    segment.unlink()
            wal = WriteAheadLog(
                wal_dir,
                sync=self.wal_sync,
                config=config.to_wire(),
                injector=self.fault_injector,
            )
            session.attach_wal(wal, fault_injector=self.fault_injector)
        self.sessions[name] = session
        set_sessions_open(len(self.sessions))
        return self._describe(name, session)

    def _cmd_fit(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        rows = decode_rows(request.get("rows"), what="fit rows")
        try:
            session.fit(rows)
        except _CLEAN_REJECTIONS:
            raise
        except Exception as exc:  # noqa: BLE001 - mid-mutation failure
            raise self._quarantine(name, exc) from exc
        # Sessions learn from the *complete* rows only; report both counts
        # so a client sees how many submitted tuples actually trained.
        n_complete = int((~np.isnan(rows).any(axis=1)).sum())
        return {
            "fitted": True,
            "n_rows": int(rows.shape[0]),
            "n_complete": n_complete,
        }

    def _cmd_append(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        rows = decode_rows(request.get("rows"), what="append rows")
        self._apply_ops(name, session, [MutationOp.append(rows)])
        return {"appended": int(rows.shape[0])}

    def _cmd_delete(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        op = MutationOp.from_wire(
            {"op": "delete", "indices": request.get("indices")}
        )
        self._apply_ops(name, session, [op])
        return {"deleted": int(op.indices.shape[0])}

    def _cmd_update(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        op = MutationOp.from_wire(
            {"op": "update", "index": request.get("index"), "row": request.get("row")}
        )
        self._apply_ops(name, session, [op])
        return {"updated": int(op.index)}

    def _cmd_mutate(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        ops_wire = request.get("ops")
        if not isinstance(ops_wire, list) or not ops_wire:
            raise ProtocolError("mutate needs a non-empty 'ops' list")
        ops = [MutationOp.from_wire(op) for op in ops_wire]
        return {"applied": self._apply_ops(name, session, ops)}

    def _cmd_impute(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        impute_request = ImputeRequest.from_wire({"rows": request.get("rows")})
        values = session.impute(impute_request)
        return {
            "rows": encode_rows(values),
            "imputed_cells": impute_request.n_missing,
        }

    def _server_config(self) -> Dict[str, object]:
        """The server's resolved knobs, as health/stats self-description."""
        return {
            "wal_sync": self.wal_sync,
            "wal_root": None if self.wal_root is None else str(self.wal_root),
            "artifact_root": (
                None if self.artifact_root is None else str(self.artifact_root)
            ),
            "deadline_seconds": self.deadline_seconds,
            "max_request_bytes": self.max_request_bytes,
            "obs_enabled": get_obs_enabled(),
            "trace_sample": self.tracer.sample,
            "trace_log": (
                None if self.trace_sink is None
                else str(self.trace_sink.directory)
            ),
        }

    def _cmd_stats(self, request) -> Dict[str, object]:
        stats = self._get_session(request).stats()
        stats["server"] = {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "config": self._server_config(),
        }
        return stats

    def _cmd_metrics(self, request) -> Dict[str, object]:
        """The process-wide metrics registry, as JSON or Prometheus text."""
        fmt = request.get("format", "json")
        if fmt == "json":
            return {"format": "json", "metrics": self.metrics.snapshot()}
        if fmt in ("prometheus", "text"):
            return {
                "format": "prometheus",
                "content_type": "text/plain; version=0.0.4",
                "text": self.metrics.to_prometheus(),
            }
        raise ProtocolError(
            f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
        )

    def _cmd_traces(self, request) -> Dict[str, object]:
        """The newest completed request traces from the in-memory ring."""
        limit = request.get("limit", 16)
        if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
            raise ProtocolError(
                f"traces 'limit' must be a non-negative integer, got {limit!r}"
            )
        return {"traces": self.tracer.recent(limit)}

    def _artifact_path(self, request, command: str) -> Path:
        path = request.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError(f"{command} needs an artifact 'path'")
        resolved = Path(path)
        if self.artifact_root is not None:
            resolved = (self.artifact_root / resolved).resolve()
            if (
                self.artifact_root != resolved
                and self.artifact_root not in resolved.parents
            ):
                raise ProtocolError(
                    f"artifact path {path!r} escapes the server's artifact "
                    f"root; use a relative path inside it"
                )
        return resolved

    def _cmd_save(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        path = str(session.save(self._artifact_path(request, "save")))
        self._checkpoint_at[name] = time.monotonic()
        return {"path": path}

    def _cmd_restore(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        if name in self.sessions:
            raise ProtocolError(f"session {name!r} already exists")
        path = self._artifact_path(request, "restore")
        if self.wal_root is not None:
            wal_dir = self._wal_dir(name)
            if wal_dir.is_dir() and any(wal_dir.glob("*" + SEGMENT_SUFFIX)):
                # A WAL survives from a previous life of this session:
                # replay its tail onto the checkpoint instead of silently
                # serving the (possibly stale) checkpoint alone.
                session, report = recover_session(
                    wal_dir,
                    checkpoint=path,
                    sync=self.wal_sync,
                    fault_injector=self.fault_injector,
                )
                self.sessions[name] = session
                self.quarantined.pop(name, None)
                set_sessions_open(len(self.sessions))
                description = self._describe(name, session)
                description["recovered"] = {
                    "replayed_ops": report["replayed_ops"],
                    "skipped_ops": report["skipped_ops"],
                    "torn_tail": report["torn_tail"],
                }
                return description
        session = restore_session(path)
        if self.wal_root is not None and isinstance(session, OnlineSession):
            wal = WriteAheadLog(
                self._wal_dir(name),
                sync=self.wal_sync,
                config=session.config_wire(),
                injector=self.fault_injector,
            )
            session.attach_wal(wal, fault_injector=self.fault_injector)
        self.sessions[name] = session
        set_sessions_open(len(self.sessions))
        return self._describe(name, session)

    def _cmd_close(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self.sessions.get(name)
        if session is None:
            raise ProtocolError(f"no session named {name!r}")
        close = getattr(session, "close", None)
        if callable(close):
            close()
        del self.sessions[name]
        self.quarantined.pop(name, None)
        self._checkpoint_at.pop(name, None)
        set_sessions_open(len(self.sessions))
        return {"closed": name}

    def _cmd_sessions(self, request) -> Dict[str, object]:
        return {
            "sessions": [
                self._describe(name, session)
                for name, session in sorted(self.sessions.items())
            ]
        }

    def _cmd_methods(self, request) -> Dict[str, object]:
        return {
            "methods": [
                {"method": name, "capabilities": spec.capabilities.as_dict()}
                for name, spec in METHOD_SPECS.items()
            ]
        }

    def _cmd_ping(self, request) -> Dict[str, object]:
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    def _cmd_health(self, request) -> Dict[str, object]:
        """Liveness + per-session durability report (never raises)."""
        now = time.monotonic()
        sessions: Dict[str, Dict[str, object]] = {}
        for name, session in sorted(self.sessions.items()):
            entry: Dict[str, object] = {
                "state": "degraded" if name in self.quarantined else "ok",
            }
            if name in self.quarantined:
                entry["reason"] = self.quarantined[name]
            wal = getattr(session, "wal", None)
            if wal is not None:
                stats = wal.stats()
                entry["wal"] = {
                    "sync": stats["sync"],
                    "lag_records": stats["lag_records"],
                    "segments": stats["segments"],
                    "bytes": stats["bytes"],
                }
            checkpointed = self._checkpoint_at.get(name)
            entry["last_checkpoint_age_seconds"] = (
                None if checkpointed is None else round(now - checkpointed, 3)
            )
            sessions[name] = entry
        return {
            "status": "serving" if self.running else "stopping",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(now - self._started, 3),
            "config": self._server_config(),
            "sessions": sessions,
            "degraded": sorted(self.quarantined),
        }

    def close_sessions(self) -> None:
        """Release every session's resources (WAL handles stay on disk).

        Idempotent; the transports call it when their input ends — EOF is
        an orderly end of a stdio pipeline, not a crash, so file handles
        must not be left to the garbage collector.
        """
        for session in self.sessions.values():
            close = getattr(session, "close", None)
            if callable(close):
                close()
        if self.trace_sink is not None:
            self.trace_sink.close()

    def _cmd_shutdown(self, request) -> Dict[str, object]:
        self.running = False
        self.close_sessions()
        return {"stopping": True}

    _COMMANDS = {
        "create": _cmd_create,
        "fit": _cmd_fit,
        "append": _cmd_append,
        "delete": _cmd_delete,
        "update": _cmd_update,
        "mutate": _cmd_mutate,
        "impute": _cmd_impute,
        "stats": _cmd_stats,
        "save": _cmd_save,
        "restore": _cmd_restore,
        "close": _cmd_close,
        "sessions": _cmd_sessions,
        "methods": _cmd_methods,
        "health": _cmd_health,
        "ping": _cmd_ping,
        "metrics": _cmd_metrics,
        "traces": _cmd_traces,
        "shutdown": _cmd_shutdown,
    }


def serve_stdio(
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
    server: Optional[SessionServer] = None,
) -> int:
    """Serve requests line-by-line from ``stdin`` until EOF or ``shutdown``.

    Without an explicit ``server`` the loop runs confined to the working
    directory (save/restore paths may not escape it); pass a
    :class:`SessionServer` of your own to choose a different artifact root
    or to run unconfined.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = server or SessionServer(artifact_root=".")
    limit = server.max_request_bytes
    try:
        _serve_stdio_loop(stdin, stdout, server, limit)
    finally:
        server.close_sessions()
    return 0


def _serve_stdio_loop(stdin, stdout, server, limit) -> None:
    while True:
        line = stdin.readline() if limit is None else stdin.readline(limit + 1)
        if not line:
            break
        if limit is not None and len(line) > limit and not line.endswith("\n"):
            # Over-long line: answer a typed error *without* buffering the
            # rest of it — drain to the next newline in bounded chunks.
            while True:
                rest = stdin.readline(1 << 16)
                if not rest or rest.endswith("\n"):
                    break
            response = server.oversized_response()
        else:
            response = server.handle_line(line)
        if response is None:
            continue
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        if not server.running:
            break


class _JsonlTCPHandler(socketserver.StreamRequestHandler):
    def handle(self):
        server: SessionServer = self.server.session_server  # type: ignore[attr-defined]
        limit = server.max_request_bytes
        while True:
            try:
                raw = (
                    self.rfile.readline()
                    if limit is None
                    else self.rfile.readline(limit + 1)
                )
            except (ConnectionResetError, OSError):
                return  # client vanished: nothing left to answer
            if not raw:
                return
            if not raw.endswith(b"\n"):
                if limit is not None and len(raw) > limit:
                    # Over-long line: drain to its newline, then answer a
                    # typed error so the client can correct itself.
                    try:
                        while True:
                            rest = self.rfile.readline(1 << 16)
                            if not rest or rest.endswith(b"\n"):
                                break
                    except (ConnectionResetError, OSError):
                        return
                    if not rest:
                        return  # disconnected mid-line: discard the torn frame
                    response = server.oversized_response()
                else:
                    # Client disconnected mid-line: the frame is torn, so
                    # discard it and close this connection quietly.
                    return
            else:
                response = server.handle_line(
                    raw.decode("utf-8", errors="replace")
                )
            if response is None:
                continue
            try:
                self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                return
            if not server.running:
                self.server.shutdown_event.set()  # type: ignore[attr-defined]
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_tcp(
    host: str = "127.0.0.1",
    port: int = 7007,
    server: Optional[SessionServer] = None,
    ready: Optional[threading.Event] = None,
    join_timeout: float = 5.0,
) -> int:
    """Serve requests over TCP until a client sends ``shutdown``.

    Every connection shares one session table, so a client can create a
    session, disconnect, and another can keep mutating it.  ``ready`` (if
    given) is set once the socket is listening — handy for tests.  Without
    an explicit ``server`` the loop runs confined to the working directory
    (save/restore paths may not escape it).

    If the accept-loop thread fails to stop within ``join_timeout`` seconds
    of shutdown, the leak is reported on stderr and raised as
    :class:`RuntimeError` — a silently surviving serve thread would keep
    the session table (and any WAL handles) alive behind the caller's back.
    """
    session_server = server or SessionServer(artifact_root=".")
    with _ThreadingTCPServer((host, port), _JsonlTCPHandler) as tcp:
        tcp.session_server = session_server  # type: ignore[attr-defined]
        tcp.shutdown_event = threading.Event()  # type: ignore[attr-defined]
        thread = threading.Thread(target=tcp.serve_forever, daemon=True)
        thread.start()
        session_server.tcp_port = tcp.server_address[1]
        if ready is not None:
            ready.set()
        try:
            tcp.shutdown_event.wait()  # type: ignore[attr-defined]
        finally:
            session_server.close_sessions()
            tcp.shutdown()
            thread.join(timeout=join_timeout)
            if thread.is_alive():
                message = (
                    f"serve_tcp: accept loop still alive {join_timeout}s "
                    f"after shutdown; a handler thread may be wedged"
                )
                print(f"error: {message}", file=sys.stderr)
                raise RuntimeError(message)
    return 0
