"""The JSONL serve loop: named sessions multiplexed over a byte stream.

The wire format is newline-delimited JSON — one request object per line in,
one response object per line out, stdlib only.  Every request carries the
protocol version, an optional client-chosen ``id`` (echoed back so clients
can pipeline), a command, and — for session commands — the session name::

    {"v": 1, "id": 7, "cmd": "impute", "session": "s", "rows": [[1.0, null]]}

and every response is either a result or a typed error::

    {"v": 1, "id": 7, "ok": true, "result": {"rows": [[1.0, 2.5]]}}
    {"v": 1, "id": 7, "ok": false, "error": {"code": "not_fitted", "message": "..."}}

Commands
--------
``create`` (session, config), ``fit`` / ``append`` (session, rows),
``delete`` (session, indices), ``update`` (session, index, row),
``mutate`` (session, ops), ``impute`` (session, rows), ``stats`` (session),
``save`` (session, path), ``restore`` (session, path), ``close`` (session),
``sessions``, ``methods``, ``ping``, ``shutdown``.

Transport is either stdio (``python -m repro serve --stdio``) or a TCP
socket (``--port``); the TCP server multiplexes every connection over one
shared session table behind a lock, so two clients can talk to the same
named session.  Malformed lines answer with an error response instead of
killing the loop — a serving process must outlive a bad client.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

import numpy as np

from ..baselines.registry import METHOD_SPECS
from ..exceptions import ProtocolError
from .errors import error_payload
from .messages import (
    PROTOCOL_VERSION,
    ImputeRequest,
    MutationOp,
    SessionConfig,
    decode_rows,
    encode_rows,
)
from .sessions import ImputationSession, create_session, restore_session

__all__ = ["SessionServer", "serve_stdio", "serve_tcp"]


class SessionServer:
    """The transport-agnostic request handler behind every serve loop.

    Holds the named-session table and answers one decoded request at a
    time; :func:`serve_stdio` and :func:`serve_tcp` are thin transports
    around :meth:`handle_line`.  All methods are safe to call from multiple
    transport threads — session state is guarded by one lock (imputation is
    CPU-bound numpy work, so a finer grain would buy nothing under the GIL).

    ``artifact_root`` confines every ``save``/``restore`` path from the
    wire to one directory: requests naming paths that resolve outside it
    are rejected with a ``protocol`` error, so a client never gains a
    write-anywhere/read-anywhere primitive on the serving host.  The
    transport entry points (:func:`serve_stdio`, :func:`serve_tcp`, the
    ``serve`` CLI) default it to the working directory; the bare
    constructor leaves it ``None`` for in-process servers whose requests
    you author yourself.
    """

    def __init__(self, artifact_root: Optional[Union[str, Path]] = None):
        self.sessions: Dict[str, ImputationSession] = {}
        self.running = True
        self.artifact_root = (
            None if artifact_root is None else Path(artifact_root).resolve()
        )
        #: Bound port once :func:`serve_tcp` is listening (None for stdio).
        self.tcp_port: Optional[int] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Envelope
    # ------------------------------------------------------------------ #
    def handle_line(self, line: str) -> Optional[Dict[str, object]]:
        """Answer one raw request line (``None`` for blank lines)."""
        line = line.strip()
        if not line:
            return None
        request_id = None
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"malformed JSON request: {exc}") from exc
            if not isinstance(request, dict):
                raise ProtocolError("a request must be a JSON object")
            request_id = request.get("id")
            return self.handle_request(request)
        except Exception as exc:  # noqa: BLE001 - the loop must survive bad input
            return self._error(request_id, exc)

    def handle_request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one decoded request object."""
        request_id = request.get("id")
        try:
            version = request.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version!r}; this server "
                    f"speaks version {PROTOCOL_VERSION}"
                )
            cmd = request.get("cmd")
            handler = self._COMMANDS.get(cmd)
            if handler is None:
                raise ProtocolError(
                    f"unknown command {cmd!r}; available commands: "
                    f"{sorted(self._COMMANDS)}"
                )
            with self._lock:
                result = handler(self, request)
            return {
                "v": PROTOCOL_VERSION,
                "id": request_id,
                "ok": True,
                "result": result,
            }
        except Exception as exc:  # noqa: BLE001 - typed error response instead
            return self._error(request_id, exc)

    @staticmethod
    def _error(request_id, exc: BaseException) -> Dict[str, object]:
        return {
            "v": PROTOCOL_VERSION,
            "id": request_id,
            "ok": False,
            "error": error_payload(exc),
        }

    # ------------------------------------------------------------------ #
    # Command implementations (called with the lock held)
    # ------------------------------------------------------------------ #
    def _get_session(self, request) -> ImputationSession:
        name = self._session_name(request)
        session = self.sessions.get(name)
        if session is None:
            raise ProtocolError(
                f"no session named {name!r}; create or restore it first "
                f"(open sessions: {sorted(self.sessions)})"
            )
        return session

    def _session_name(self, request) -> str:
        name = request.get("session")
        if not isinstance(name, str) or not name:
            raise ProtocolError("this command needs a 'session' name")
        return name

    def _describe(self, name: str, session: ImputationSession) -> Dict[str, object]:
        return {
            "session": name,
            "kind": session.kind,
            "method": session.method,
            "capabilities": session.capabilities.as_dict(),
        }

    def _cmd_create(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        if name in self.sessions:
            raise ProtocolError(f"session {name!r} already exists")
        config = SessionConfig.from_wire(request.get("config"))
        session = create_session(config)
        self.sessions[name] = session
        return self._describe(name, session)

    def _cmd_fit(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        rows = decode_rows(request.get("rows"), what="fit rows")
        session.fit(rows)
        # Sessions learn from the *complete* rows only; report both counts
        # so a client sees how many submitted tuples actually trained.
        n_complete = int((~np.isnan(rows).any(axis=1)).sum())
        return {
            "fitted": True,
            "n_rows": int(rows.shape[0]),
            "n_complete": n_complete,
        }

    def _cmd_append(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        rows = decode_rows(request.get("rows"), what="append rows")
        session.mutate([MutationOp.append(rows)])
        return {"appended": int(rows.shape[0])}

    def _cmd_delete(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        op = MutationOp.from_wire(
            {"op": "delete", "indices": request.get("indices")}
        )
        session.mutate([op])
        return {"deleted": int(op.indices.shape[0])}

    def _cmd_update(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        op = MutationOp.from_wire(
            {"op": "update", "index": request.get("index"), "row": request.get("row")}
        )
        session.mutate([op])
        return {"updated": int(op.index)}

    def _cmd_mutate(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        ops_wire = request.get("ops")
        if not isinstance(ops_wire, list) or not ops_wire:
            raise ProtocolError("mutate needs a non-empty 'ops' list")
        ops = [MutationOp.from_wire(op) for op in ops_wire]
        session.mutate(ops)
        return {"applied": len(ops)}

    def _cmd_impute(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        impute_request = ImputeRequest.from_wire({"rows": request.get("rows")})
        values = session.impute(impute_request)
        return {
            "rows": encode_rows(values),
            "imputed_cells": impute_request.n_missing,
        }

    def _cmd_stats(self, request) -> Dict[str, object]:
        return self._get_session(request).stats()

    def _artifact_path(self, request, command: str) -> Path:
        path = request.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError(f"{command} needs an artifact 'path'")
        resolved = Path(path)
        if self.artifact_root is not None:
            resolved = (self.artifact_root / resolved).resolve()
            if (
                self.artifact_root != resolved
                and self.artifact_root not in resolved.parents
            ):
                raise ProtocolError(
                    f"artifact path {path!r} escapes the server's artifact "
                    f"root; use a relative path inside it"
                )
        return resolved

    def _cmd_save(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        return {"path": str(session.save(self._artifact_path(request, "save")))}

    def _cmd_restore(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        if name in self.sessions:
            raise ProtocolError(f"session {name!r} already exists")
        session = restore_session(self._artifact_path(request, "restore"))
        self.sessions[name] = session
        return self._describe(name, session)

    def _cmd_close(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        if name not in self.sessions:
            raise ProtocolError(f"no session named {name!r}")
        del self.sessions[name]
        return {"closed": name}

    def _cmd_sessions(self, request) -> Dict[str, object]:
        return {
            "sessions": [
                self._describe(name, session)
                for name, session in sorted(self.sessions.items())
            ]
        }

    def _cmd_methods(self, request) -> Dict[str, object]:
        return {
            "methods": [
                {"method": name, "capabilities": spec.capabilities.as_dict()}
                for name, spec in METHOD_SPECS.items()
            ]
        }

    def _cmd_ping(self, request) -> Dict[str, object]:
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    def _cmd_shutdown(self, request) -> Dict[str, object]:
        self.running = False
        return {"stopping": True}

    _COMMANDS = {
        "create": _cmd_create,
        "fit": _cmd_fit,
        "append": _cmd_append,
        "delete": _cmd_delete,
        "update": _cmd_update,
        "mutate": _cmd_mutate,
        "impute": _cmd_impute,
        "stats": _cmd_stats,
        "save": _cmd_save,
        "restore": _cmd_restore,
        "close": _cmd_close,
        "sessions": _cmd_sessions,
        "methods": _cmd_methods,
        "ping": _cmd_ping,
        "shutdown": _cmd_shutdown,
    }


def serve_stdio(
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
    server: Optional[SessionServer] = None,
) -> int:
    """Serve requests line-by-line from ``stdin`` until EOF or ``shutdown``.

    Without an explicit ``server`` the loop runs confined to the working
    directory (save/restore paths may not escape it); pass a
    :class:`SessionServer` of your own to choose a different artifact root
    or to run unconfined.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = server or SessionServer(artifact_root=".")
    for line in stdin:
        response = server.handle_line(line)
        if response is None:
            continue
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        if not server.running:
            break
    return 0


class _JsonlTCPHandler(socketserver.StreamRequestHandler):
    def handle(self):
        server: SessionServer = self.server.session_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            response = server.handle_line(raw.decode("utf-8", errors="replace"))
            if response is None:
                continue
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if not server.running:
                self.server.shutdown_event.set()  # type: ignore[attr-defined]
                break


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_tcp(
    host: str = "127.0.0.1",
    port: int = 7007,
    server: Optional[SessionServer] = None,
    ready: Optional[threading.Event] = None,
) -> int:
    """Serve requests over TCP until a client sends ``shutdown``.

    Every connection shares one session table, so a client can create a
    session, disconnect, and another can keep mutating it.  ``ready`` (if
    given) is set once the socket is listening — handy for tests.  Without
    an explicit ``server`` the loop runs confined to the working directory
    (save/restore paths may not escape it).
    """
    session_server = server or SessionServer(artifact_root=".")
    with _ThreadingTCPServer((host, port), _JsonlTCPHandler) as tcp:
        tcp.session_server = session_server  # type: ignore[attr-defined]
        tcp.shutdown_event = threading.Event()  # type: ignore[attr-defined]
        thread = threading.Thread(target=tcp.serve_forever, daemon=True)
        thread.start()
        session_server.tcp_port = tcp.server_address[1]
        if ready is not None:
            ready.set()
        try:
            tcp.shutdown_event.wait()  # type: ignore[attr-defined]
        finally:
            tcp.shutdown()
            thread.join(timeout=5)
    return 0
