"""The JSONL serve loop: named sessions multiplexed over a byte stream.

The wire format is newline-delimited JSON — one request object per line in,
one response object per line out, stdlib only.  Every request carries the
protocol version, an optional client-chosen ``id`` (echoed back so clients
can pipeline), a command, and — for session commands — the session name::

    {"v": 1, "id": 7, "cmd": "impute", "session": "s", "rows": [[1.0, null]]}

and every response is either a result or a typed error::

    {"v": 1, "id": 7, "ok": true, "result": {"rows": [[1.0, 2.5]]}}
    {"v": 1, "id": 7, "ok": false, "error": {"code": "not_fitted", "message": "..."}}

Commands
--------
``create`` (session, config), ``fit`` / ``append`` (session, rows),
``delete`` (session, indices), ``update`` (session, index, row),
``mutate`` (session, ops), ``impute`` (session, rows), ``stats`` (session),
``save`` (session, path), ``restore`` (session, path), ``close`` (session),
``sessions``, ``methods``, ``health``, ``ping``, ``metrics`` (format:
json|prometheus), ``traces`` (limit), ``shutdown``.

Observability
-------------
Every request is issued a trace ID, echoed as ``"trace"`` on the response
envelope (and inside error payloads) so a client log line can be joined
with the server-side trace.  Request latency and status land in the
process-wide :mod:`repro.obs` registry
(``repro_request_seconds{cmd=...}``, ``repro_requests_total``), the
handler body runs under a root span named ``serve.<cmd>`` (engine phases
nest beneath it), and the ``metrics`` command exposes the registry as JSON
or Prometheus text.  ``trace_log``/``trace_sample`` persist sampled traces
to rotated JSONL segments.

Transport is either stdio (``python -m repro serve --stdio``) or a TCP
socket (``--port``); the TCP server multiplexes every connection over one
shared session table, so two clients can talk to the same named session.
Malformed lines answer with an error response instead of killing the loop
— a serving process must outlive a bad client.

Concurrency
-----------
Transports do not execute session commands inline: they parse each line
and enqueue it on the :class:`~repro.api.scheduling.RequestScheduler`,
whose bounded worker pool drains per-session FIFO queues concurrently —
one session's requests execute in submission order, different sessions in
parallel — and coalesces runs of single-row ``impute`` requests into one
batched kernel call.  Session state is guarded by *per-session* locks
plus a short-critical-section registry lock over the session table, so a
slow (or deadline-abandoned) request poisons one session, never the
server.  Admission control rejects before any state changes: per-request
row quotas and a live-session quota answer typed ``quota`` errors, full
queues answer ``overloaded``, and a shared-secret ``auth_token`` (checked
on every request when set) answers ``auth``.

Failure containment
-------------------
With a ``wal_root``, every online session logs its accepted mutations to a
per-session :class:`~repro.reliability.WriteAheadLog` (``save`` checkpoints
atomically and truncates the log; ``restore`` replays any surviving WAL
tail onto the checkpoint).  A session whose engine raises mid-mutation is
*quarantined* — marked degraded, answering
:class:`~repro.exceptions.SessionQuarantinedError` instead of serving
half-applied state — while every other session keeps serving.  Request
lines are bounded (``max_request_bytes``), requests can carry a deadline
(``deadline_seconds`` → :class:`~repro.exceptions.DeadlineExceededError`),
and the ``health`` command reports per-session state, WAL lag and
last-checkpoint age.
"""

from __future__ import annotations

import hmac
import json
import socketserver
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO, Union

import numpy as np

from ..baselines.registry import METHOD_SPECS
from ..config import (
    get_obs_enabled,
    resolve_max_queued_requests,
    resolve_max_request_bytes,
    resolve_max_rows_per_request,
    resolve_max_sessions,
    resolve_microbatch_max_rows,
    resolve_microbatch_window_ms,
    resolve_obs_trace_sample,
    resolve_request_deadline,
    resolve_serve_workers,
    resolve_wal_sync,
)
from ..exceptions import (
    AuthenticationError,
    ConfigurationError,
    DataError,
    DeadlineExceededError,
    NotFittedError,
    ProtocolError,
    QuotaExceededError,
    SessionQuarantinedError,
    UnsupportedOperationError,
)
from ..obs import (
    JsonlTraceSink,
    count_admission_rejection,
    get_registry,
    get_tracer,
    observe_request,
    set_sessions_open,
)
from ..query import QueryResult, SelectStatement, execute_query, parse_statement
from ..reliability.wal import SEGMENT_SUFFIX, WriteAheadLog, read_wal
from .errors import error_code, error_payload
from .messages import (
    PROTOCOL_VERSION,
    ImputeRequest,
    MutationOp,
    SessionConfig,
    decode_rows,
    encode_rows,
    validate_session_name,
)
from .scheduling import RequestScheduler
from .sessions import (
    ImputationSession,
    OnlineSession,
    create_session,
    recover_session,
    restore_session,
)

__all__ = ["SessionServer", "serve_stdio", "serve_tcp"]

#: Exceptions a command may raise *without* quarantining its session:
#: they are rejected up front by validation, before any state changed.
_CLEAN_REJECTIONS = (
    ProtocolError,
    UnsupportedOperationError,
    ConfigurationError,
    NotFittedError,
    DataError,
)


class SessionServer:
    """The transport-agnostic request handler behind every serve loop.

    Holds the named-session table and answers decoded requests;
    :func:`serve_stdio` and :func:`serve_tcp` are transports around
    :meth:`submit_line` (queued, concurrent) and :meth:`handle_line`
    (synchronous, for in-process use and tests).  All methods are safe to
    call from multiple threads: each session's state is guarded by its own
    lock — numpy releases the GIL in the GEMM-heavy kernels, so distinct
    sessions genuinely run in parallel — and the session table itself by a
    registry lock held only for dictionary operations.

    ``artifact_root`` confines every ``save``/``restore`` path from the
    wire to one directory: requests naming paths that resolve outside it
    are rejected with a ``protocol`` error, so a client never gains a
    write-anywhere/read-anywhere primitive on the serving host.  The
    transport entry points (:func:`serve_stdio`, :func:`serve_tcp`, the
    ``serve`` CLI) default it to the working directory; the bare
    constructor leaves it ``None`` for in-process servers whose requests
    you author yourself.

    ``wal_root`` (optional) gives every online session a write-ahead log
    under ``wal_root/<session>/`` so its mutations survive a crash of the
    serving process; ``wal_sync`` picks the durability/latency trade-off
    (see :mod:`repro.reliability`).  ``deadline_seconds`` bounds each
    request's wall-clock, ``max_request_bytes`` bounds each request line,
    and ``fault_injector`` threads a :class:`~repro.reliability.FaultPlan`
    through the WAL, the artifact writer and request dispatch for chaos
    testing.  The ``"default"`` sentinels resolve through the
    :mod:`repro.config` knobs.

    ``workers``/``microbatch_window_ms``/``microbatch_max_rows``/
    ``max_queued_requests`` shape the dispatch layer (see
    :mod:`repro.api.scheduling`); ``max_rows_per_request`` and
    ``max_sessions`` are admission quotas answering typed ``quota``
    errors; ``auth_token`` (when set) demands a matching ``"token"``
    field on every request envelope.
    """

    def __init__(
        self,
        artifact_root: Optional[Union[str, Path]] = None,
        *,
        wal_root: Optional[Union[str, Path]] = None,
        wal_sync: str = "default",
        deadline_seconds: Union[str, float, None] = "default",
        max_request_bytes: Union[str, int, None] = "default",
        fault_injector=None,
        trace_log: Optional[Union[str, Path]] = None,
        trace_sample: Union[str, float, None] = "default",
        workers: Union[str, int] = "default",
        microbatch_window_ms: Union[str, float] = "default",
        microbatch_max_rows: Union[str, int] = "default",
        max_rows_per_request: Union[str, int, None] = "default",
        max_sessions: Union[str, int, None] = "default",
        max_queued_requests: Union[str, int] = "default",
        auth_token: Optional[str] = None,
    ):
        self.sessions: Dict[str, ImputationSession] = {}
        self.running = True
        self.artifact_root = (
            None if artifact_root is None else Path(artifact_root).resolve()
        )
        self.wal_root = None if wal_root is None else Path(wal_root).resolve()
        self.wal_sync = resolve_wal_sync(wal_sync)
        self.deadline_seconds = resolve_request_deadline(deadline_seconds)
        self.max_request_bytes = resolve_max_request_bytes(max_request_bytes)
        self.max_rows_per_request = resolve_max_rows_per_request(
            max_rows_per_request
        )
        self.max_sessions = resolve_max_sessions(max_sessions)
        self.auth_token = auth_token
        self.fault_injector = fault_injector
        #: Quarantined sessions: name -> reason the engine was declared
        #: untrustworthy.  Populated when a mutation fails mid-apply.
        self.quarantined: Dict[str, str] = {}
        #: Bound port once :func:`serve_tcp` is listening (None for stdio).
        self.tcp_port: Optional[int] = None
        self._checkpoint_at: Dict[str, float] = {}
        self._started = time.monotonic()
        #: Guards the session table and its sidecar dicts (quarantined,
        #: checkpoint times, session locks, abandoned workers).  Held for
        #: dictionary operations only — never across engine work or I/O.
        self._registry_lock = threading.Lock()
        #: One lock per session name, serialising that session's commands.
        #: Never removed once created: a deadline-abandoned worker may
        #: still hold one, and a recreated session of the same name must
        #: queue behind it rather than race it.
        self._session_locks: Dict[str, threading.Lock] = {}
        #: Deadline-overrun workers still running: session (or command)
        #: key -> records of the threads left holding that session's lock.
        self._abandoned: Dict[str, List[Dict[str, object]]] = {}
        self.scheduler = RequestScheduler(
            self,
            workers=resolve_serve_workers(workers),
            microbatch_window_ms=resolve_microbatch_window_ms(
                microbatch_window_ms
            ),
            microbatch_max_rows=resolve_microbatch_max_rows(
                microbatch_max_rows
            ),
            max_queued_requests=resolve_max_queued_requests(
                max_queued_requests
            ),
        )
        #: The process-wide observability handles: one registry/tracer per
        #: process so engine-phase spans land in the same trace as the
        #: request that triggered them.
        self.metrics = get_registry()
        self.tracer = get_tracer()
        self.trace_sink: Optional[JsonlTraceSink] = None
        if not (isinstance(trace_sample, str) and trace_sample == "default"):
            self.tracer.configure(
                sample=resolve_obs_trace_sample(trace_sample)
            )
        if trace_log is not None:
            self.trace_sink = JsonlTraceSink(trace_log)
            self.tracer.configure(sink=self.trace_sink)

    # ------------------------------------------------------------------ #
    # Envelope
    # ------------------------------------------------------------------ #
    def handle_line(self, line: str) -> Optional[Dict[str, object]]:
        """Answer one raw request line (``None`` for blank lines)."""
        line = line.strip()
        if not line:
            return None
        request_id = None
        try:
            if (
                self.max_request_bytes is not None
                and len(line.encode("utf-8", errors="surrogateescape"))
                > self.max_request_bytes
            ):
                raise ProtocolError(
                    f"request line exceeds max_request_bytes="
                    f"{self.max_request_bytes}; split the request into "
                    f"smaller batches"
                )
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"malformed JSON request: {exc}") from exc
            if not isinstance(request, dict):
                raise ProtocolError("a request must be a JSON object")
            request_id = request.get("id")
            return self.handle_request(request)
        except Exception as exc:  # noqa: BLE001 - the loop must survive bad input
            observe_request("unknown", error_code(exc))
            return self._error(request_id, exc, self.tracer.new_trace_id())

    def submit_line(self, line: str,
                    respond: Callable[[Dict[str, object]], None]) -> bool:
        """Parse one raw request line and route it for execution.

        The concurrent entry point of the transports: session commands are
        enqueued on the scheduler (``respond`` is invoked from a worker
        once the request executes, in per-session submission order), while
        control commands — and every admission rejection — answer inline
        on the calling thread.  ``respond`` is called exactly once for any
        non-blank line; blank lines return ``False`` without calling it.

        ``shutdown`` first drains the scheduler so every pipelined request
        ahead of it is answered, then stops the server.
        """
        line = line.strip()
        if not line:
            return False
        request_id = None
        cmd_label = "unknown"
        try:
            if (
                self.max_request_bytes is not None
                and len(line.encode("utf-8", errors="surrogateescape"))
                > self.max_request_bytes
            ):
                raise ProtocolError(
                    f"request line exceeds max_request_bytes="
                    f"{self.max_request_bytes}; split the request into "
                    f"smaller batches"
                )
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"malformed JSON request: {exc}") from exc
            if not isinstance(request, dict):
                raise ProtocolError("a request must be a JSON object")
            request_id = request.get("id")
            cmd = request.get("cmd")
            if isinstance(cmd, str) and cmd in self._COMMANDS:
                cmd_label = cmd
            # Reject unauthenticated lines before they consume queue
            # capacity; handle_request re-checks for the synchronous path.
            self._check_auth(request)
            if cmd_label in self._SESSION_COMMANDS:
                self.scheduler.submit(request, respond)
                return True
            if cmd_label == "shutdown":
                self.scheduler.drain()
            respond(self.handle_request(request))
            return True
        except Exception as exc:  # noqa: BLE001 - typed error response instead
            code = error_code(exc)
            if code == "overloaded":
                count_admission_rejection(code)
            observe_request(cmd_label, code)
            respond(self._error(request_id, exc, self.tracer.new_trace_id()))
            return True

    def _check_auth(self, request: Dict[str, object]) -> None:
        if self.auth_token is None:
            return
        token = request.get("token")
        if not isinstance(token, str) or not hmac.compare_digest(
            token.encode("utf-8"), self.auth_token.encode("utf-8")
        ):
            count_admission_rejection("auth")
            raise AuthenticationError(
                "missing or invalid auth token; pass the server's shared "
                "secret as the request's 'token' field"
            )

    def handle_request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one decoded request object.

        Every request — valid or not — is issued a trace ID (echoed as
        ``"trace"`` on the response and inside error payloads) and counted
        into the per-command latency/status histograms.
        """
        request_id = request.get("id")
        cmd = request.get("cmd")
        # `cmd` may be any JSON value; only known commands become metric
        # labels, so a hostile client cannot explode label cardinality.
        cmd_label = cmd if isinstance(cmd, str) and cmd in self._COMMANDS else "unknown"
        trace_id = self.tracer.new_trace_id()
        started = time.perf_counter()
        status = "ok"
        try:
            version = request.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version!r}; this server "
                    f"speaks version {PROTOCOL_VERSION}"
                )
            self._check_auth(request)
            # `cmd` may be any JSON value, including unhashable ones.
            handler = (
                self._COMMANDS.get(cmd) if isinstance(cmd, str) else None
            )
            if handler is None:
                raise ProtocolError(
                    f"unknown command {cmd!r}; available commands: "
                    f"{sorted(self._COMMANDS)}"
                )
            result = self._dispatch(handler, request, cmd_label, trace_id)
            return {
                "v": PROTOCOL_VERSION,
                "id": request_id,
                "ok": True,
                "result": result,
                "trace": trace_id,
            }
        except Exception as exc:  # noqa: BLE001 - typed error response instead
            status = error_code(exc)
            if status == "quota":
                count_admission_rejection(status)
            return self._error(request_id, exc, trace_id)
        finally:
            observe_request(
                cmd_label, status, time.perf_counter() - started
            )

    def _session_lock(self, request: Dict[str, object],
                      cmd_label: str) -> Optional[threading.Lock]:
        """The lock a command must hold: its session's, or none.

        Control commands (``ping``, ``health``, ``metrics``, ...) take no
        session lock — they must answer even while every session is busy
        or wedged; the registry lock inside their handlers suffices.
        Session commands whose ``session`` field is not a usable name take
        none either: their handler rejects before touching any state.
        """
        if cmd_label not in self._SESSION_COMMANDS:
            return None
        name = request.get("session")
        if not isinstance(name, str) or not name:
            return None
        with self._registry_lock:
            lock = self._session_locks.get(name)
            if lock is None:
                lock = self._session_locks[name] = threading.Lock()
            return lock

    def _dispatch(self, handler, request: Dict[str, object],
                  cmd_label: str = "unknown",
                  trace_id: Optional[str] = None):
        """Run one command under its session's lock, bounded by the deadline.

        With a deadline the handler runs in a worker thread; on overrun the
        caller gets :class:`DeadlineExceededError` while the worker finishes
        in the background still holding *its session's* lock — the engine
        cannot be preempted mid-mutation, so that session stays consistent
        and its later requests queue on the lock, while every other session
        keeps serving.  The abandoned worker is recorded and reported by
        ``health`` (the session joins the ``degraded`` list) until it
        finishes.
        """
        session = request.get("session")
        attrs = {"session": session} if isinstance(session, str) else {}
        lock = self._session_lock(request, cmd_label)

        def execute():
            with self.tracer.trace(
                f"serve.{cmd_label}", trace_id=trace_id, **attrs
            ):
                if self.fault_injector is not None:
                    # Attribute the firing to the session so session-scoped
                    # faults count deterministically: the scheduler runs at
                    # most one worker per session, so "the Nth dispatch of
                    # session X" is the same request in every run even
                    # though the global dispatch order is racy.
                    self.fault_injector.fire(
                        "serve.dispatch",
                        session=(
                            session
                            if isinstance(session, str) and session
                            else None
                        ),
                    )
                return handler(self, request)

        def execute_locked():
            if lock is None:
                return execute()
            with lock:
                return execute()

        if self.deadline_seconds is None:
            return execute_locked()
        outcome: Dict[str, object] = {}
        done = threading.Event()

        def run():
            try:
                # The root span opens in the worker thread — the thread
                # the handler body (and its engine child spans) runs on.
                outcome["result"] = execute_locked()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcome["error"] = exc
            finally:
                done.set()
                self._discard_abandoned(threading.current_thread())

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        if not done.wait(self.deadline_seconds):
            self._record_abandoned(
                session if isinstance(session, str) and session else cmd_label,
                worker, cmd_label,
            )
            raise DeadlineExceededError(
                f"request {request.get('cmd')!r} exceeded the "
                f"{self.deadline_seconds}s deadline; it keeps running in the "
                f"background and later requests to its session will queue "
                f"behind it"
            )
        if "error" in outcome:
            raise outcome["error"]  # type: ignore[misc]
        return outcome.get("result")

    def _record_abandoned(self, key: str, worker: threading.Thread,
                          cmd_label: str) -> None:
        with self._registry_lock:
            self._abandoned.setdefault(key, []).append({
                "thread": worker,
                "cmd": cmd_label,
                "since": time.monotonic(),
            })

    def _discard_abandoned(self, worker: threading.Thread) -> None:
        """Drop a finished worker's abandonment record (called by itself)."""
        with self._registry_lock:
            for key in list(self._abandoned):
                entries = [
                    entry for entry in self._abandoned[key]
                    if entry["thread"] is not worker
                ]
                if entries:
                    self._abandoned[key] = entries
                else:
                    self._abandoned.pop(key)

    def _abandoned_snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """Live abandoned workers by session key (dead entries pruned)."""
        now = time.monotonic()
        with self._registry_lock:
            snapshot: Dict[str, List[Dict[str, object]]] = {}
            for key, entries in list(self._abandoned.items()):
                live = [e for e in entries if e["thread"].is_alive()]
                if live:
                    self._abandoned[key] = live
                    snapshot[key] = [
                        {
                            "cmd": e["cmd"],
                            "age_seconds": round(now - e["since"], 3),
                        }
                        for e in live
                    ]
                else:
                    self._abandoned.pop(key)
            return snapshot

    @staticmethod
    def _error(request_id, exc: BaseException,
               trace_id: Optional[str] = None) -> Dict[str, object]:
        payload = error_payload(exc)
        response = {
            "v": PROTOCOL_VERSION,
            "id": request_id,
            "ok": False,
            "error": payload,
        }
        if trace_id is not None:
            payload["trace"] = trace_id
            response["trace"] = trace_id
        return response

    def oversized_response(self, request_id=None) -> Dict[str, object]:
        """The typed error a transport answers for an over-long line."""
        exc = ProtocolError(
            f"request line exceeds max_request_bytes="
            f"{self.max_request_bytes}; split the request into smaller "
            f"batches"
        )
        observe_request("unknown", error_code(exc))
        return self._error(request_id, exc, self.tracer.new_trace_id())

    # ------------------------------------------------------------------ #
    # Command implementations (called with their session's lock held for
    # session commands; registry reads/writes take the registry lock)
    # ------------------------------------------------------------------ #
    def _get_session(self, request) -> ImputationSession:
        name = self._session_name(request)
        with self._registry_lock:
            if name in self.quarantined:
                raise SessionQuarantinedError(
                    f"session {name!r} is quarantined "
                    f"({self.quarantined[name]}); close it and recover from "
                    f"its checkpoint/WAL"
                )
            session = self.sessions.get(name)
            if session is None:
                raise ProtocolError(
                    f"no session named {name!r}; create or restore it first "
                    f"(open sessions: {sorted(self.sessions)})"
                )
            return session

    def _session_name(self, request) -> str:
        return validate_session_name(request.get("session"))

    def _describe(self, name: str, session: ImputationSession) -> Dict[str, object]:
        return {
            "session": name,
            "kind": session.kind,
            "method": session.method,
            "capabilities": session.capabilities.as_dict(),
            "durable": getattr(session, "wal", None) is not None,
        }

    def _quarantine(self, name: str, exc: BaseException) -> SessionQuarantinedError:
        """Mark a session degraded and build the error its caller gets.

        Invoked when the engine raised past the point where state may have
        changed: the session's in-memory view can no longer be trusted, so
        it stops answering until closed and recovered.  Other sessions are
        untouched.
        """
        reason = f"{type(exc).__name__}: {exc}"
        with self._registry_lock:
            self.quarantined[name] = reason
        return SessionQuarantinedError(
            f"session {name!r} is quarantined: its engine raised {reason} "
            f"mid-mutation; other sessions are unaffected — close it and "
            f"recover from its checkpoint/WAL"
        )

    def _apply_ops(self, name: str, session: ImputationSession, ops) -> int:
        """Apply mutation ops one at a time with quarantine-on-failure.

        A *clean rejection* (validation error before any op touched the
        store) propagates as-is; any failure after the first applied op —
        or any unexpected exception type — quarantines the session, because
        the store may now hold a half-applied batch.
        """
        applied = 0
        try:
            for op in ops:
                session.mutate([op])
                applied += 1
        except Exception as exc:  # noqa: BLE001 - classified below
            if isinstance(exc, _CLEAN_REJECTIONS) and applied == 0:
                raise
            raise self._quarantine(name, exc) from exc
        return applied

    def _wal_dir(self, name: str) -> Path:
        validate_session_name(name, durable=True)
        return self.wal_root / name

    def _check_session_quota_locked(self) -> None:
        if (
            self.max_sessions is not None
            and len(self.sessions) >= self.max_sessions
        ):
            raise QuotaExceededError(
                f"the server already holds {len(self.sessions)} live "
                f"session(s) (max_sessions={self.max_sessions}); close one "
                f"first"
            )

    def _admit_session(self, name: str, session: ImputationSession) -> None:
        """Insert a freshly built session, re-checking quota at the insert.

        Same-name requests are serialised by the session lock, but creates
        of *different* names run concurrently — the quota must be enforced
        atomically with the insertion, releasing the loser's resources.
        """
        try:
            with self._registry_lock:
                self._check_session_quota_locked()
                self.sessions[name] = session
                set_sessions_open(len(self.sessions))
        except QuotaExceededError:
            close = getattr(session, "close", None)
            if callable(close):
                close()
            raise

    def _cmd_create(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        with self._registry_lock:
            if name in self.sessions:
                raise ProtocolError(f"session {name!r} already exists")
            self._check_session_quota_locked()
        config = SessionConfig.from_wire(request.get("config"))
        session = create_session(config)
        if self.wal_root is not None and isinstance(session, OnlineSession):
            wal_dir = self._wal_dir(name)
            if wal_dir.is_dir() and any(wal_dir.glob("*" + SEGMENT_SUFFIX)):
                state = read_wal(wal_dir)
                if state.ops or state.base_seq > 0 or state.torn is not None:
                    raise ProtocolError(
                        f"session {name!r} has an existing WAL at {wal_dir}; "
                        f"'restore' it to recover the logged mutations (or "
                        f"run `python -m repro recover`), or remove the "
                        f"directory to start fresh"
                    )
                # Only an empty open record survives from a previous life:
                # safe to discard so the new session's config governs.
                for segment in sorted(wal_dir.glob("*" + SEGMENT_SUFFIX)):
                    segment.unlink()
            wal = WriteAheadLog(
                wal_dir,
                sync=self.wal_sync,
                config=config.to_wire(),
                injector=self.fault_injector,
            )
            session.attach_wal(wal, fault_injector=self.fault_injector)
        self._admit_session(name, session)
        return self._describe(name, session)

    def _cmd_fit(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        rows = decode_rows(
            request.get("rows"), what="fit rows",
            max_rows=self.max_rows_per_request,
        )
        try:
            session.fit(rows)
        except _CLEAN_REJECTIONS:
            raise
        except Exception as exc:  # noqa: BLE001 - mid-mutation failure
            raise self._quarantine(name, exc) from exc
        # Sessions learn from the *complete* rows only; report both counts
        # so a client sees how many submitted tuples actually trained.
        n_complete = int((~np.isnan(rows).any(axis=1)).sum())
        return {
            "fitted": True,
            "n_rows": int(rows.shape[0]),
            "n_complete": n_complete,
        }

    def _cmd_append(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        rows = decode_rows(
            request.get("rows"), what="append rows",
            max_rows=self.max_rows_per_request,
        )
        self._apply_ops(name, session, [MutationOp.append(rows)])
        return {"appended": int(rows.shape[0])}

    def _cmd_delete(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        op = MutationOp.from_wire(
            {"op": "delete", "indices": request.get("indices")}
        )
        self._apply_ops(name, session, [op])
        return {"deleted": int(op.indices.shape[0])}

    def _cmd_update(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        op = MutationOp.from_wire(
            {"op": "update", "index": request.get("index"), "row": request.get("row")}
        )
        self._apply_ops(name, session, [op])
        return {"updated": int(op.index)}

    def _cmd_mutate(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        ops_wire = request.get("ops")
        if not isinstance(ops_wire, list) or not ops_wire:
            raise ProtocolError("mutate needs a non-empty 'ops' list")
        ops = [
            MutationOp.from_wire(op, max_rows=self.max_rows_per_request)
            for op in ops_wire
        ]
        return {"applied": self._apply_ops(name, session, ops)}

    def _cmd_impute(self, request) -> Dict[str, object]:
        session = self._get_session(request)
        impute_request = ImputeRequest.from_wire(
            {"rows": request.get("rows")},
            max_rows=self.max_rows_per_request,
        )
        values = session.impute(impute_request)
        return {
            "rows": encode_rows(values),
            "imputed_cells": impute_request.n_missing,
        }

    def _cmd_query(self, request) -> Dict[str, object]:
        """Execute one query-language statement against a session.

        The statement text rides in ``"q"``.  SELECTs are read-only (the
        on-demand imputations never change session state) and their
        touched-row count charges against ``max_rows_per_request`` — a
        query imputing more rows is rejected with a ``quota`` error before
        any kernel runs.  Data statements (APPEND/UPDATE/DELETE/IMPUTE)
        follow the same quarantine discipline as ``mutate``.
        """
        session = self._get_session(request)
        text = request.get("q")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError(
                "query needs a 'q' field carrying one statement"
            )
        statement = parse_statement(text)
        if isinstance(statement, SelectStatement):
            result = execute_query(
                session, statement,
                max_impute_rows=self.max_rows_per_request,
            )
        else:
            name = self._session_name(request)
            try:
                result = execute_query(session, statement)
            except _CLEAN_REJECTIONS:
                raise
            except Exception as exc:  # noqa: BLE001 - mid-mutation failure
                raise self._quarantine(name, exc) from exc
        if isinstance(result, QueryResult):
            payload: Dict[str, object] = {
                "kind": result.kind,
                "columns": result.columns,
                "rows": encode_rows(result.rows) if result.rows.size else [],
                "row_indices": result.row_indices,
                "rows_scanned": result.rows_scanned,
                "rows_imputed": result.rows_imputed,
                "provenance": result.provenance,
            }
            if result.kind == "explain":
                payload["plan"] = result.plan
            return payload
        return {"kind": result.kind, **result.detail}

    def _server_config(self) -> Dict[str, object]:
        """The server's resolved knobs, as health/stats self-description."""
        return {
            "wal_sync": self.wal_sync,
            "wal_root": None if self.wal_root is None else str(self.wal_root),
            "artifact_root": (
                None if self.artifact_root is None else str(self.artifact_root)
            ),
            "deadline_seconds": self.deadline_seconds,
            "max_request_bytes": self.max_request_bytes,
            "serve_workers": self.scheduler.workers,
            "microbatch_window_ms": self.scheduler.microbatch_window_ms,
            "microbatch_max_rows": self.scheduler.microbatch_max_rows,
            "max_rows_per_request": self.max_rows_per_request,
            "max_sessions": self.max_sessions,
            "max_queued_requests": self.scheduler.max_queued_requests,
            "auth": self.auth_token is not None,
            "obs_enabled": get_obs_enabled(),
            "trace_sample": self.tracer.sample,
            "trace_log": (
                None if self.trace_sink is None
                else str(self.trace_sink.directory)
            ),
        }

    def _cmd_stats(self, request) -> Dict[str, object]:
        stats = self._get_session(request).stats()
        stats["server"] = {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "config": self._server_config(),
            "scheduler": self.scheduler.snapshot(),
        }
        return stats

    def _cmd_metrics(self, request) -> Dict[str, object]:
        """The process-wide metrics registry, as JSON or Prometheus text."""
        fmt = request.get("format", "json")
        if fmt == "json":
            return {"format": "json", "metrics": self.metrics.snapshot()}
        if fmt in ("prometheus", "text"):
            return {
                "format": "prometheus",
                "content_type": "text/plain; version=0.0.4",
                "text": self.metrics.to_prometheus(),
            }
        raise ProtocolError(
            f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
        )

    def _cmd_traces(self, request) -> Dict[str, object]:
        """The newest completed request traces from the in-memory ring."""
        limit = request.get("limit", 16)
        if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
            raise ProtocolError(
                f"traces 'limit' must be a non-negative integer, got {limit!r}"
            )
        return {"traces": self.tracer.recent(limit)}

    def _artifact_path(self, request, command: str) -> Path:
        path = request.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError(f"{command} needs an artifact 'path'")
        resolved = Path(path)
        if self.artifact_root is not None:
            resolved = (self.artifact_root / resolved).resolve()
            if (
                self.artifact_root != resolved
                and self.artifact_root not in resolved.parents
            ):
                raise ProtocolError(
                    f"artifact path {path!r} escapes the server's artifact "
                    f"root; use a relative path inside it"
                )
        return resolved

    def _cmd_save(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        session = self._get_session(request)
        path = str(session.save(self._artifact_path(request, "save")))
        with self._registry_lock:
            self._checkpoint_at[name] = time.monotonic()
        return {"path": path}

    def _cmd_restore(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        with self._registry_lock:
            if name in self.sessions:
                raise ProtocolError(f"session {name!r} already exists")
            self._check_session_quota_locked()
        path = self._artifact_path(request, "restore")
        if self.wal_root is not None:
            wal_dir = self._wal_dir(name)
            if wal_dir.is_dir() and any(wal_dir.glob("*" + SEGMENT_SUFFIX)):
                # A WAL survives from a previous life of this session:
                # replay its tail onto the checkpoint instead of silently
                # serving the (possibly stale) checkpoint alone.
                session, report = recover_session(
                    wal_dir,
                    checkpoint=path,
                    sync=self.wal_sync,
                    fault_injector=self.fault_injector,
                )
                self._admit_session(name, session)
                with self._registry_lock:
                    self.quarantined.pop(name, None)
                description = self._describe(name, session)
                description["recovered"] = {
                    "replayed_ops": report["replayed_ops"],
                    "skipped_ops": report["skipped_ops"],
                    "torn_tail": report["torn_tail"],
                }
                return description
        session = restore_session(path)
        if self.wal_root is not None and isinstance(session, OnlineSession):
            wal = WriteAheadLog(
                self._wal_dir(name),
                sync=self.wal_sync,
                config=session.config_wire(),
                injector=self.fault_injector,
            )
            session.attach_wal(wal, fault_injector=self.fault_injector)
        self._admit_session(name, session)
        return self._describe(name, session)

    def _cmd_close(self, request) -> Dict[str, object]:
        name = self._session_name(request)
        with self._registry_lock:
            session = self.sessions.get(name)
            if session is None:
                raise ProtocolError(f"no session named {name!r}")
            del self.sessions[name]
            self.quarantined.pop(name, None)
            self._checkpoint_at.pop(name, None)
            set_sessions_open(len(self.sessions))
        # Release resources outside the registry lock (WAL close may do
        # I/O); the session lock this command holds keeps it exclusive.
        close = getattr(session, "close", None)
        if callable(close):
            close()
        return {"closed": name}

    def _cmd_sessions(self, request) -> Dict[str, object]:
        with self._registry_lock:
            items = sorted(self.sessions.items())
        return {
            "sessions": [
                self._describe(name, session) for name, session in items
            ]
        }

    def _cmd_methods(self, request) -> Dict[str, object]:
        return {
            "methods": [
                {"method": name, "capabilities": spec.capabilities.as_dict()}
                for name, spec in METHOD_SPECS.items()
            ]
        }

    def _cmd_ping(self, request) -> Dict[str, object]:
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    def _cmd_health(self, request) -> Dict[str, object]:
        """Liveness + per-session durability/dispatch report (never raises).

        ``degraded`` lists quarantined sessions *and* sessions whose lock
        is held by a deadline-abandoned worker still running; the
        ``abandoned`` section details those workers, the ``scheduler``
        section exposes queue depths and micro-batch counters.
        """
        now = time.monotonic()
        abandoned = self._abandoned_snapshot()
        scheduler = self.scheduler.snapshot()
        with self._registry_lock:
            items = sorted(self.sessions.items())
            quarantined = dict(self.quarantined)
            checkpoint_at = dict(self._checkpoint_at)
        sessions: Dict[str, Dict[str, object]] = {}
        for name, session in items:
            degraded = name in quarantined or name in abandoned
            entry: Dict[str, object] = {
                "state": "degraded" if degraded else "ok",
            }
            if name in quarantined:
                entry["reason"] = quarantined[name]
            elif name in abandoned:
                entry["reason"] = (
                    f"deadline-abandoned worker(s) still hold this "
                    f"session's lock: "
                    + ", ".join(
                        f"{e['cmd']} ({e['age_seconds']}s)"
                        for e in abandoned[name]
                    )
                )
            wal = getattr(session, "wal", None)
            if wal is not None:
                stats = wal.stats()
                entry["wal"] = {
                    "sync": stats["sync"],
                    "lag_records": stats["lag_records"],
                    "segments": stats["segments"],
                    "bytes": stats["bytes"],
                }
            checkpointed = checkpoint_at.get(name)
            entry["last_checkpoint_age_seconds"] = (
                None if checkpointed is None else round(now - checkpointed, 3)
            )
            queued = scheduler["queued"].get(name)
            if queued:
                entry["queued_requests"] = queued
            sessions[name] = entry
        return {
            "status": "serving" if self.running else "stopping",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(now - self._started, 3),
            "config": self._server_config(),
            "sessions": sessions,
            "degraded": sorted(set(quarantined) | set(abandoned)),
            "abandoned": abandoned,
            "scheduler": scheduler,
        }

    def close_sessions(self) -> None:
        """Release every session's resources (WAL handles stay on disk).

        Idempotent; the transports call it when their input ends — EOF is
        an orderly end of a stdio pipeline, not a crash, so file handles
        must not be left to the garbage collector.  Stops the scheduler
        first, so no worker dispatches into a session being closed.
        """
        self.scheduler.stop()
        with self._registry_lock:
            sessions = list(self.sessions.values())
        for session in sessions:
            close = getattr(session, "close", None)
            if callable(close):
                close()
        if self.trace_sink is not None:
            self.trace_sink.close()

    def _cmd_shutdown(self, request) -> Dict[str, object]:
        self.running = False
        self.close_sessions()
        return {"stopping": True}

    _COMMANDS = {
        "create": _cmd_create,
        "fit": _cmd_fit,
        "append": _cmd_append,
        "delete": _cmd_delete,
        "update": _cmd_update,
        "mutate": _cmd_mutate,
        "impute": _cmd_impute,
        "query": _cmd_query,
        "stats": _cmd_stats,
        "save": _cmd_save,
        "restore": _cmd_restore,
        "close": _cmd_close,
        "sessions": _cmd_sessions,
        "methods": _cmd_methods,
        "health": _cmd_health,
        "ping": _cmd_ping,
        "metrics": _cmd_metrics,
        "traces": _cmd_traces,
        "shutdown": _cmd_shutdown,
    }

    #: Commands that target one session's state: they run under that
    #: session's lock and, on the transports, through its FIFO queue.
    #: Everything else is a control command answering inline, lock-free.
    _SESSION_COMMANDS = frozenset({
        "create", "fit", "append", "delete", "update", "mutate", "impute",
        "query", "stats", "save", "restore", "close",
    })


class _OrderedWriter:
    """Emits responses in request order while execution runs out of order.

    A byte stream has one order, so each accepted input line reserves the
    next output slot; scheduler workers fill slots as requests finish and
    the writer flushes the contiguous prefix.  One slow request therefore
    delays the *emission* of later responses on its own stream — but not
    their execution, and other connections flow independently.

    Write failures mark the stream dead and drop the remaining responses:
    the requests still execute (their state changes are real), there is
    just no client left to tell.
    """

    def __init__(self, emit: Callable[[Dict[str, object]], None]):
        self._emit = emit
        self._lock = threading.Lock()
        self._filled: Dict[int, Dict[str, object]] = {}
        self._next_seq = 0
        self._next_emit = 0
        self.dead = False

    def reserve(self) -> Callable[[Dict[str, object]], None]:
        """Claim the next output slot; the returned callable fills it."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        return lambda response: self._fill(seq, response)

    def _fill(self, seq: int, response: Dict[str, object]) -> None:
        with self._lock:
            self._filled[seq] = response
            while self._next_emit in self._filled:
                ready = self._filled.pop(self._next_emit)
                self._next_emit += 1
                if self.dead:
                    continue
                try:
                    self._emit(ready)
                except Exception:  # noqa: BLE001 - client gone mid-reply
                    self.dead = True


def serve_stdio(
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
    server: Optional[SessionServer] = None,
) -> int:
    """Serve requests line-by-line from ``stdin`` until EOF or ``shutdown``.

    Session commands execute on the server's scheduler (pipelined lines
    against different sessions run concurrently; responses still emit in
    request order).  Without an explicit ``server`` the loop runs confined
    to the working directory (save/restore paths may not escape it); pass
    a :class:`SessionServer` of your own to choose a different artifact
    root or to run unconfined.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    server = server or SessionServer(artifact_root=".")
    limit = server.max_request_bytes
    try:
        _serve_stdio_loop(stdin, stdout, server, limit)
    finally:
        server.close_sessions()
    return 0


def _serve_stdio_loop(stdin, stdout, server, limit) -> None:
    def emit(response: Dict[str, object]) -> None:
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()

    writer = _OrderedWriter(emit)
    while True:
        line = stdin.readline() if limit is None else stdin.readline(limit + 1)
        if not line:
            break
        if limit is not None and len(line) > limit and not line.endswith("\n"):
            # Over-long line: answer a typed error *without* buffering the
            # rest of it — drain to the next newline in bounded chunks.
            while True:
                rest = stdin.readline(1 << 16)
                if not rest or rest.endswith("\n"):
                    break
            writer.reserve()(server.oversized_response())
        elif not line.strip():
            continue  # blank line: no response slot
        else:
            server.submit_line(line, writer.reserve())
        if not server.running:
            return  # shutdown already drained the scheduler
    # EOF: answer everything still queued before releasing the sessions.
    server.scheduler.drain()


class _JsonlTCPHandler(socketserver.StreamRequestHandler):
    def handle(self):
        server: SessionServer = self.server.session_server  # type: ignore[attr-defined]
        limit = server.max_request_bytes
        writer = _OrderedWriter(self._emit)
        while True:
            try:
                raw = (
                    self.rfile.readline()
                    if limit is None
                    else self.rfile.readline(limit + 1)
                )
            except (ConnectionResetError, OSError):
                return  # client vanished: nothing left to answer
            if not raw:
                return
            if not raw.endswith(b"\n"):
                if limit is not None and len(raw) > limit:
                    # Over-long line: drain to its newline, then answer a
                    # typed error so the client can correct itself.
                    try:
                        while True:
                            rest = self.rfile.readline(1 << 16)
                            if not rest or rest.endswith(b"\n"):
                                break
                    except (ConnectionResetError, OSError):
                        return
                    if not rest:
                        return  # disconnected mid-line: discard the torn frame
                    writer.reserve()(server.oversized_response())
                else:
                    # Client disconnected mid-line: the frame is torn, so
                    # discard it and close this connection quietly.
                    return
            else:
                text = raw.decode("utf-8", errors="replace")
                if not text.strip():
                    continue  # blank line: no response slot
                server.submit_line(text, writer.reserve())
            if not server.running:
                self.server.shutdown_event.set()  # type: ignore[attr-defined]
                return

    def _emit(self, response: Dict[str, object]) -> None:
        self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_tcp(
    host: str = "127.0.0.1",
    port: int = 7007,
    server: Optional[SessionServer] = None,
    ready: Optional[threading.Event] = None,
    join_timeout: float = 5.0,
) -> int:
    """Serve requests over TCP until a client sends ``shutdown``.

    Every connection shares one session table, so a client can create a
    session, disconnect, and another can keep mutating it.  ``ready`` (if
    given) is set once the socket is listening — handy for tests.  Without
    an explicit ``server`` the loop runs confined to the working directory
    (save/restore paths may not escape it).

    If the accept-loop thread fails to stop within ``join_timeout`` seconds
    of shutdown, the leak is reported on stderr and raised as
    :class:`RuntimeError` — a silently surviving serve thread would keep
    the session table (and any WAL handles) alive behind the caller's back.
    """
    session_server = server or SessionServer(artifact_root=".")
    with _ThreadingTCPServer((host, port), _JsonlTCPHandler) as tcp:
        tcp.session_server = session_server  # type: ignore[attr-defined]
        tcp.shutdown_event = threading.Event()  # type: ignore[attr-defined]
        thread = threading.Thread(target=tcp.serve_forever, daemon=True)
        thread.start()
        session_server.tcp_port = tcp.server_address[1]
        if ready is not None:
            ready.set()
        try:
            tcp.shutdown_event.wait()  # type: ignore[attr-defined]
        finally:
            session_server.close_sessions()
            tcp.shutdown()
            thread.join(timeout=join_timeout)
            if thread.is_alive():
                message = (
                    f"serve_tcp: accept loop still alive {join_timeout}s "
                    f"after shutdown; a handler thread may be wedged"
                )
                print(f"error: {message}", file=sys.stderr)
                raise RuntimeError(message)
    return 0
