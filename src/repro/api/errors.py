"""The unified error taxonomy of the service layer.

Every exception the library raises derives from
:class:`~repro.exceptions.ReproError`; the service layer maps each concrete
class onto a *stable, wire-safe error code* so clients of the JSONL protocol
can dispatch on ``error.code`` without parsing Python class names or
messages.  Unexpected exceptions (bugs, not bad requests) map to
``"internal"`` so a serve loop never leaks a traceback as a protocol
response.
"""

from __future__ import annotations

from typing import Dict, Type

from ..exceptions import (
    AuthenticationError,
    ConfigurationError,
    DataError,
    DatasetError,
    DeadlineExceededError,
    ExperimentError,
    MissingValueError,
    NotFittedError,
    ProtocolError,
    QueryError,
    QuotaExceededError,
    ReproError,
    SchemaError,
    ServerOverloadedError,
    SessionQuarantinedError,
    UnsupportedOperationError,
)

__all__ = ["ERROR_CODES", "error_code", "error_payload"]

#: Exception class → stable wire code.  Ordered most-specific-first; the
#: mapping is resolved by ``isinstance`` walking this order, so subclasses
#: added later inherit their parent's code automatically.
ERROR_CODES: Dict[Type[BaseException], str] = {
    SessionQuarantinedError: "quarantined",
    DeadlineExceededError: "deadline",
    QuotaExceededError: "quota",
    ServerOverloadedError: "overloaded",
    AuthenticationError: "auth",
    ProtocolError: "protocol",
    UnsupportedOperationError: "unsupported",
    ConfigurationError: "configuration",
    NotFittedError: "not_fitted",
    QueryError: "query",
    SchemaError: "schema",
    MissingValueError: "missing_value",
    DatasetError: "dataset",
    DataError: "data",
    ExperimentError: "experiment",
    ReproError: "error",
}


def error_code(exc: BaseException) -> str:
    """The stable wire code of an exception (``"internal"`` for non-library ones)."""
    for klass, code in ERROR_CODES.items():
        if isinstance(exc, klass):
            return code
    return "internal"


def error_payload(exc: BaseException) -> Dict[str, str]:
    """The ``error`` object of a failed wire response."""
    return {"code": error_code(exc), "message": str(exc)}
