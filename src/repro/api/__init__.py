"""``repro.api`` — the unified service layer over the whole library.

One protocol, two engines:

>>> from repro.api import create_session, MutationOp
>>> session = create_session(method="kNN", params={"k": 5})      # batch
>>> session.fit(dirty_relation)                     # doctest: +SKIP
>>> filled = session.impute(rows_with_nans)         # doctest: +SKIP

>>> session = create_session(method="IIM", mode="online")        # online
>>> session.fit(initial_rows)                       # doctest: +SKIP
>>> session.mutate([MutationOp.append(new_rows),
...                 MutationOp.delete([3, 17])])    # doctest: +SKIP
>>> filled = session.impute(rows_with_nans)         # doctest: +SKIP
>>> session.save("artifacts/session")               # doctest: +SKIP

The pieces:

* :class:`ImputationSession` — the protocol (``fit`` / ``mutate`` /
  ``impute`` / ``save`` / ``restore`` / ``stats``), implemented by
  :class:`BatchSession` (any registry imputer) and :class:`OnlineSession`
  (the incremental engine); each advertises a
  :class:`~repro.baselines.registry.MethodCapabilities` descriptor.
* :mod:`repro.api.messages` — the typed, versioned request surface:
  :class:`ImputeRequest`, :class:`MutationOp`, :class:`SessionConfig`
  (validating constructors + JSON-safe wire forms).
* :mod:`repro.api.errors` — the stable error taxonomy every wire response
  uses (:func:`error_code`).
* :mod:`repro.api.serve` — the stdlib-only JSONL serve loop
  (``python -m repro serve``) multiplexing named sessions over
  stdin/stdout or a TCP socket, with per-session quarantine, request
  deadlines and bounded request lines.
* :mod:`repro.api.scheduling` — the dispatch layer behind the transports:
  per-session FIFO queues drained by a bounded worker pool
  (:class:`RequestScheduler`), with micro-batching of single-row imputes
  and ``overloaded`` backpressure on full queues.
* :func:`recover_session` — rebuild an online session from its
  write-ahead log (plus the last checkpoint, when one exists) after a
  crash; see :mod:`repro.reliability` for the WAL itself.
"""

from .errors import ERROR_CODES, error_code, error_payload
from .messages import (
    PROTOCOL_VERSION,
    SESSION_MODES,
    ImputeRequest,
    MutationOp,
    SessionConfig,
    decode_rows,
    encode_rows,
    validate_session_name,
)
from .scheduling import RequestScheduler
from .serve import SessionServer, serve_stdio, serve_tcp
from .sessions import (
    BatchSession,
    ImputationSession,
    OnlineSession,
    create_session,
    recover_session,
    restore_session,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SESSION_MODES",
    "ImputationSession",
    "BatchSession",
    "OnlineSession",
    "create_session",
    "recover_session",
    "restore_session",
    "validate_session_name",
    "ImputeRequest",
    "MutationOp",
    "SessionConfig",
    "encode_rows",
    "decode_rows",
    "ERROR_CODES",
    "error_code",
    "error_payload",
    "RequestScheduler",
    "SessionServer",
    "serve_stdio",
    "serve_tcp",
]
