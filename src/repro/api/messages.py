"""Typed request/command messages of the unified imputation protocol.

Three dataclasses describe everything a caller can ask a session to do:

* :class:`SessionConfig` — which method to run, in which mode (batch or
  online), with which constructor overrides and engine knobs;
* :class:`MutationOp` — one store mutation (``append`` / ``delete`` /
  ``update``), the verbs of the online engine's tuple lifecycle;
* :class:`ImputeRequest` — a batch of query tuples with ``NaN`` marking the
  cells to fill.

Every message validates itself eagerly (:meth:`validate` is called by the
constructors of the session layer and the serve loop) and round-trips
through a JSON-safe *wire form* (``to_wire`` / ``from_wire``).  On the wire,
missing cells are encoded as ``null`` — JSON has no ``NaN`` — and decoded
back to ``numpy.nan``; the wire protocol itself is versioned through
:data:`PROTOCOL_VERSION`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..baselines.registry import method_spec
from ..exceptions import (
    ConfigurationError,
    DataError,
    ProtocolError,
    QuotaExceededError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SESSION_MODES",
    "SESSION_NAME_PATTERN",
    "encode_rows",
    "decode_rows",
    "validate_session_name",
    "ImputeRequest",
    "MutationOp",
    "SessionConfig",
]

#: Version of the request/response surface.  Bumped on incompatible changes
#: to the message schemas or the serve loop's envelope; every response
#: carries it so clients can detect a skew before misparsing payloads.
PROTOCOL_VERSION = 1

#: Recognised session modes: ``"batch"`` adapts a registry imputer,
#: ``"online"`` wraps the incremental engine, ``"auto"`` picks online for
#: mutation-capable methods (IIM) and batch otherwise.
SESSION_MODES = ("auto", "batch", "online")

#: Engine knobs a :class:`SessionConfig` may carry for online sessions
#: (forwarded to :class:`~repro.online.OnlineImputationEngine`).
ENGINE_KNOBS = (
    "model_cache_size",
    "refresh_policy",
    "incremental_fallback_fraction",
    "shard_capacity",
    "journal_capacity",
    "delete_cost_mode",
)


#: Filesystem-safe session names, required whenever a session name becomes
#: a directory name (the serve loop's per-session WAL directories): a wire
#: name like ``"../x"`` must never escape the WAL root.
SESSION_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_session_name(name: str, *, durable: bool = False) -> str:
    """Validate a wire session name; ``durable`` also demands it be a safe
    directory name (no separators, no leading dot, at most 64 chars)."""
    if not isinstance(name, str) or not name:
        raise ProtocolError("this command needs a 'session' name")
    if durable and not SESSION_NAME_PATTERN.match(name):
        raise ProtocolError(
            f"session name {name!r} cannot name a WAL directory; durable "
            f"sessions need names matching {SESSION_NAME_PATTERN.pattern}"
        )
    return name


def encode_rows(values: np.ndarray) -> List[List[Optional[float]]]:
    """Encode a float matrix for the wire: ``NaN`` becomes ``null``."""
    values = np.atleast_2d(np.asarray(values, dtype=float))
    return [
        [None if math.isnan(cell) else float(cell) for cell in row]
        for row in values
    ]


def decode_rows(
    rows, *, what: str = "rows", max_rows: Optional[int] = None
) -> np.ndarray:
    """Decode wire rows (lists of numbers-or-``null``) into a float matrix.

    ``max_rows`` is the admission quota of the serve loop: requests carrying
    more rows are rejected with a typed :class:`QuotaExceededError` (wire
    code ``quota``) *before* any decoding work or state change.
    """
    if not isinstance(rows, (list, tuple)) or not rows:
        raise ProtocolError(f"{what} must be a non-empty list of rows")
    if not isinstance(rows[0], (list, tuple)):
        rows = [rows]
    if max_rows is not None and len(rows) > max_rows:
        raise QuotaExceededError(
            f"{what}: {len(rows)} rows exceed the per-request quota of "
            f"{max_rows}; split the request"
        )
    width = len(rows[0])
    decoded = np.empty((len(rows), width), dtype=float)
    for i, row in enumerate(rows):
        if not isinstance(row, (list, tuple)) or len(row) != width:
            raise ProtocolError(
                f"{what} must be rows of equal length {width}, "
                f"row {i} is {row!r}"
            )
        for j, cell in enumerate(row):
            if cell is None:
                decoded[i, j] = np.nan
            elif isinstance(cell, bool) or not isinstance(cell, (int, float)):
                raise ProtocolError(
                    f"{what}[{i}][{j}] must be a number or null, got {cell!r}"
                )
            else:
                decoded[i, j] = float(cell)
    return decoded


@dataclass(frozen=True)
class ImputeRequest:
    """A batch of query tuples whose ``NaN`` cells should be imputed."""

    values: np.ndarray

    def __post_init__(self):
        object.__setattr__(
            self, "values", np.atleast_2d(np.asarray(self.values, dtype=float))
        )
        self.validate()

    def validate(self) -> None:
        if self.values.ndim != 2 or self.values.size == 0:
            raise DataError(
                f"an impute request needs a non-empty 2-D batch of query "
                f"tuples, got shape {self.values.shape}"
            )

    @property
    def n_queries(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_missing(self) -> int:
        return int(np.isnan(self.values).sum())

    def to_wire(self) -> Dict[str, object]:
        return {"rows": encode_rows(self.values)}

    @classmethod
    def from_wire(
        cls, payload: Dict[str, object], *, max_rows: Optional[int] = None
    ) -> "ImputeRequest":
        if not isinstance(payload, dict) or "rows" not in payload:
            raise ProtocolError("an impute request needs a 'rows' field")
        return cls(
            decode_rows(payload["rows"], what="impute rows", max_rows=max_rows)
        )


@dataclass(frozen=True)
class MutationOp:
    """One store mutation: ``append`` rows, ``delete`` indices, ``update``
    one row in place, or ``promote`` the pending incomplete tuples (impute
    them against the current store and move them in as complete rows).

    Build instances through the classmethod constructors — they populate
    exactly the operands each verb needs and validate eagerly.
    """

    kind: str
    rows: Optional[np.ndarray] = None  # append payload (b, m)
    indices: Optional[np.ndarray] = None  # delete targets
    index: Optional[int] = None  # update target
    row: Optional[np.ndarray] = None  # update payload (m,)

    KINDS = ("append", "delete", "update", "promote")

    @classmethod
    def append(cls, rows) -> "MutationOp":
        return cls("append", rows=np.atleast_2d(np.asarray(rows, dtype=float)))

    @classmethod
    def promote(cls) -> "MutationOp":
        return cls("promote")

    @classmethod
    def delete(cls, indices) -> "MutationOp":
        return cls(
            "delete", indices=np.atleast_1d(np.asarray(indices, dtype=int))
        )

    @classmethod
    def update(cls, index: int, row) -> "MutationOp":
        return cls(
            "update",
            index=int(index),
            row=np.asarray(row, dtype=float).ravel(),
        )

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigurationError(
                f"unknown mutation kind {self.kind!r}; expected one of {self.KINDS}"
            )
        if self.kind == "append":
            if self.rows is None or self.rows.ndim != 2:
                raise DataError("an append op needs a 2-D block of rows")
        elif self.kind == "delete":
            if self.indices is None or self.indices.size == 0:
                raise DataError("a delete op needs at least one store index")
        elif self.kind == "update":
            if self.index is None or self.row is None or self.row.ndim != 1:
                raise DataError("an update op needs one store index and one row")
        # promote carries no operands

    def to_wire(self) -> Dict[str, object]:
        if self.kind == "append":
            return {"op": "append", "rows": encode_rows(self.rows)}
        if self.kind == "delete":
            return {"op": "delete", "indices": [int(i) for i in self.indices]}
        if self.kind == "promote":
            return {"op": "promote"}
        return {
            "op": "update",
            "index": int(self.index),
            "row": encode_rows(self.row)[0],
        }

    @classmethod
    def from_wire(
        cls, payload: Dict[str, object], *, max_rows: Optional[int] = None
    ) -> "MutationOp":
        if not isinstance(payload, dict):
            raise ProtocolError(f"a mutation op must be an object, got {payload!r}")
        kind = payload.get("op")
        if kind == "append":
            if "rows" not in payload:
                raise ProtocolError("an append op needs a 'rows' field")
            return cls.append(
                decode_rows(payload["rows"], what="append rows", max_rows=max_rows)
            )
        if kind == "delete":
            indices = payload.get("indices")
            if not isinstance(indices, (list, tuple)) or not indices or not all(
                isinstance(i, int) and not isinstance(i, bool) for i in indices
            ):
                raise ProtocolError("a delete op needs a list of integer indices")
            return cls.delete(indices)
        if kind == "update":
            index = payload.get("index")
            if (
                isinstance(index, bool)
                or not isinstance(index, int)
                or "row" not in payload
            ):
                raise ProtocolError(
                    "an update op needs an integer 'index' and a 'row' field"
                )
            row = decode_rows(payload["row"], what="update row")
            if row.shape[0] != 1:
                raise ProtocolError(
                    f"an update op replaces exactly one row, got {row.shape[0]}"
                )
            return cls.update(index, row[0])
        if kind == "promote":
            return cls.promote()
        raise ProtocolError(
            f"unknown mutation op {kind!r}; expected one of {cls.KINDS}"
        )


@dataclass
class SessionConfig:
    """How to build a session: method, mode, overrides and engine knobs."""

    method: str = "IIM"
    mode: str = "auto"
    params: Dict[str, object] = field(default_factory=dict)
    engine: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        spec = method_spec(self.method)  # raises with suggestions when unknown
        self.method = spec.name
        if self.mode not in SESSION_MODES:
            raise ConfigurationError(
                f"unknown session mode {self.mode!r}; expected one of "
                f"{SESSION_MODES}"
            )
        if not isinstance(self.params, dict):
            raise ConfigurationError(
                f"session params must be a dict of constructor overrides, "
                f"got {self.params!r}"
            )
        if not isinstance(self.engine, dict):
            raise ConfigurationError(
                f"session engine knobs must be a dict, got {self.engine!r}"
            )
        unknown = sorted(set(self.engine) - set(ENGINE_KNOBS))
        if unknown:
            raise ConfigurationError(
                f"unknown engine knobs {unknown}; accepted: {list(ENGINE_KNOBS)}"
            )
        if self.resolved_mode() == "online":
            if not spec.capabilities.supports_mutation:
                raise ConfigurationError(
                    f"method {spec.name!r} cannot run in online mode: it does "
                    f"not support incremental mutation (only IIM does)"
                )
        elif self.engine:
            raise ConfigurationError(
                f"engine knobs {sorted(self.engine)} apply to online sessions "
                f"only; method {spec.name!r} resolves to batch mode"
            )

    def resolved_mode(self) -> str:
        """``"batch"`` or ``"online"`` (``"auto"`` follows the capabilities)."""
        if self.mode != "auto":
            return self.mode
        return (
            "online"
            if method_spec(self.method).capabilities.supports_mutation
            else "batch"
        )

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {"method": self.method, "mode": self.mode}
        if self.params:
            wire["params"] = dict(self.params)
        if self.engine:
            wire["engine"] = dict(self.engine)
        return wire

    @classmethod
    def from_wire(cls, payload: Optional[Dict[str, object]]) -> "SessionConfig":
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise ProtocolError(f"a session config must be an object, got {payload!r}")
        unknown = sorted(set(payload) - {"method", "mode", "params", "engine"})
        if unknown:
            raise ProtocolError(f"unknown session config fields: {unknown}")
        return cls(
            method=payload.get("method", "IIM"),
            mode=payload.get("mode", "auto"),
            params=dict(payload.get("params") or {}),
            engine=dict(payload.get("engine") or {}),
        )
