"""Interactive query REPL over the JSONL session protocol.

``python -m repro repl`` reads statements from stdin — buffered across
lines until a ``;`` — and executes them through the same wire protocol
the serve loop speaks: by default against an in-process
:class:`~repro.api.serve.SessionServer`, or against a live TCP server
with ``--connect HOST:PORT``.  Every statement rides a ``query`` request,
so quotas, auth and quarantine discipline apply exactly as they would to
any other client.

Lines starting with ``\\`` are meta-commands handled locally:

=================  ========================================================
``\\create NAME``   create an online session (``key=value`` engine params
                   after the name, e.g. ``\\create s k=5 learning=fixed
                   learning_neighbors=4``) and switch to it
``\\use NAME``      switch to an existing session
``\\sessions``      list the server's live sessions
``\\schema``        the current session's attributes (via ``EXPLAIN``)
``\\provenance``    the imputed-cell provenance of the last SELECT, as JSON
``\\help``          this table
``\\quit``          leave (EOF works too)
=================  ========================================================

Prompts go to stderr so a scripted run (``python -m repro repl <
session.sql``) leaves stdout machine-readable.
"""

from __future__ import annotations

import json
import math
import socket
import sys
from typing import Dict, List, Optional, TextIO

from ..exceptions import ReproError

__all__ = ["Repl", "run_repl"]

PROMPT = "repro> "
CONTINUATION = "  ...> "


class _InProcessTransport:
    """A private SessionServer answering requests synchronously."""

    def __init__(self, artifact_root: str = "."):
        from .serve import SessionServer

        self._server = SessionServer(artifact_root)

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        reply = self._server.handle_line(json.dumps(payload))
        return reply if isinstance(reply, dict) else json.loads(reply)

    def close(self) -> None:
        self._server.close_sessions()


class _TcpTransport:
    """One JSONL connection to a running ``python -m repro serve --port``."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        try:
            self._conn = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ReproError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._stream = self._conn.makefile("rw", encoding="utf-8")

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        self._stream.write(json.dumps(payload) + "\n")
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ReproError("the server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._conn.close()


def _parse_param(text: str):
    """``key=value`` values: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _format_cell(value) -> str:
    if value is None:
        return "?"
    if isinstance(value, float) and math.isnan(value):
        return "?"
    return f"{value:.6g}"


class Repl:
    """The REPL state machine (transport-agnostic, testable in-process)."""

    def __init__(
        self,
        transport,
        *,
        stdin: Optional[TextIO] = None,
        stdout: Optional[TextIO] = None,
        stderr: Optional[TextIO] = None,
        token: Optional[str] = None,
        session: Optional[str] = None,
        interactive: Optional[bool] = None,
    ):
        self.transport = transport
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.stderr = stderr if stderr is not None else sys.stderr
        self.token = token
        self.session = session
        #: The last successful query result payload (``\provenance`` reads it).
        self.last_result: Optional[Dict[str, object]] = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # wire plumbing
    # ------------------------------------------------------------------ #
    def _request(self, **payload) -> Optional[Dict[str, object]]:
        """Send one request; print a typed error and return None on failure."""
        self._next_id += 1
        payload.setdefault("v", 1)
        payload.setdefault("id", self._next_id)
        if self.token is not None:
            payload.setdefault("token", self.token)
        reply = self.transport.request(payload)
        if reply.get("ok"):
            return reply.get("result", {})
        error = reply.get("error", {})
        self._print(
            f"error [{error.get('code', 'unknown')}]: "
            f"{error.get('message', reply)}"
        )
        return None

    def _print(self, text: str) -> None:
        self.stdout.write(text + "\n")

    # ------------------------------------------------------------------ #
    # meta-commands
    # ------------------------------------------------------------------ #
    def _meta(self, line: str) -> bool:
        """Handle one ``\\``-command; False means quit."""
        parts = line[1:].split()
        command = parts[0].lower() if parts else "help"
        if command in ("quit", "q", "exit"):
            return False
        if command in ("help", "h", ""):
            self._print(__doc__.split("meta-commands handled locally:")[1])
        elif command == "sessions":
            result = self._request(cmd="sessions")
            if result is not None:
                sessions = result.get("sessions", [])
                if not sessions:
                    self._print("no live sessions (\\create one)")
                for entry in sessions:
                    marker = "*" if entry["session"] == self.session else " "
                    self._print(
                        f"{marker} {entry['session']}  kind={entry['kind']} "
                        f"method={entry['method']} durable={entry['durable']}"
                    )
        elif command == "create":
            if len(parts) < 2:
                self._print("error [repl]: \\create needs a session name")
                return True
            params = dict(
                (key, _parse_param(value))
                for key, _, value in (p.partition("=") for p in parts[2:])
            )
            method = params.pop("method", "IIM")
            mode = params.pop("mode", "online")
            result = self._request(
                cmd="create", session=parts[1],
                config={"method": method, "mode": mode, "params": params},
            )
            if result is not None:
                self.session = parts[1]
                self._print(
                    f"session {parts[1]!r} created ({result.get('kind')} "
                    f"{result.get('method')}); now current"
                )
        elif command == "use":
            if len(parts) != 2:
                self._print("error [repl]: \\use needs a session name")
            else:
                self.session = parts[1]
                self._print(f"current session: {parts[1]!r}")
        elif command == "schema":
            result = self._query_request("EXPLAIN SELECT *")
            if result is not None:
                columns = result.get("plan", {}).get("columns", [])
                self._print(
                    f"schema of {self.session!r}: {', '.join(columns)} "
                    f"({result.get('rows_scanned', 0)} row(s) live)"
                )
        elif command == "provenance":
            if self.last_result is None:
                self._print("error [repl]: no query has run yet")
            else:
                self._print(json.dumps(
                    self.last_result.get("provenance", []), indent=2
                ))
        else:
            self._print(
                f"error [repl]: unknown meta-command \\{command} "
                f"(\\help lists them)"
            )
        return True

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _query_request(self, text: str) -> Optional[Dict[str, object]]:
        if self.session is None:
            self._print(
                "error [repl]: no session selected; \\create NAME or "
                "\\use NAME first"
            )
            return None
        return self._request(cmd="query", session=self.session, q=text)

    def _execute(self, text: str) -> None:
        result = self._query_request(text)
        if result is None:
            return
        kind = result.get("kind")
        if kind in ("select", "explain"):
            self.last_result = result
            self._render_query(result)
        else:
            detail = ", ".join(
                f"{key}={value}"
                for key, value in result.items()
                if key != "kind"
            )
            self._print(f"{kind}: {detail}")

    def _render_query(self, result: Dict[str, object]) -> None:
        if result["kind"] == "explain":
            self._print(json.dumps(result["plan"], indent=2))
            return
        columns: List[str] = list(result.get("columns", []))
        rows = result.get("rows", [])
        indices = result.get("row_indices", [])
        self._print("  ".join(columns))
        for position, row in enumerate(rows):
            prefix = f"[{indices[position]}] " if indices else ""
            self._print(prefix + "  ".join(_format_cell(v) for v in row))
        imputed = result.get("rows_imputed", 0)
        footer = (
            f"({len(rows)} row(s); {result.get('rows_scanned', 0)} scanned, "
            f"{imputed} row(s) imputed on demand)"
        )
        self._print(footer)
        provenance = result.get("provenance", [])
        if provenance:
            self._print(
                f"-- {len(provenance)} cell(s) carry provenance "
                f"(\\provenance shows them)"
            )

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self) -> int:
        interactive = self.stdin.isatty() if hasattr(self.stdin, "isatty") \
            else False
        buffer: List[str] = []
        while True:
            if interactive:
                self.stderr.write(CONTINUATION if buffer else PROMPT)
                self.stderr.flush()
            line = self.stdin.readline()
            if not line:
                break
            stripped = line.strip()
            if not buffer:
                if not stripped or stripped.startswith("--"):
                    continue
                if stripped.startswith("\\"):
                    if not self._meta(stripped):
                        break
                    continue
            buffer.append(line)
            if stripped.endswith(";"):
                text = "".join(buffer)
                buffer = []
                self._execute(text)
        if buffer:
            self._print(
                "error [repl]: unterminated statement at EOF (end it "
                "with ';')"
            )
            return 1
        return 0


def run_repl(
    connect: Optional[str] = None,
    *,
    artifact_root: str = ".",
    token: Optional[str] = None,
    session: Optional[str] = None,
) -> int:
    """CLI entry point: build a transport, run the loop, clean up."""
    if connect:
        host, _, port_text = connect.rpartition(":")
        if not host or not port_text.isdigit():
            raise ReproError(
                f"--connect expects HOST:PORT, got {connect!r}"
            )
        transport = _TcpTransport(host, int(port_text))
        where = f"TCP server {connect}"
    else:
        transport = _InProcessTransport(artifact_root)
        where = "in-process server"
    repl = Repl(transport, token=token, session=session)
    if repl.stdin.isatty():
        repl.stderr.write(
            f"repro query REPL — {where}; statements end with ';', "
            f"\\help lists meta-commands\n"
        )
    try:
        return repl.run()
    finally:
        transport.close()
