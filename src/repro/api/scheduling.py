"""The dispatch layer of the serve loop: queues, workers, micro-batches.

The transports (:func:`~repro.api.serve.serve_stdio`,
:func:`~repro.api.serve.serve_tcp`) used to execute every request inline on
the thread that read it, serialised by one server-wide lock.  This module
splits *reading* from *executing*:

* producers enqueue parsed session commands onto **per-session FIFO
  queues** (:meth:`RequestScheduler.submit`), bounded at
  ``max_queued_requests`` — a full queue answers a typed ``overloaded``
  error instead of buffering without bound;
* a **bounded worker pool** drains the queues concurrently.  At most one
  worker drains a given session at a time, so requests of one session
  execute (and answer) in submission order, while different sessions
  proceed in parallel — numpy releases the GIL inside the GEMM-heavy
  kernels, so the parallelism is real, not cosmetic;
* a **micro-batcher** coalesces a contiguous run of single-row ``impute``
  requests against the same session and missing-cell pattern into one
  batched kernel call (the batched path sustains ~27x the per-row
  throughput of single-request dispatch), then scatters the per-row
  responses back to the right callers.  ``microbatch_window_ms > 0``
  additionally holds an eligible head request open for stragglers;
  the default ``0`` coalesces only what is already queued, so
  request-response clients pay no added latency.

Every request handed to :meth:`submit` is answered exactly once through
its ``respond`` callback — also on handler failure, worker crash or
server shutdown — because the transports' ordered writers block until
every reserved slot is filled.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..exceptions import ProtocolError, ServerOverloadedError
from ..obs import observe_microbatch, set_queue_depth, set_serve_workers
from .errors import error_payload
from .messages import PROTOCOL_VERSION

__all__ = ["PendingRequest", "RequestScheduler"]


class PendingRequest:
    """One parsed request waiting on a session queue, plus its reply path."""

    __slots__ = ("request", "respond", "enqueued_at")

    def __init__(self, request: Dict[str, object],
                 respond: Callable[[Dict[str, object]], None]):
        self.request = request
        self.respond = respond
        self.enqueued_at = time.monotonic()

    def single_impute_row(self) -> Optional[List[object]]:
        """The request's one wire row, when it is a coalescible impute.

        Coalescible means: ``cmd == "impute"`` carrying exactly one row —
        either a flat list of cells or a singleton list-of-rows.  Anything
        else (batches, malformed rows) returns ``None`` and is dispatched
        unbatched, so validation errors keep their per-request envelope.
        """
        if self.request.get("cmd") != "impute":
            return None
        rows = self.request.get("rows")
        if not isinstance(rows, list) or not rows:
            return None
        if not isinstance(rows[0], (list, tuple)):
            # One flat row: [1.0, null, 2.0].
            row = rows
        elif len(rows) == 1 and isinstance(rows[0], (list, tuple)):
            row = list(rows[0])
        else:
            return None
        if not all(
            cell is None
            or (isinstance(cell, (int, float)) and not isinstance(cell, bool))
            for cell in row
        ):
            return None
        return list(row)


def _missing_signature(row: List[object]) -> tuple:
    """Which cells a row asks to impute — the coalescing compatibility key.

    Rows merge into one kernel call only when they share width and
    missing-cell positions ("same attribute" in the single-incomplete-
    attribute regime of the paper), so the batched result is bit-identical
    to dispatching each row alone.
    """
    return (len(row),) + tuple(
        i for i, cell in enumerate(row) if cell is None
    )


class RequestScheduler:
    """Per-session FIFO queues drained by a bounded worker pool.

    ``server`` is the :class:`~repro.api.serve.SessionServer` whose
    :meth:`handle_request` executes each dispatch unit; the scheduler
    owns ordering, parallelism, backpressure and coalescing, the server
    owns semantics (locking, quarantine, deadlines, WAL).

    Worker threads are daemonic and started lazily on the first
    :meth:`submit`, so in-process servers that only ever call
    ``handle_line`` synchronously never pay for a pool.
    """

    def __init__(
        self,
        server,
        *,
        workers: int,
        microbatch_window_ms: float,
        microbatch_max_rows: int,
        max_queued_requests: int,
    ):
        self.server = server
        self.workers = int(workers)
        self.microbatch_window_ms = float(microbatch_window_ms)
        self.microbatch_max_rows = int(microbatch_max_rows)
        self.max_queued_requests = int(max_queued_requests)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[PendingRequest]] = {}
        #: Sessions with queued work and no worker on them yet, FIFO.
        self._ready: Deque[str] = deque()
        self._ready_set: set = set()
        #: Sessions a worker is currently draining (one worker per session).
        self._active: set = set()
        self._threads: List[threading.Thread] = []
        self._stopping = False
        # Lifetime counters (read under the lock by snapshot()).
        self.dispatched = 0
        self.batches_formed = 0
        self.rows_coalesced = 0
        self.rejected_overloaded = 0

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def submit(self, request: Dict[str, object],
               respond: Callable[[Dict[str, object]], None]) -> None:
        """Enqueue one parsed session command; ``respond`` answers it later.

        Raises :class:`ServerOverloadedError` when the session's queue is
        full and :class:`ProtocolError` once the scheduler is stopping —
        in both cases nothing was enqueued and the caller still owns the
        response.
        """
        key = self._queue_key(request)
        with self._lock:
            if self._stopping:
                raise ProtocolError("the server is shutting down")
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = deque()
            if len(queue) >= self.max_queued_requests:
                self.rejected_overloaded += 1
                raise ServerOverloadedError(
                    f"session {key!r} already has {len(queue)} queued "
                    f"request(s) (max_queued_requests="
                    f"{self.max_queued_requests}); back off and resubmit"
                )
            queue.append(PendingRequest(request, respond))
            if key not in self._active and key not in self._ready_set:
                self._ready.append(key)
                self._ready_set.add(key)
            self._ensure_workers_locked()
            set_queue_depth(self._depth_locked())
            self._work.notify()

    @staticmethod
    def _queue_key(request: Dict[str, object]) -> str:
        session = request.get("session")
        # Invalid session fields still flow through a queue so their typed
        # error answers in order; they all share one catch-all key.
        return session if isinstance(session, str) and session else "\x00"

    def _ensure_workers_locked(self) -> None:
        if self._threads or self._stopping:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        set_serve_workers(len(self._threads))

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._ready and not self._stopping:
                    self._work.wait()
                if self._stopping and not self._ready:
                    return
                key = self._ready.popleft()
                self._ready_set.discard(key)
                self._active.add(key)
                unit = self._take_unit_locked(key)
                set_queue_depth(self._depth_locked())
            try:
                self._execute(key, unit)
            finally:
                with self._lock:
                    self._active.discard(key)
                    queue = self._queues.get(key)
                    if queue:
                        if key not in self._ready_set:
                            self._ready.append(key)
                            self._ready_set.add(key)
                        self._work.notify()
                    elif queue is not None:
                        del self._queues[key]
                    self._idle.notify_all()

    def _take_unit_locked(self, key: str) -> List[PendingRequest]:
        """Pop the next dispatch unit: one request, or a coalesced run.

        Called with the lock held and ``key`` marked active, so no other
        worker can race on this queue; a positive window waits (releasing
        the lock) for stragglers while the batch has room.
        """
        queue = self._queues[key]
        head = queue[0]
        row = head.single_impute_row()
        if row is None:
            queue.popleft()
            return [head]
        limit = self.microbatch_max_rows
        max_rows = getattr(self.server, "max_rows_per_request", None)
        if max_rows is not None:
            # Each member passed admission alone; the merged batch must
            # not trip the per-request row quota it never asked for.
            limit = min(limit, max_rows)
        signature = _missing_signature(row)
        if self.microbatch_window_ms > 0.0:
            deadline = time.monotonic() + self.microbatch_window_ms / 1000.0
            while (
                self._eligible_run_locked(queue, signature, limit) < limit
                and not self._stopping
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                self._work.wait(remaining)
        unit: List[PendingRequest] = []
        run = self._eligible_run_locked(queue, signature, limit)
        for _ in range(run):
            unit.append(queue.popleft())
        return unit

    @staticmethod
    def _eligible_run_locked(queue: Deque[PendingRequest],
                             signature: tuple, limit: int) -> int:
        """Length of the coalescible prefix sharing one missing pattern."""
        run = 0
        for pending in queue:
            if run >= limit:
                break
            row = pending.single_impute_row()
            if row is None or _missing_signature(row) != signature:
                break
            run += 1
        return max(run, 1)

    def _execute(self, key: str, unit: List[PendingRequest]) -> None:
        if len(unit) == 1:
            pending = unit[0]
            response = self.server.handle_request(pending.request)
            # Count before answering: a client that snapshots right after
            # its response must already see this dispatch.
            with self._lock:
                self.dispatched += 1
            self._answer(pending, response)
            return
        rows = [pending.single_impute_row() for pending in unit]
        batch_request = {
            "v": PROTOCOL_VERSION,
            "cmd": "impute",
            "session": key,
            "rows": rows,
        }
        # Every member already passed admission (auth included) when it was
        # enqueued; the merged request must pass the handler's re-check too.
        token = unit[0].request.get("token")
        if token is not None:
            batch_request["token"] = token
        waited = time.monotonic() - min(p.enqueued_at for p in unit)
        response = self.server.handle_request(batch_request)
        with self._lock:
            self.dispatched += len(unit)
            self.batches_formed += 1
            self.rows_coalesced += len(unit)
        observe_microbatch(len(unit), waited)
        trace_id = response.get("trace")
        if response.get("ok"):
            result_rows = response["result"]["rows"]
            for pending, row, imputed in zip(unit, result_rows, rows):
                self._answer(pending, {
                    "v": PROTOCOL_VERSION,
                    "id": pending.request.get("id"),
                    "ok": True,
                    "result": {
                        "rows": [row],
                        "imputed_cells": sum(
                            1 for cell in imputed if cell is None
                        ),
                    },
                    "trace": trace_id,
                })
        else:
            # One failure fails every member identically — the batch is a
            # transparent optimisation, so each caller sees the same typed
            # error it would have gotten dispatching alone.
            for pending in unit:
                self._answer(pending, {
                    "v": PROTOCOL_VERSION,
                    "id": pending.request.get("id"),
                    "ok": False,
                    "error": dict(response["error"]),
                    "trace": trace_id,
                })

    @staticmethod
    def _answer(pending: PendingRequest,
                response: Dict[str, object]) -> None:
        # A dead client's respond callback must not take down the worker
        # (or starve the ordered writer of the slot's sibling responses).
        try:
            pending.respond(response)
        except Exception:  # noqa: BLE001 - reply path is best-effort
            pass

    # ------------------------------------------------------------------ #
    # Lifecycle + introspection
    # ------------------------------------------------------------------ #
    def _depth_locked(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued request has been answered.

        Returns ``False`` on timeout.  Used by the transports before
        executing ``shutdown`` and at EOF, so pipelined requests are
        answered before the stream closes.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._queues or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        return False
                self._idle.wait(remaining)
        return True

    def stop(self, join_timeout: float = 5.0) -> None:
        """Reject new submits, fail queued ones, and join the workers.

        Idempotent; queued-but-undispatched requests are answered with a
        ``protocol`` shutdown error so no reserved response slot leaks.
        """
        with self._lock:
            self._stopping = True
            orphans: List[PendingRequest] = []
            for queue in self._queues.values():
                orphans.extend(queue)
                queue.clear()
            self._queues.clear()
            self._ready.clear()
            self._ready_set.clear()
            threads = list(self._threads)
            self._work.notify_all()
            self._idle.notify_all()
        exc = ProtocolError("the server is shutting down")
        for pending in orphans:
            self._answer(pending, {
                "v": PROTOCOL_VERSION,
                "id": pending.request.get("id"),
                "ok": False,
                "error": error_payload(exc),
            })
        current = threading.current_thread()
        for thread in threads:
            if thread is not current:
                thread.join(timeout=join_timeout)
        set_queue_depth(0)

    def snapshot(self) -> Dict[str, object]:
        """The scheduler's health/stats section (queue depths, counters)."""
        with self._lock:
            queued = {
                name: len(queue)
                for name, queue in sorted(self._queues.items())
                if queue
            }
            batches = self.batches_formed
            coalesced = self.rows_coalesced
            return {
                "workers": self.workers,
                "started": bool(self._threads),
                "queued": queued,
                "queue_depth": sum(queued.values()),
                "active_sessions": sorted(self._active),
                "dispatched": self.dispatched,
                "rejected_overloaded": self.rejected_overloaded,
                "microbatch": {
                    "window_ms": self.microbatch_window_ms,
                    "max_rows": self.microbatch_max_rows,
                    "batches": batches,
                    "rows_coalesced": coalesced,
                    "avg_fill": (
                        round(coalesced / batches, 3) if batches else None
                    ),
                },
            }
